/root/repo/crates/shims/rand_distr/target/release/deps/rand-16a122f3aae9dfb1.d: /root/repo/crates/shims/rand/src/lib.rs

/root/repo/crates/shims/rand_distr/target/release/deps/librand-16a122f3aae9dfb1.rlib: /root/repo/crates/shims/rand/src/lib.rs

/root/repo/crates/shims/rand_distr/target/release/deps/librand-16a122f3aae9dfb1.rmeta: /root/repo/crates/shims/rand/src/lib.rs

/root/repo/crates/shims/rand/src/lib.rs:
