/root/repo/crates/shims/rand_distr/target/release/deps/rand_distr-5822b3e26b937e23.d: src/lib.rs

/root/repo/crates/shims/rand_distr/target/release/deps/librand_distr-5822b3e26b937e23.rlib: src/lib.rs

/root/repo/crates/shims/rand_distr/target/release/deps/librand_distr-5822b3e26b937e23.rmeta: src/lib.rs

src/lib.rs:
