/root/repo/crates/shims/rand_distr/target/release/librand_distr.rlib: /root/repo/crates/shims/rand/src/lib.rs /root/repo/crates/shims/rand_distr/src/lib.rs
