//! Offline shim for the `rand_distr` crate.
//!
//! Provides the five distributions the synthetic event generator draws from
//! (Normal, Exp, Poisson, Beta, Cauchy) using textbook sampling algorithms
//! over the shimmed `rand` uniform source. Statistical shape matches the
//! real crate; exact bit streams are not reproduced (and are not relied on).

use rand::Rng;

/// Sampling interface (subset of `rand_distr::Distribution`).
pub trait Distribution<T> {
    /// Draws one value using `rng` as the randomness source.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid-parameter error shared by all constructors here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Uniform f64 in `(0, 1)` — both endpoints excluded, safe for `ln`/`tan`.
fn unit_open<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let v = rng.gen_range(0.0..1.0);
        if v > 0.0 {
            return v;
        }
    }
}

/// Standard normal via the Marsaglia polar method.
fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = rng.gen_range(-1.0..1.0);
        let v = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Normal (Gaussian) distribution.
#[derive(Clone, Copy, Debug)]
pub struct Normal<F = f64> {
    _float: std::marker::PhantomData<F>,
    mean: f64,
    std_dev: f64,
}

impl Normal<f64> {
    /// `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal<f64>, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error("Normal: std_dev must be finite and >= 0"));
        }
        Ok(Normal {
            _float: std::marker::PhantomData,
            mean,
            std_dev,
        })
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * std_normal(rng)
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Clone, Copy, Debug)]
pub struct Exp<F = f64> {
    _float: std::marker::PhantomData<F>,
    lambda: f64,
}

impl Exp<f64> {
    /// `lambda` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Exp<f64>, Error> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(Error("Exp: lambda must be finite and > 0"));
        }
        Ok(Exp {
            _float: std::marker::PhantomData,
            lambda,
        })
    }
}

impl Distribution<f64> for Exp<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_open(rng).ln() / self.lambda
    }
}

/// Poisson distribution; samples are returned as `f64` counts, matching
/// `rand_distr::Poisson<f64>`.
#[derive(Clone, Copy, Debug)]
pub struct Poisson<F = f64> {
    _float: std::marker::PhantomData<F>,
    lambda: f64,
}

impl Poisson<f64> {
    /// `lambda` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Poisson<f64>, Error> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(Error("Poisson: lambda must be finite and > 0"));
        }
        Ok(Poisson {
            _float: std::marker::PhantomData,
            lambda,
        })
    }
}

impl Distribution<f64> for Poisson<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Knuth's multiplicative method, chunked so exp(-λ) never
        // underflows: a Poisson(λ₁+λ₂) draw is the sum of independent
        // Poisson(λ₁) and Poisson(λ₂) draws.
        const CHUNK: f64 = 500.0;
        let mut remaining = self.lambda;
        let mut count = 0.0f64;
        while remaining > 0.0 {
            let step = remaining.min(CHUNK);
            remaining -= step;
            let threshold = (-step).exp();
            let mut product = unit_open(rng);
            while product > threshold {
                count += 1.0;
                product *= unit_open(rng);
            }
        }
        count
    }
}

/// Gamma(shape, scale=1) via Marsaglia–Tsang, with the boost transform for
/// shape < 1.
fn std_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        // Gamma(a) = Gamma(a + 1) * U^(1/a)
        return std_gamma(rng, shape + 1.0) * unit_open(rng).powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = std_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u = unit_open(rng);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// Beta distribution on `(0, 1)`.
#[derive(Clone, Copy, Debug)]
pub struct Beta<F = f64> {
    _float: std::marker::PhantomData<F>,
    alpha: f64,
    beta: f64,
}

impl Beta<f64> {
    /// Both shape parameters must be finite and positive.
    pub fn new(alpha: f64, beta: f64) -> Result<Beta<f64>, Error> {
        if !alpha.is_finite() || alpha <= 0.0 || !beta.is_finite() || beta <= 0.0 {
            return Err(Error("Beta: shape parameters must be finite and > 0"));
        }
        Ok(Beta {
            _float: std::marker::PhantomData,
            alpha,
            beta,
        })
    }
}

impl Distribution<f64> for Beta<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = std_gamma(rng, self.alpha);
        let y = std_gamma(rng, self.beta);
        if x + y == 0.0 {
            return 0.5;
        }
        x / (x + y)
    }
}

/// Cauchy (Lorentz) distribution.
#[derive(Clone, Copy, Debug)]
pub struct Cauchy<F = f64> {
    _float: std::marker::PhantomData<F>,
    median: f64,
    scale: f64,
}

impl Cauchy<f64> {
    /// `scale` must be finite and positive.
    pub fn new(median: f64, scale: f64) -> Result<Cauchy<f64>, Error> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(Error("Cauchy: scale must be finite and > 0"));
        }
        Ok(Cauchy {
            _float: std::marker::PhantomData,
            median,
            scale,
        })
    }
}

impl Distribution<f64> for Cauchy<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = unit_open(rng);
        self.median + self.scale * (std::f64::consts::PI * (u - 0.5)).tan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(dist: &impl Distribution<f64>, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(1234);
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let m = mean_of(&d, 50_000);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn exp_mean() {
        let d = Exp::new(0.5).unwrap();
        let m = mean_of(&d, 50_000);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        for lambda in [0.7, 4.0, 40.0] {
            let d = Poisson::new(lambda).unwrap();
            let m = mean_of(&d, 20_000);
            assert!(
                (m - lambda).abs() < 0.05 * lambda.max(1.0) + 0.05,
                "lambda {lambda} mean {m}"
            );
        }
    }

    #[test]
    fn beta_mean_and_support() {
        let d = Beta::new(2.0, 5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let v = d.sample(&mut rng);
            assert!((0.0..=1.0).contains(&v));
            sum += v;
        }
        let m = sum / 20_000.0;
        assert!((m - 2.0 / 7.0).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn cauchy_median() {
        let d = Cauchy::new(3.0, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<f64> = (0..10_001).map(|_| d.sample(&mut rng)).collect();
        v.sort_by(f64::total_cmp);
        let median = v[v.len() / 2];
        assert!((median - 3.0).abs() < 0.1, "median {median}");
    }

    #[test]
    fn constructors_reject_bad_params() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Cauchy::new(0.0, 0.0).is_err());
    }
}
