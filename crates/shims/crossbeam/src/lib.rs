//! Offline shim for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used by this workspace; since Rust
//! 1.63 `std::thread::scope` provides the same guarantees, so the shim is a
//! thin adapter reproducing crossbeam's closure and result signatures.

/// Scoped threads (`crossbeam::thread` subset).
pub mod thread {
    /// A scope handle whose `spawn` closures receive the scope again (the
    /// crossbeam signature — std's scoped closures take no argument).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope (unused
        /// by this workspace, kept for crossbeam compatibility).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle(self.inner.spawn(move || f(&scope)))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// threads are joined before `scope` returns. Unlike crossbeam, a panic
    /// in an unjoined child propagates instead of surfacing as `Err` — the
    /// workspace treats both as fatal, so the distinction does not matter.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all() {
        let n = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| n.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn join_returns_value() {
        let out = super::thread::scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
