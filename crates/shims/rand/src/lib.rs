//! Offline shim for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses: `StdRng`
//! seeded via `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen_range` / `gen_bool`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the synthetic
//! dataset builder needs (bit-compatibility with upstream rand is not
//! required; datasets are always generated in-process).

/// Low-level uniform bit source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can act as a `gen_range` argument (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Draws uniformly from `[0, n)` by rejection, avoiding modulo bias.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty gen_range range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize);

/// Convenience extension methods (subset of `rand::Rng`), blanket-implemented
/// for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1..50);
            assert!((-1..50).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0..=3u32);
            assert!(i <= 3);
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn int_range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
