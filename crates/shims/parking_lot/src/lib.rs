//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the tiny API subset it uses, backed by `std::sync`. Poisoning is ignored
//! (parking_lot semantics): a lock held by a panicking thread is re-acquired
//! transparently.

/// A mutex that never poisons, mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that never poisons, mirroring
/// `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(3);
        assert_eq!(*l.read(), 3);
        *l.write() = 4;
        assert_eq!(l.into_inner(), 4);
    }
}
