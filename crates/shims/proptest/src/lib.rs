//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API used by this workspace's
//! property tests: range / `any` / `Just` / collection strategies, the
//! `prop_map` / `prop_recursive` combinators, and the `proptest!`,
//! `prop_compose!`, `prop_oneof!`, `prop_assert*!`, `prop_assume!` macros.
//!
//! Differences from the real crate, deliberate for an offline shim:
//! - no shrinking: a failing case panics with the assertion message, and the
//!   deterministic per-test RNG makes every failure reproducible;
//! - string strategies approximate the regex (`"\\PC{0,120}"`-style patterns
//!   honour the repetition count and draw printable characters);
//! - rejection via `prop_assume!` retries the case, with a cap to keep
//!   heavily-filtered tests from spinning forever.

use std::rc::Rc;

pub mod test_runner {
    use std::hash::{Hash, Hasher};

    /// Deterministic per-test random source (splitmix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from the fully-qualified test name so each
        /// test sees a stable, independent stream.
        pub fn from_name(name: &str) -> TestRng {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            name.hash(&mut h);
            TestRng {
                state: h.finish() | 1,
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform u64 in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let zone = u64::MAX - (u64::MAX - n + 1) % n;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % n;
                }
            }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!`; it is retried.
        Reject(String),
        /// An assertion failed; the test panics with this message.
        Fail(String),
    }

    /// Runner configuration (`proptest::test_runner::Config` subset).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Configuration requiring `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Drives one property test: draws cases until `cases` succeed,
    /// retrying rejected cases (bounded) and panicking on failure.
    pub fn run_cases(
        config: &ProptestConfig,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut rng = TestRng::from_name(name);
        let mut passed = 0u32;
        let mut attempts = 0u64;
        let max_attempts = (config.cases as u64).saturating_mul(20).max(1000);
        while passed < config.cases {
            attempts += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    if attempts >= max_attempts {
                        panic!(
                            "{name}: too many prop_assume! rejections \
                             ({passed}/{} cases passed; last: {why})",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: property failed after {passed} passing cases\n{msg}")
                }
            }
        }
    }
}

use test_runner::TestRng;

/// A generator of values of type `Self::Value`.
///
/// Unlike the real crate there is no value tree / shrinking; a strategy is
/// just a cloneable recipe for drawing one value from a [`TestRng`].
pub trait Strategy: Clone {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Builds recursive values: `recurse` receives a strategy for the
    /// current level and returns the strategy for the next. Leaves and
    /// branches are mixed evenly at every level, up to `depth` levels.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            let branch = recurse(current).boxed();
            current = BoxedStrategy::from_fn(move |rng| {
                if rng.next_u64() & 1 == 0 {
                    leaf.generate(rng)
                } else {
                    branch.generate(rng)
                }
            });
        }
        current
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
    {
        let this = self;
        BoxedStrategy::from_fn(move |rng| this.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen_fn: Rc::clone(&self.gen_fn),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a drawing function as a strategy.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen_fn: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!` backend).
pub struct OneOf<T> {
    arms: Rc<[BoxedStrategy<T>]>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: Rc::clone(&self.arms),
        }
    }
}

impl<T> OneOf<T> {
    /// Builds from the already-boxed arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms: arms.into() }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---- Range strategies ----------------------------------------------------

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

// u64 ranges need widening through u128 instead of i128.
impl Strategy for std::ops::Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty integer range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty integer range strategy");
        if hi - lo == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.below(hi - lo + 1)
    }
}

// ---- `any::<T>()` --------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly finite values across magnitudes, with occasional specials.
        match rng.below(16) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            _ => {
                let mag = (rng.unit_f64() * 600.0 - 300.0).exp2();
                if rng.next_u64() & 1 == 0 {
                    mag
                } else {
                    -mag
                }
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T` (`proptest::arbitrary::any` subset).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---- String pattern strategies -------------------------------------------

/// A `&str` used as a strategy is treated as a loose regex: a trailing
/// `{lo,hi}` repetition is honoured and characters are drawn from the
/// printable range (the workspace only uses `"\\PC{0,120}"`-style patterns
/// as fuzz input, so character-class fidelity is not required).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repetition(self).unwrap_or((0, 64));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            // ~1 in 8 characters from beyond ASCII to exercise multi-byte
            // handling; the rest printable ASCII.
            let c = if rng.below(8) == 0 {
                char::from_u32(0xA1 + rng.below(0x2000) as u32).unwrap_or('\u{00E9}')
            } else {
                (0x20 + rng.below(0x5F) as u8) as char
            };
            out.push(c);
        }
        out
    }
}

fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let brace = body.rfind('{')?;
    let (lo, hi) = body[brace + 1..].split_once(',')?;
    let lo = lo.trim().parse().ok()?;
    let hi = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

// ---- Collections ---------------------------------------------------------

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Vec strategy with uniformly drawn length.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi_excl: usize,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                lo: self.lo,
                hi_excl: self.hi_excl,
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi_excl - self.lo) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy {
            element,
            lo: size.start,
            hi_excl: size.end,
        }
    }
}

// ---- Macros --------------------------------------------------------------

/// Declares property tests (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($field:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__shim_rng| {
                        $(let $field = $crate::Strategy::generate(&($strat), __shim_rng);)+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Defines a function returning a composed strategy
/// (subset of `proptest::prop_compose!`).
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($arg:ident : $argty:ty),* $(,)? )
                 ( $($field:ident in $strat:expr),+ $(,)? )
                 -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> $crate::BoxedStrategy<$ret> {
            $(let $field = $crate::Strategy::boxed($strat);)+
            $crate::BoxedStrategy::from_fn(move |__shim_rng| {
                $(let $field = $crate::Strategy::generate(&$field, __shim_rng);)+
                $body
            })
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("prop_assert failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "{} at {}:{}",
                format_args!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "prop_assert_eq failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "prop_assert_ne failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Rejects (retries) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                concat!("assume failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pair()(a in 0i32..10, b in 0i32..10) -> (i32, i32) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 1usize..7, y in -1i32..=1, f in 0.0..500.0f64) {
            prop_assert!((1..7).contains(&x));
            prop_assert!((-1..=1).contains(&y));
            prop_assert!((0.0..500.0).contains(&f));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0i64..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }

        #[test]
        fn composed_and_oneof(p in pair(), pick in prop_oneof![Just(1i32), Just(2i32)]) {
            prop_assert!((0..10).contains(&p.0));
            prop_assert_ne!(pick, 3);
            prop_assert_eq!(pick == 1 || pick == 2, true);
        }

        #[test]
        fn string_pattern_len(s in "\\PC{0,120}") {
            prop_assert!(s.chars().count() <= 120);
        }

        #[test]
        fn assume_retries(n in 0i32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i32),
            Node(Vec<Tree>),
        }
        let strat = (0i32..10)
            .prop_map(Tree::Leaf)
            .boxed()
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::from_name("recursive_terminates");
        for _ in 0..200 {
            let _ = strat.generate(&mut rng);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_assert_panics() {
        let config = ProptestConfig::with_cases(4);
        crate::test_runner::run_cases(&config, "failing_assert_panics", |_rng| {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        });
    }
}
