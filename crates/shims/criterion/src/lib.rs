//! Offline shim for the `criterion` crate.
//!
//! Keeps the bench targets compiling and producing useful wall-clock
//! medians without the statistical machinery (no warm-up schedule, outlier
//! analysis, or HTML reports). Each benchmark is calibrated with a single
//! iteration, then timed for a handful of short samples; the median
//! per-iteration time is printed as `name ... time: <value>`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (`criterion::BatchSize` subset). The shim
/// times one setup+routine pair per iteration regardless of the hint.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark driver (`criterion::Criterion` subset).
pub struct Criterion {
    /// Target wall time per measurement sample.
    sample_budget: Duration,
    samples: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_budget: Duration::from_millis(25),
            samples: 3,
        }
    }
}

fn format_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

impl Criterion {
    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Calibration pass: one iteration to size the sample loop.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters = (self.sample_budget.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

        let mut per_iter_times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed / iters as u32
            })
            .collect();
        per_iter_times.sort();
        let median = per_iter_times[per_iter_times.len() / 2];
        println!("{id:50} time: {:>12}", format_time(median));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named benchmark group (`criterion::BenchmarkGroup` subset).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always takes its own small
    /// fixed number of samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runner (`criterion_group!` subset).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups (`criterion_main!` subset).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn batched_excludes_setup() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(Duration::from_nanos(500)), "500.0 ns");
        assert_eq!(format_time(Duration::from_micros(1500)), "1.50 ms");
    }
}
