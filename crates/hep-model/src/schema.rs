//! The ADL benchmark table schema as an [`nf2_columnar::Schema`].
//!
//! Mirrors the branch layout of the CMS SingleMu 2012 data set the paper
//! uses: scalar event metadata, a `MET` struct, and one array-of-struct
//! collection per reconstructed particle type. All measured quantities are
//! physically `Float32` (like the original ROOT/Parquet files) while being
//! exposed to queries as 64-bit floats — the mismatch BigQuery's pricing
//! model exploits (paper §4.1).

use nf2_columnar::{ColumnarError, DataType, Field, Schema};

/// Name of the events table as seen by SQL queries.
pub const TABLE_NAME: &str = "events";

fn kinematic_fields() -> Vec<Field> {
    vec![
        Field::new("pt", DataType::f32()),
        Field::new("eta", DataType::f32()),
        Field::new("phi", DataType::f32()),
        Field::new("mass", DataType::f32()),
    ]
}

/// Builds the benchmark schema (59 leaf columns across 6 top-level groups
/// plus 3 scalars — same order of magnitude as the paper's 65 attributes).
pub fn event_schema() -> Result<Schema, ColumnarError> {
    let mut jet = kinematic_fields();
    jet.extend([
        Field::new("btag", DataType::f32()),
        Field::new("puId", DataType::bool()),
    ]);

    let mut muon = kinematic_fields();
    muon.extend([
        Field::new("charge", DataType::i32()),
        Field::new("pfRelIso03_all", DataType::f32()),
        Field::new("pfRelIso04_all", DataType::f32()),
        Field::new("tightId", DataType::bool()),
        Field::new("softId", DataType::bool()),
        Field::new("dxy", DataType::f32()),
        Field::new("dxyErr", DataType::f32()),
        Field::new("dz", DataType::f32()),
        Field::new("dzErr", DataType::f32()),
        Field::new("jetIdx", DataType::i32()),
        Field::new("genPartIdx", DataType::i32()),
    ]);

    let mut electron = kinematic_fields();
    electron.extend([
        Field::new("charge", DataType::i32()),
        Field::new("pfRelIso03_all", DataType::f32()),
        Field::new("dxy", DataType::f32()),
        Field::new("dxyErr", DataType::f32()),
        Field::new("dz", DataType::f32()),
        Field::new("dzErr", DataType::f32()),
        Field::new("cutBased", DataType::i32()),
        Field::new("pfId", DataType::bool()),
        Field::new("jetIdx", DataType::i32()),
        Field::new("genPartIdx", DataType::i32()),
    ]);

    let mut photon = kinematic_fields();
    photon.extend([
        Field::new("charge", DataType::i32()),
        Field::new("pfRelIso03_all", DataType::f32()),
        Field::new("jetIdx", DataType::i32()),
        Field::new("genPartIdx", DataType::i32()),
    ]);

    let mut tau = kinematic_fields();
    tau.extend([
        Field::new("charge", DataType::i32()),
        Field::new("decayMode", DataType::i32()),
        Field::new("relIso_all", DataType::f32()),
        Field::new("idIsoRaw", DataType::f32()),
        Field::new("jetIdx", DataType::i32()),
        Field::new("genPartIdx", DataType::i32()),
    ]);

    Schema::new(vec![
        Field::new("run", DataType::i64()),
        Field::new("luminosityBlock", DataType::i64()),
        Field::new("event", DataType::i64()),
        Field::new(
            "MET",
            DataType::Struct(vec![
                Field::new("pt", DataType::f32()),
                Field::new("phi", DataType::f32()),
                Field::new("sumet", DataType::f32()),
                Field::new("significance", DataType::f32()),
                Field::new("CovXX", DataType::f32()),
                Field::new("CovXY", DataType::f32()),
                Field::new("CovYY", DataType::f32()),
            ]),
        ),
        Field::new("Jet", DataType::particle_list(jet)),
        Field::new("Muon", DataType::particle_list(muon)),
        Field::new("Electron", DataType::particle_list(electron)),
        Field::new("Photon", DataType::particle_list(photon)),
        Field::new("Tau", DataType::particle_list(tau)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_builds_with_expected_leaf_count() {
        let s = event_schema().unwrap();
        // 3 scalars + 7 MET + 6 jet + 15 muon + 14 electron + 8 photon + 10 tau
        assert_eq!(s.n_leaves(), 63);
    }

    #[test]
    fn particle_collections_are_repeated() {
        let s = event_schema().unwrap();
        assert!(s.leaf(&"Jet.pt".into()).unwrap().repeated);
        assert!(s.leaf(&"Muon.charge".into()).unwrap().repeated);
        assert!(!s.leaf(&"MET.pt".into()).unwrap().repeated);
        assert!(!s.leaf(&"event".into()).unwrap().repeated);
    }

    #[test]
    fn measured_quantities_are_f32() {
        use nf2_columnar::PhysicalType;
        let s = event_schema().unwrap();
        assert_eq!(
            s.leaf(&"Jet.pt".into()).unwrap().ptype,
            PhysicalType::Float32
        );
        assert_eq!(
            s.leaf(&"Muon.charge".into()).unwrap().ptype,
            PhysicalType::Int32
        );
        assert_eq!(s.leaf(&"event".into()).unwrap().ptype, PhysicalType::Int64);
    }
}
