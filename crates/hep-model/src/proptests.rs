//! Property tests: any generated event survives the schema/columnar path.

use proptest::prelude::*;

use crate::generator::{Generator, GeneratorConfig};
use crate::to_value::{event_to_value, events_to_table};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seed produces events that validate against the schema, columnar-
    /// round-trip exactly, and respect basic physical sanity bounds.
    #[test]
    fn any_seed_roundtrips(seed in any::<u64>(), n in 1usize..60, rg in 1usize..16) {
        let events = Generator::new(GeneratorConfig::default(), seed).generate(n);
        for e in &events {
            prop_assert!(e.met.pt >= 0.0);
            prop_assert!(e.met.sumet > 0.0);
            for j in &e.jets {
                prop_assert!(j.pt >= 15.0 - 1e-6);
                prop_assert!(j.eta.abs() <= 4.0);
                prop_assert!(j.phi.abs() <= std::f64::consts::PI + 1e-6);
            }
        }
        let t = events_to_table(&events, rg).unwrap();
        prop_assert_eq!(t.n_rows(), n);
        let leaves: Vec<_> = t.schema().leaves().iter().collect();
        let got: Vec<_> = t.row_groups().iter()
            .flat_map(|g| g.read_rows(t.schema(), &leaves).unwrap())
            .collect();
        let expect: Vec<_> = events.iter().map(event_to_value).collect();
        prop_assert_eq!(got, expect);
    }

    /// Zero-resonance configs still produce valid events (no empty-range
    /// panics in degenerate parameterizations).
    #[test]
    fn degenerate_configs(seed in any::<u64>()) {
        let cfg = GeneratorConfig {
            z_prob: 0.0,
            top_prob: 0.0,
            jet_tail_prob: 0.0,
            ..GeneratorConfig::default()
        };
        let events = Generator::new(cfg, seed).generate(20);
        prop_assert_eq!(events.len(), 20);
    }
}
