//! Plain-Rust event structs — the "logical rows" of the data set.
//!
//! These are the types the reference query implementations (ground truth)
//! operate on. The columnar substrate stores the same information
//! column-decomposed; [`crate::to_value`] bridges the two representations.

/// Missing transverse energy and related event-level measurements.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Met {
    /// Magnitude of the missing transverse momentum (GeV).
    pub pt: f64,
    /// Azimuthal direction of the missing momentum.
    pub phi: f64,
    /// Scalar sum of transverse energy in the event (GeV).
    pub sumet: f64,
    /// MET significance.
    pub significance: f64,
    /// xx component of the MET covariance matrix.
    pub cov_xx: f64,
    /// xy component of the MET covariance matrix.
    pub cov_xy: f64,
    /// yy component of the MET covariance matrix.
    pub cov_yy: f64,
}

/// A hadronic jet.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Jet {
    /// Transverse momentum (GeV).
    pub pt: f64,
    /// Pseudorapidity.
    pub eta: f64,
    /// Azimuthal angle.
    pub phi: f64,
    /// Jet mass (GeV).
    pub mass: f64,
    /// b-tagging discriminant in `[0, 1]` (plotted by Q6b).
    pub btag: f64,
    /// Pile-up jet identification flag.
    pub pu_id: bool,
}

/// A muon.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Muon {
    /// Transverse momentum (GeV).
    pub pt: f64,
    /// Pseudorapidity.
    pub eta: f64,
    /// Azimuthal angle.
    pub phi: f64,
    /// Rest mass (GeV); ≈0.10566 for muons.
    pub mass: f64,
    /// Electric charge (±1).
    pub charge: i32,
    /// Relative isolation in a ΔR = 0.3 cone.
    pub pf_rel_iso03_all: f64,
    /// Relative isolation in a ΔR = 0.4 cone.
    pub pf_rel_iso04_all: f64,
    /// Tight identification flag.
    pub tight_id: bool,
    /// Soft identification flag.
    pub soft_id: bool,
    /// Transverse impact parameter (cm).
    pub dxy: f64,
    /// Uncertainty on `dxy`.
    pub dxy_err: f64,
    /// Longitudinal impact parameter (cm).
    pub dz: f64,
    /// Uncertainty on `dz`.
    pub dz_err: f64,
    /// Index of the associated jet, −1 if none.
    pub jet_idx: i32,
    /// Index of the generator-level particle, −1 if none.
    pub gen_part_idx: i32,
}

/// An electron.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Electron {
    /// Transverse momentum (GeV).
    pub pt: f64,
    /// Pseudorapidity.
    pub eta: f64,
    /// Azimuthal angle.
    pub phi: f64,
    /// Rest mass (GeV); ≈0.000511 for electrons.
    pub mass: f64,
    /// Electric charge (±1).
    pub charge: i32,
    /// Relative isolation in a ΔR = 0.3 cone.
    pub pf_rel_iso03_all: f64,
    /// Transverse impact parameter (cm).
    pub dxy: f64,
    /// Uncertainty on `dxy`.
    pub dxy_err: f64,
    /// Longitudinal impact parameter (cm).
    pub dz: f64,
    /// Uncertainty on `dz`.
    pub dz_err: f64,
    /// Cut-based identification working point (0–4).
    pub cut_based: i32,
    /// Particle-flow identification flag.
    pub pf_id: bool,
    /// Index of the associated jet, −1 if none.
    pub jet_idx: i32,
    /// Index of the generator-level particle, −1 if none.
    pub gen_part_idx: i32,
}

/// A photon.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Photon {
    /// Transverse momentum (GeV).
    pub pt: f64,
    /// Pseudorapidity.
    pub eta: f64,
    /// Azimuthal angle.
    pub phi: f64,
    /// Mass (0 for photons, kept for schema uniformity).
    pub mass: f64,
    /// Charge (0 for photons, kept for schema uniformity).
    pub charge: i32,
    /// Relative isolation in a ΔR = 0.3 cone.
    pub pf_rel_iso03_all: f64,
    /// Index of the associated jet, −1 if none.
    pub jet_idx: i32,
    /// Index of the generator-level particle, −1 if none.
    pub gen_part_idx: i32,
}

/// A hadronically decaying tau lepton.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Tau {
    /// Transverse momentum (GeV).
    pub pt: f64,
    /// Pseudorapidity.
    pub eta: f64,
    /// Azimuthal angle.
    pub phi: f64,
    /// Visible mass (GeV).
    pub mass: f64,
    /// Electric charge (±1).
    pub charge: i32,
    /// Decay mode identifier.
    pub decay_mode: i32,
    /// Combined isolation discriminant.
    pub rel_iso_all: f64,
    /// Raw isolation discriminant value.
    pub id_iso_raw: f64,
    /// Index of the associated jet, −1 if none.
    pub jet_idx: i32,
    /// Index of the generator-level particle, −1 if none.
    pub gen_part_idx: i32,
}

/// One collision event in NF² form: scalars plus variable-length particle
/// arrays, mirroring the paper's Listing 1.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Event {
    /// Run number.
    pub run: u32,
    /// Luminosity block within the run.
    pub luminosity_block: u32,
    /// Event number.
    pub event: u64,
    /// Missing-energy measurements.
    pub met: Met,
    /// Jets, ordered by decreasing `pt`.
    pub jets: Vec<Jet>,
    /// Muons, ordered by decreasing `pt`.
    pub muons: Vec<Muon>,
    /// Electrons, ordered by decreasing `pt`.
    pub electrons: Vec<Electron>,
    /// Photons, ordered by decreasing `pt`.
    pub photons: Vec<Photon>,
    /// Taus, ordered by decreasing `pt`.
    pub taus: Vec<Tau>,
}

impl Event {
    /// Number of leaf attributes of this schema (the paper's data set has
    /// 65; ours has the same order of magnitude — see [`crate::schema`]).
    pub fn n_light_leptons(&self) -> usize {
        self.muons.len() + self.electrons.len()
    }
}
