//! Bridging event structs ↔ dynamic values ↔ columnar tables.

use nested_value::Value;
use nf2_columnar::{ColumnarError, Table, TableBuilder};

use crate::event::{Electron, Event, Jet, Met, Muon, Photon, Tau};
use crate::schema::event_schema;

/// Converts an event into the [`Value`] shape declared by
/// [`crate::schema::event_schema`].
pub fn event_to_value(e: &Event) -> Value {
    Value::struct_from(vec![
        ("run", Value::Int(e.run as i64)),
        ("luminosityBlock", Value::Int(e.luminosity_block as i64)),
        ("event", Value::Int(e.event as i64)),
        ("MET", met_to_value(&e.met)),
        (
            "Jet",
            Value::array(e.jets.iter().map(jet_to_value).collect()),
        ),
        (
            "Muon",
            Value::array(e.muons.iter().map(muon_to_value).collect()),
        ),
        (
            "Electron",
            Value::array(e.electrons.iter().map(electron_to_value).collect()),
        ),
        (
            "Photon",
            Value::array(e.photons.iter().map(photon_to_value).collect()),
        ),
        (
            "Tau",
            Value::array(e.taus.iter().map(tau_to_value).collect()),
        ),
    ])
}

fn met_to_value(m: &Met) -> Value {
    Value::struct_from(vec![
        ("pt", Value::Float(m.pt)),
        ("phi", Value::Float(m.phi)),
        ("sumet", Value::Float(m.sumet)),
        ("significance", Value::Float(m.significance)),
        ("CovXX", Value::Float(m.cov_xx)),
        ("CovXY", Value::Float(m.cov_xy)),
        ("CovYY", Value::Float(m.cov_yy)),
    ])
}

fn jet_to_value(j: &Jet) -> Value {
    Value::struct_from(vec![
        ("pt", Value::Float(j.pt)),
        ("eta", Value::Float(j.eta)),
        ("phi", Value::Float(j.phi)),
        ("mass", Value::Float(j.mass)),
        ("btag", Value::Float(j.btag)),
        ("puId", Value::Bool(j.pu_id)),
    ])
}

fn muon_to_value(m: &Muon) -> Value {
    Value::struct_from(vec![
        ("pt", Value::Float(m.pt)),
        ("eta", Value::Float(m.eta)),
        ("phi", Value::Float(m.phi)),
        ("mass", Value::Float(m.mass)),
        ("charge", Value::Int(m.charge as i64)),
        ("pfRelIso03_all", Value::Float(m.pf_rel_iso03_all)),
        ("pfRelIso04_all", Value::Float(m.pf_rel_iso04_all)),
        ("tightId", Value::Bool(m.tight_id)),
        ("softId", Value::Bool(m.soft_id)),
        ("dxy", Value::Float(m.dxy)),
        ("dxyErr", Value::Float(m.dxy_err)),
        ("dz", Value::Float(m.dz)),
        ("dzErr", Value::Float(m.dz_err)),
        ("jetIdx", Value::Int(m.jet_idx as i64)),
        ("genPartIdx", Value::Int(m.gen_part_idx as i64)),
    ])
}

fn electron_to_value(e: &Electron) -> Value {
    Value::struct_from(vec![
        ("pt", Value::Float(e.pt)),
        ("eta", Value::Float(e.eta)),
        ("phi", Value::Float(e.phi)),
        ("mass", Value::Float(e.mass)),
        ("charge", Value::Int(e.charge as i64)),
        ("pfRelIso03_all", Value::Float(e.pf_rel_iso03_all)),
        ("dxy", Value::Float(e.dxy)),
        ("dxyErr", Value::Float(e.dxy_err)),
        ("dz", Value::Float(e.dz)),
        ("dzErr", Value::Float(e.dz_err)),
        ("cutBased", Value::Int(e.cut_based as i64)),
        ("pfId", Value::Bool(e.pf_id)),
        ("jetIdx", Value::Int(e.jet_idx as i64)),
        ("genPartIdx", Value::Int(e.gen_part_idx as i64)),
    ])
}

fn photon_to_value(p: &Photon) -> Value {
    Value::struct_from(vec![
        ("pt", Value::Float(p.pt)),
        ("eta", Value::Float(p.eta)),
        ("phi", Value::Float(p.phi)),
        ("mass", Value::Float(p.mass)),
        ("charge", Value::Int(p.charge as i64)),
        ("pfRelIso03_all", Value::Float(p.pf_rel_iso03_all)),
        ("jetIdx", Value::Int(p.jet_idx as i64)),
        ("genPartIdx", Value::Int(p.gen_part_idx as i64)),
    ])
}

fn tau_to_value(t: &Tau) -> Value {
    Value::struct_from(vec![
        ("pt", Value::Float(t.pt)),
        ("eta", Value::Float(t.eta)),
        ("phi", Value::Float(t.phi)),
        ("mass", Value::Float(t.mass)),
        ("charge", Value::Int(t.charge as i64)),
        ("decayMode", Value::Int(t.decay_mode as i64)),
        ("relIso_all", Value::Float(t.rel_iso_all)),
        ("idIsoRaw", Value::Float(t.id_iso_raw)),
        ("jetIdx", Value::Int(t.jet_idx as i64)),
        ("genPartIdx", Value::Int(t.gen_part_idx as i64)),
    ])
}

/// Materializes events into a columnar [`Table`].
pub fn events_to_table(events: &[Event], row_group_size: usize) -> Result<Table, ColumnarError> {
    let mut b = TableBuilder::new(crate::schema::TABLE_NAME, event_schema()?, row_group_size);
    for e in events {
        b.append(&event_to_value(e))?;
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, GeneratorConfig};

    #[test]
    fn generated_events_fit_schema() {
        let events: Vec<Event> = Generator::new(GeneratorConfig::default(), 42)
            .take(200)
            .collect();
        let t = events_to_table(&events, 64).unwrap();
        assert_eq!(t.n_rows(), 200);
        assert_eq!(t.row_groups().len(), 4);
    }

    #[test]
    fn table_roundtrips_event_values() {
        let events: Vec<Event> = Generator::new(GeneratorConfig::default(), 7)
            .take(50)
            .collect();
        let t = events_to_table(&events, 32).unwrap();
        let leaves: Vec<_> = t.schema().leaves().iter().collect();
        let mut got = Vec::new();
        for g in t.row_groups() {
            got.extend(g.read_rows(t.schema(), &leaves).unwrap());
        }
        let expect: Vec<Value> = events.iter().map(event_to_value).collect();
        // The generator quantizes measured floats to f32, so storage must
        // round-trip values exactly.
        assert_eq!(got, expect);
    }
}
