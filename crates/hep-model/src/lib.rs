//! # hep-model
//!
//! The HEP event data model and a synthetic data generator standing in for
//! the CMS SingleMu 2012 open-data set used by the ADL benchmark.
//!
//! ## Why synthetic data
//!
//! The paper's data set (`/SingleMu/Run2012B-22Jan2013-v1/AOD`, ≈54 M events,
//! 17 GB in ROOT format, 65 attributes) is not redistributable inside this
//! repository and requires the ROOT I/O stack to read. What the benchmark
//! actually exercises, however, is fully characterized by:
//!
//! 1. the **schema** (which attributes exist and how they nest),
//! 2. the **particle multiplicity distributions** (paper Figure 3 — they
//!    drive the per-event combinatorial work of Q5–Q8, see Table 2), and
//! 3. the **kinematic distributions** (they decide selectivities of the
//!    cuts, e.g. how many jets pass `pt > 40`).
//!
//! [`generator`] produces events from a seeded RNG with distributions
//! calibrated against the qualitative and quantitative facts the paper
//! reports: electrons in low single digits, muons slightly more frequent
//! (the data set is muon-triggered) with a longer tail, jets with a mean
//! near 3.2 and a heavy tail reaching several dozen per event, and an
//! injected Z → ℓℓ resonance so that the invariant-mass selections of (Q5)
//! and (Q8) are non-trivially populated.

pub mod event;
pub mod generator;
pub mod schema;
pub mod to_value;

pub use event::{Electron, Event, Jet, Met, Muon, Photon, Tau};
pub use generator::{build_sharded_table, DatasetSpec, Generator, GeneratorConfig, ShardedSpec};

#[cfg(test)]
mod proptests;
