//! Seeded synthetic event generator calibrated against the paper.
//!
//! ## Calibration targets
//!
//! * **Figure 3** (particle multiplicity): electrons occur in low
//!   single-digit numbers; muons occur more frequently and reach higher
//!   per-event counts; a significant fraction of events has dozens of jets.
//! * **Table 2** (`#Ops/event`): mean jets/event ≈ 3.2 (Q2), mean
//!   opposite-index muon pairs ≈ 0.6 (Q5), mean 3-jet combinations ≈ 41.8
//!   (Q6). We use a Poisson base for leptons (whose factorial moments are
//!   analytic: E[C(M,2)] = λ²/2) and a two-component jet mixture (a soft
//!   Poisson bulk plus a hard multi-jet tail) tuned to reproduce both the
//!   mean and the heavy combination count.
//! * **Physics signal**: (Q5)/(Q8) cut on an invariant-mass window around
//!   the Z boson and (Q6) looks for masses near the top quark, so the
//!   generator injects real resonances — Z → ℓℓ decayed isotropically in the
//!   parent rest frame and boosted to the lab, and t → 3 jets via sequential
//!   two-body decays — rather than uncorrelated particles. Without this, the
//!   benchmark's selective queries would see only combinatorial background.
//!
//! All measured quantities are quantized to `f32` before being stored in the
//! event structs so that the in-memory ground truth and the (physically
//! `Float32`) columnar data are bit-identical.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Beta, Cauchy, Distribution, Exp, Normal, Poisson};

use physics::FourMomentum;

use crate::event::{Electron, Event, Jet, Met, Muon, Photon, Tau};

/// Muon rest mass (GeV).
pub const MUON_MASS: f64 = 0.1056583745;
/// Electron rest mass (GeV).
pub const ELECTRON_MASS: f64 = 0.000510999;
/// Z boson mass (GeV).
pub const Z_MASS: f64 = 91.1876;
/// Z boson width (GeV).
pub const Z_WIDTH: f64 = 2.4952;
/// Top quark mass (GeV).
pub const TOP_MASS: f64 = 172.5;

/// Tunable distribution parameters.
#[derive(Clone, Copy, Debug)]
pub struct GeneratorConfig {
    /// Poisson mean of the soft jet component.
    pub jet_soft_lambda: f64,
    /// Probability of the hard multi-jet tail component.
    pub jet_tail_prob: f64,
    /// Base count of the hard tail (`base + Poisson(tail_lambda)` jets).
    pub jet_tail_base: u32,
    /// Poisson mean on top of the tail base.
    pub jet_tail_lambda: f64,
    /// Poisson mean of the prompt muon count.
    pub muon_lambda: f64,
    /// Poisson mean of the prompt electron count.
    pub electron_lambda: f64,
    /// Poisson mean of the photon count.
    pub photon_lambda: f64,
    /// Poisson mean of the tau count.
    pub tau_lambda: f64,
    /// Probability of injecting a Z → ℓℓ decay.
    pub z_prob: f64,
    /// Probability of injecting a t → 3 jets decay.
    pub top_prob: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            jet_soft_lambda: 2.0,
            jet_tail_prob: 0.10,
            jet_tail_base: 8,
            jet_tail_lambda: 3.0,
            muon_lambda: 0.85,
            electron_lambda: 0.55,
            photon_lambda: 0.9,
            tau_lambda: 0.25,
            z_prob: 0.10,
            top_prob: 0.06,
        }
    }
}

/// Scale presets for building data sets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Number of events to generate.
    pub n_events: usize,
    /// Events per row group.
    pub row_group_size: usize,
    /// RNG seed (same seed ⇒ bit-identical data set).
    pub seed: u64,
}

impl DatasetSpec {
    /// Tiny data set for unit tests (fits in milliseconds).
    pub fn tiny() -> DatasetSpec {
        DatasetSpec {
            n_events: 2_000,
            row_group_size: 512,
            seed: 0xAD1B70,
        }
    }

    /// Small data set for integration tests.
    pub fn small() -> DatasetSpec {
        DatasetSpec {
            n_events: 20_000,
            row_group_size: 2_048,
            seed: 0xAD1B70,
        }
    }

    /// Benchmark data set: 2²⁰ events in 128 row groups — the same
    /// row-group count as the paper's full 53.4 M-event Parquet data set,
    /// so parallelization granularity effects (Figure 2) reproduce.
    pub fn benchmark() -> DatasetSpec {
        DatasetSpec {
            n_events: 1 << 20,
            row_group_size: 8_192,
            seed: 0xAD1B70,
        }
    }

    /// Scale factor relative to the paper's 53.4 M events (for mapping the
    /// paper's absolute data-size axis onto ours).
    pub fn paper_scale_factor(&self) -> f64 {
        53_400_000.0 / self.n_events as f64
    }
}

/// Iterator producing seeded synthetic events.
pub struct Generator {
    cfg: GeneratorConfig,
    rng: StdRng,
    next_id: u64,
    // Pre-built distributions (construction is not free).
    d_jet_soft: Poisson<f64>,
    d_jet_tail: Poisson<f64>,
    d_muon: Poisson<f64>,
    d_electron: Poisson<f64>,
    d_photon: Poisson<f64>,
    d_tau: Poisson<f64>,
    d_eta_jet: Normal<f64>,
    d_eta_lep: Normal<f64>,
    d_jet_mass: Normal<f64>,
    d_btag_light: Beta<f64>,
    d_btag_heavy: Beta<f64>,
    d_iso: Exp<f64>,
    d_impact: Normal<f64>,
    d_z_mass: Cauchy<f64>,
    d_top_mass: Normal<f64>,
    d_boost_pt: Exp<f64>,
}

/// Quantizes to `f32` precision (see module docs).
#[inline]
fn q(x: f64) -> f64 {
    x as f32 as f64
}

impl Generator {
    /// Creates a generator with the given config and seed.
    pub fn new(cfg: GeneratorConfig, seed: u64) -> Generator {
        Generator {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            next_id: 1,
            d_jet_soft: Poisson::new(cfg.jet_soft_lambda).expect("λ > 0"),
            d_jet_tail: Poisson::new(cfg.jet_tail_lambda).expect("λ > 0"),
            d_muon: Poisson::new(cfg.muon_lambda).expect("λ > 0"),
            d_electron: Poisson::new(cfg.electron_lambda).expect("λ > 0"),
            d_photon: Poisson::new(cfg.photon_lambda).expect("λ > 0"),
            d_tau: Poisson::new(cfg.tau_lambda).expect("λ > 0"),
            d_eta_jet: Normal::new(0.0, 1.6).expect("σ > 0"),
            d_eta_lep: Normal::new(0.0, 1.1).expect("σ > 0"),
            d_jet_mass: Normal::new(8.0, 4.0).expect("σ > 0"),
            d_btag_light: Beta::new(1.0, 8.0).expect("valid"),
            d_btag_heavy: Beta::new(6.0, 1.5).expect("valid"),
            d_iso: Exp::new(8.0).expect("λ > 0"),
            d_impact: Normal::new(0.0, 0.01).expect("σ > 0"),
            d_z_mass: Cauchy::new(Z_MASS, Z_WIDTH / 2.0).expect("valid"),
            d_top_mass: Normal::new(TOP_MASS, 11.0).expect("σ > 0"),
            d_boost_pt: Exp::new(1.0 / 22.0).expect("λ > 0"),
        }
    }

    /// Like [`Generator::new`], but event ids start at `first_id` instead
    /// of 1 — so a shard generated in isolation carries the same ids it
    /// would have carried inside a longer run (see [`ShardedSpec`]).
    pub fn starting_at(cfg: GeneratorConfig, seed: u64, first_id: u64) -> Generator {
        let mut g = Generator::new(cfg, seed);
        g.next_id = first_id;
        g
    }

    /// Generates `n` events into a vector.
    pub fn generate(&mut self, n: usize) -> Vec<Event> {
        (0..n).map(|_| self.next_event()).collect()
    }

    fn next_event(&mut self) -> Event {
        let id = self.next_id;
        self.next_id += 1;

        let mut jets = Vec::new();
        let mut muons = Vec::new();
        let mut electrons = Vec::new();

        // Prompt (uncorrelated) particles.
        let n_soft = self.d_jet_soft.sample(&mut self.rng) as usize;
        let n_jets = if self.rng.gen_bool(self.cfg.jet_tail_prob) {
            n_soft
                + self.cfg.jet_tail_base as usize
                + self.d_jet_tail.sample(&mut self.rng) as usize
        } else {
            n_soft
        };
        for _ in 0..n_jets {
            jets.push(self.random_jet(None));
        }
        let n_mu = self.d_muon.sample(&mut self.rng) as usize;
        for _ in 0..n_mu {
            muons.push(self.random_muon(None));
        }
        let n_el = self.d_electron.sample(&mut self.rng) as usize;
        for _ in 0..n_el {
            electrons.push(self.random_electron(None));
        }

        // Z → ℓℓ injection.
        if self.rng.gen_bool(self.cfg.z_prob) {
            let m = self
                .d_z_mass
                .sample(&mut self.rng)
                .clamp(Z_MASS - 35.0, Z_MASS + 35.0);
            let to_muons = self.rng.gen_bool(2.0 / 3.0);
            let lep_mass = if to_muons { MUON_MASS } else { ELECTRON_MASS };
            let (p1, p2) = self.decay_resonance(m, lep_mass, lep_mass);
            let charge = if self.rng.gen_bool(0.5) { 1 } else { -1 };
            if to_muons {
                muons.push(self.random_muon(Some((p1, charge))));
                muons.push(self.random_muon(Some((p2, -charge))));
            } else {
                electrons.push(self.random_electron(Some((p1, charge))));
                electrons.push(self.random_electron(Some((p2, -charge))));
            }
        }

        // t → 3 jets injection (sequential two-body decays t → b W, W → qq̄).
        if self.rng.gen_bool(self.cfg.top_prob) {
            let mt = self.d_top_mass.sample(&mut self.rng).max(100.0);
            let (b, w) = self.decay_resonance(mt, 10.0, 80.4);
            let (q1, q2) = self.decay_in_flight(&w, 7.0, 7.0);
            for (p, heavy) in [(b, true), (q1, false), (q2, false)] {
                let mut j = self.random_jet(Some(p));
                if heavy {
                    j.btag = q(self.d_btag_heavy.sample(&mut self.rng));
                }
                jets.push(j);
            }
        }

        // Analysis convention: collections ordered by decreasing pt.
        jets.sort_by(|a, b| b.pt.partial_cmp(&a.pt).expect("finite pt"));
        muons.sort_by(|a, b| b.pt.partial_cmp(&a.pt).expect("finite pt"));
        electrons.sort_by(|a, b| b.pt.partial_cmp(&a.pt).expect("finite pt"));

        let n_ph = self.d_photon.sample(&mut self.rng) as usize;
        let photons = (0..n_ph).map(|_| self.random_photon()).collect();
        let n_tau = self.d_tau.sample(&mut self.rng) as usize;
        let taus = (0..n_tau).map(|_| self.random_tau()).collect();

        let met = self.random_met(&jets, &muons, &electrons);

        Event {
            run: 194_108,
            luminosity_block: (id / 1_000 + 1) as u32,
            event: id,
            met,
            jets,
            muons,
            electrons,
            photons,
            taus,
        }
    }

    /// Isotropic two-body decay of a resonance with mass `m` produced with a
    /// random lab momentum; returns the daughters in the lab frame.
    fn decay_resonance(&mut self, m: f64, m1: f64, m2: f64) -> (FourMomentum, FourMomentum) {
        let pt = self.d_boost_pt.sample(&mut self.rng);
        let eta: f64 = self.d_eta_lep.sample(&mut self.rng).clamp(-2.4, 2.4);
        let phi = self
            .rng
            .gen_range(-std::f64::consts::PI..std::f64::consts::PI);
        let parent = FourMomentum::from_pt_eta_phi_m(pt, eta, phi, m);
        self.decay_in_flight(&parent, m1, m2)
    }

    /// Two-body decay of a moving parent into daughters of mass `m1`, `m2`.
    fn decay_in_flight(
        &mut self,
        parent: &FourMomentum,
        m1: f64,
        m2: f64,
    ) -> (FourMomentum, FourMomentum) {
        let m = parent.mass().max(m1 + m2 + 1e-6);
        // Momentum of either daughter in the rest frame (Källén function).
        let e1 = (m * m + m1 * m1 - m2 * m2) / (2.0 * m);
        let p = (e1 * e1 - m1 * m1).max(0.0).sqrt();
        // Isotropic direction.
        let cos_t: f64 = self.rng.gen_range(-1.0..1.0);
        let sin_t = (1.0 - cos_t * cos_t).sqrt();
        let az = self.rng.gen_range(0.0..2.0 * std::f64::consts::PI);
        let (px, py, pz) = (p * sin_t * az.cos(), p * sin_t * az.sin(), p * cos_t);
        let d1 = FourMomentum::new(px, py, pz, (p * p + m1 * m1).sqrt());
        let d2 = FourMomentum::new(-px, -py, -pz, (p * p + m2 * m2).sqrt());
        let (bx, by, bz) = parent.beta();
        (d1.boost(bx, by, bz), d2.boost(bx, by, bz))
    }

    fn random_jet(&mut self, p: Option<FourMomentum>) -> Jet {
        let (pt, eta, phi, mass) = match p {
            Some(p) => (
                p.pt().max(15.0),
                p.eta().clamp(-4.0, 4.0),
                p.phi(),
                p.mass(),
            ),
            None => (
                15.0 + Exp::new(1.0 / 18.0).expect("λ > 0").sample(&mut self.rng),
                self.d_eta_jet.sample(&mut self.rng).clamp(-4.0, 4.0),
                self.rng
                    .gen_range(-std::f64::consts::PI..std::f64::consts::PI),
                self.d_jet_mass.sample(&mut self.rng).max(0.1),
            ),
        };
        let heavy = self.rng.gen_bool(0.12);
        let btag = if heavy {
            self.d_btag_heavy.sample(&mut self.rng)
        } else {
            self.d_btag_light.sample(&mut self.rng)
        };
        Jet {
            pt: q(pt),
            eta: q(eta),
            phi: q(phi),
            mass: q(mass),
            btag: q(btag),
            pu_id: self.rng.gen_bool(0.9),
        }
    }

    fn lepton_kinematics(&mut self, p: Option<FourMomentum>, mass: f64) -> (f64, f64, f64) {
        match p {
            Some(p) => (p.pt().max(3.0), p.eta().clamp(-2.4, 2.4), p.phi()),
            None => {
                let _ = mass;
                (
                    3.0 + Exp::new(1.0 / 12.0).expect("λ > 0").sample(&mut self.rng),
                    self.d_eta_lep.sample(&mut self.rng).clamp(-2.4, 2.4),
                    self.rng
                        .gen_range(-std::f64::consts::PI..std::f64::consts::PI),
                )
            }
        }
    }

    fn random_muon(&mut self, inject: Option<(FourMomentum, i32)>) -> Muon {
        let (p, charge) = match inject {
            Some((p, c)) => (Some(p), c),
            None => (None, if self.rng.gen_bool(0.5) { 1 } else { -1 }),
        };
        let (pt, eta, phi) = self.lepton_kinematics(p, MUON_MASS);
        Muon {
            pt: q(pt),
            eta: q(eta),
            phi: q(phi),
            mass: q(MUON_MASS),
            charge,
            pf_rel_iso03_all: q(self.d_iso.sample(&mut self.rng)),
            pf_rel_iso04_all: q(self.d_iso.sample(&mut self.rng) * 1.2),
            tight_id: self.rng.gen_bool(0.8),
            soft_id: self.rng.gen_bool(0.3),
            dxy: q(self.d_impact.sample(&mut self.rng)),
            dxy_err: q(self.d_impact.sample(&mut self.rng).abs() * 0.3 + 0.001),
            dz: q(self.d_impact.sample(&mut self.rng) * 2.0),
            dz_err: q(self.d_impact.sample(&mut self.rng).abs() * 0.5 + 0.002),
            jet_idx: -1,
            gen_part_idx: self.rng.gen_range(-1..50),
        }
    }

    fn random_electron(&mut self, inject: Option<(FourMomentum, i32)>) -> Electron {
        let (p, charge) = match inject {
            Some((p, c)) => (Some(p), c),
            None => (None, if self.rng.gen_bool(0.5) { 1 } else { -1 }),
        };
        let (pt, eta, phi) = self.lepton_kinematics(p, ELECTRON_MASS);
        Electron {
            pt: q(pt),
            eta: q(eta),
            phi: q(phi),
            mass: q(ELECTRON_MASS),
            charge,
            pf_rel_iso03_all: q(self.d_iso.sample(&mut self.rng)),
            dxy: q(self.d_impact.sample(&mut self.rng)),
            dxy_err: q(self.d_impact.sample(&mut self.rng).abs() * 0.3 + 0.001),
            dz: q(self.d_impact.sample(&mut self.rng) * 2.0),
            dz_err: q(self.d_impact.sample(&mut self.rng).abs() * 0.5 + 0.002),
            cut_based: self.rng.gen_range(0..5),
            pf_id: self.rng.gen_bool(0.7),
            jet_idx: -1,
            gen_part_idx: self.rng.gen_range(-1..50),
        }
    }

    fn random_photon(&mut self) -> Photon {
        let (pt, eta, phi) = self.lepton_kinematics(None, 0.0);
        Photon {
            pt: q(pt),
            eta: q(eta),
            phi: q(phi),
            mass: 0.0,
            charge: 0,
            pf_rel_iso03_all: q(self.d_iso.sample(&mut self.rng)),
            jet_idx: -1,
            gen_part_idx: self.rng.gen_range(-1..50),
        }
    }

    fn random_tau(&mut self) -> Tau {
        let (pt, eta, phi) = self.lepton_kinematics(None, 1.777);
        Tau {
            pt: q(pt + 15.0),
            eta: q(eta),
            phi: q(phi),
            mass: q(self.rng.gen_range(0.5..1.7)),
            charge: if self.rng.gen_bool(0.5) { 1 } else { -1 },
            decay_mode: self.rng.gen_range(0..11),
            rel_iso_all: q(self.d_iso.sample(&mut self.rng)),
            id_iso_raw: q(self.rng.gen_range(0.0..30.0)),
            jet_idx: -1,
            gen_part_idx: self.rng.gen_range(-1..50),
        }
    }

    fn random_met(&mut self, jets: &[Jet], muons: &[Muon], electrons: &[Electron]) -> Met {
        // Rayleigh-distributed genuine MET plus resolution smearing
        // correlated with total hadronic activity.
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let rayleigh = 14.0 * (-2.0 * u1.ln()).sqrt();
        let sum_jet_pt: f64 = jets.iter().map(|j| j.pt).sum();
        let sum_lep_pt: f64 =
            muons.iter().map(|m| m.pt).sum::<f64>() + electrons.iter().map(|e| e.pt).sum::<f64>();
        let sumet = sum_jet_pt + sum_lep_pt + self.rng.gen_range(50.0..250.0);
        let pt = rayleigh * (1.0 + 0.004 * sum_jet_pt);
        let phi = self
            .rng
            .gen_range(-std::f64::consts::PI..std::f64::consts::PI);
        let sigma = 0.6 * sumet.sqrt();
        Met {
            pt: q(pt),
            phi: q(phi),
            sumet: q(sumet),
            significance: q(pt / sigma.max(1e-6)),
            cov_xx: q(sigma * sigma),
            cov_xy: q(self.rng.gen_range(-0.2..0.2) * sigma * sigma),
            cov_yy: q(sigma * sigma * self.rng.gen_range(0.8..1.2)),
        }
    }
}

impl Iterator for Generator {
    type Item = Event;
    fn next(&mut self) -> Option<Event> {
        Some(self.next_event())
    }
}

/// Generates a data set and materializes it into a columnar table.
pub fn build_dataset(spec: DatasetSpec) -> (Vec<Event>, nf2_columnar::Table) {
    let mut g = Generator::new(GeneratorConfig::default(), spec.seed);
    let events = g.generate(spec.n_events);
    let table =
        crate::to_value::events_to_table(&events, spec.row_group_size).expect("events fit schema");
    (events, table)
}

/// splitmix64 mixing step — derives statistically independent per-shard
/// seeds from one root seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A scaled data set built from fixed-size, independently seeded shards.
///
/// The paper's Figure 2 data-size scaling study measures the same queries
/// at 1 ×, 8 × and 54 M-event scale of one physical data set. Replaying
/// that here requires a family of tables where the *k*-shard table is a
/// strict prefix of the *k′ > k*-shard table — otherwise a throughput
/// difference between scales could come from different data rather than
/// from more of it. Per-shard seeds derived by a splitmix64 mix from the
/// root seed (rather than one sequential RNG stream) buy exactly that:
/// shard *i* is bit-identical no matter how many shards follow it, and
/// any shard can be regenerated in isolation (the unit a parallel scan
/// would fetch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardedSpec {
    /// Events generated per shard.
    pub events_per_shard: usize,
    /// Number of shards (total events = `shards × events_per_shard`).
    pub shards: usize,
    /// Events per row group in the materialized table. Keep it a divisor
    /// of `events_per_shard` so shard boundaries align with row-group
    /// boundaries and the prefix property holds group-for-group.
    pub row_group_size: usize,
    /// Root seed; per-shard seeds are derived, not sequential.
    pub seed: u64,
}

impl ShardedSpec {
    /// Total events across all shards.
    pub fn n_events(&self) -> usize {
        self.shards * self.events_per_shard
    }

    /// The derived seed of shard `i` — independent of `self.shards`, so
    /// growing the data set never reshuffles existing shards.
    pub fn shard_seed(&self, i: usize) -> u64 {
        splitmix64(self.seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// The same spec with a different shard count (for building the
    /// scale ladder of a Figure 2-style study).
    pub fn with_shards(self, shards: usize) -> ShardedSpec {
        ShardedSpec { shards, ..self }
    }

    /// Scale factor relative to the paper's 53.4 M events.
    pub fn paper_scale_factor(&self) -> f64 {
        53_400_000.0 / self.n_events() as f64
    }
}

/// Builds the sharded table by streaming one event at a time into a
/// [`TableBuilder`](nf2_columnar::TableBuilder): peak memory is one
/// decoded event plus the open row group, never the whole decoded data
/// set — which is what makes the benchmark-scale and paper-scale tables
/// of the scaling study materializable at all.
pub fn build_sharded_table(spec: ShardedSpec) -> nf2_columnar::Table {
    let mut b = nf2_columnar::TableBuilder::new(
        crate::schema::TABLE_NAME,
        crate::schema::event_schema().expect("event schema is valid"),
        spec.row_group_size,
    );
    for shard in 0..spec.shards {
        let first_id = (shard * spec.events_per_shard) as u64 + 1;
        let g =
            Generator::starting_at(GeneratorConfig::default(), spec.shard_seed(shard), first_id);
        for e in g.take(spec.events_per_shard) {
            b.append(&crate::to_value::event_to_value(&e))
                .expect("generated events fit schema");
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<Event> {
        Generator::new(GeneratorConfig::default(), 1234).generate(n)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = Generator::new(GeneratorConfig::default(), 99).generate(100);
        let b = Generator::new(GeneratorConfig::default(), 99).generate(100);
        assert_eq!(a, b);
        let c = Generator::new(GeneratorConfig::default(), 100).generate(100);
        assert_ne!(a, c);
    }

    #[test]
    fn multiplicities_match_figure3_shape() {
        let events = sample(20_000);
        let n = events.len() as f64;
        let mean_jets = events.iter().map(|e| e.jets.len()).sum::<usize>() as f64 / n;
        let mean_mu = events.iter().map(|e| e.muons.len()).sum::<usize>() as f64 / n;
        let mean_el = events.iter().map(|e| e.electrons.len()).sum::<usize>() as f64 / n;
        // Table 2: Q2 explores 3.2 jets/event on average.
        assert!((2.6..4.0).contains(&mean_jets), "mean jets {mean_jets}");
        // Muons occur more frequently than electrons (Fig 3).
        assert!(mean_mu > mean_el, "mu {mean_mu} vs el {mean_el}");
        // Jets reach several dozen in a non-negligible fraction of events.
        let big = events.iter().filter(|e| e.jets.len() >= 10).count() as f64 / n;
        assert!(big > 0.05, "fraction of ≥10-jet events: {big}");
        let max_jets = events.iter().map(|e| e.jets.len()).max().unwrap();
        assert!(max_jets >= 20, "max jets {max_jets}");
    }

    #[test]
    fn combinatorics_match_table2() {
        let events = sample(20_000);
        let n = events.len() as f64;
        let c3 = |k: usize| (k * k.saturating_sub(1) * k.saturating_sub(2)) / 6;
        let c2 = |k: usize| (k * k.saturating_sub(1)) / 2;
        let trijets = events.iter().map(|e| c3(e.jets.len())).sum::<usize>() as f64 / n;
        let mu_pairs = events.iter().map(|e| c2(e.muons.len())).sum::<usize>() as f64 / n;
        // Paper: Q6 explores 1 + C(J,3) ≈ 42.8, Q5 explores 1 + C(M,2) ≈ 1.6.
        assert!(
            (20.0..75.0).contains(&trijets),
            "mean trijet combinations {trijets}"
        );
        assert!((0.2..1.6).contains(&mu_pairs), "mean muon pairs {mu_pairs}");
    }

    #[test]
    fn z_peak_present() {
        let events = sample(30_000);
        // Count opposite-charge dimuon masses in the Z window.
        let mut in_window = 0usize;
        let mut pairs = 0usize;
        for e in &events {
            for i in 0..e.muons.len() {
                for j in (i + 1)..e.muons.len() {
                    let (a, b) = (&e.muons[i], &e.muons[j]);
                    if a.charge * b.charge < 0 {
                        pairs += 1;
                        let m = physics::invariant_mass_2(
                            a.pt, a.eta, a.phi, a.mass, b.pt, b.eta, b.phi, b.mass,
                        );
                        if (60.0..120.0).contains(&m) {
                            in_window += 1;
                        }
                    }
                }
            }
        }
        assert!(pairs > 0);
        let frac = in_window as f64 / events.len() as f64;
        // Z injection rate is 10% × 2/3 to muons ⇒ roughly 6–7% of events
        // should carry an in-window pair.
        assert!((0.02..0.15).contains(&frac), "Z-window fraction {frac}");
    }

    #[test]
    fn collections_sorted_by_pt() {
        for e in sample(500) {
            assert!(e.jets.windows(2).all(|w| w[0].pt >= w[1].pt));
            assert!(e.muons.windows(2).all(|w| w[0].pt >= w[1].pt));
            assert!(e.electrons.windows(2).all(|w| w[0].pt >= w[1].pt));
        }
    }

    #[test]
    fn values_are_f32_exact() {
        for e in sample(200) {
            assert_eq!(e.met.pt, e.met.pt as f32 as f64);
            for j in &e.jets {
                assert_eq!(j.pt, j.pt as f32 as f64);
                assert_eq!(j.eta, j.eta as f32 as f64);
                assert!((0.0..=1.0).contains(&j.btag));
            }
            for m in &e.muons {
                assert!(m.charge == 1 || m.charge == -1);
                assert!(m.pt >= 3.0);
                assert!(m.eta.abs() <= 2.4 + 1e-6);
            }
        }
    }

    #[test]
    fn event_ids_unique_and_increasing() {
        let events = sample(1000);
        for w in events.windows(2) {
            assert!(w[1].event == w[0].event + 1);
        }
    }

    #[test]
    fn build_dataset_produces_row_groups() {
        let (events, table) = build_dataset(DatasetSpec::tiny());
        assert_eq!(events.len(), 2_000);
        assert_eq!(table.n_rows(), 2_000);
        assert_eq!(table.row_groups().len(), 4);
        assert!(DatasetSpec::benchmark().paper_scale_factor() > 50.0);
    }

    fn sharded(shards: usize) -> ShardedSpec {
        ShardedSpec {
            events_per_shard: 600,
            shards,
            row_group_size: 200,
            seed: 0xAD1B70,
        }
    }

    #[test]
    fn sharded_scales_nest_as_prefixes() {
        // The scale-k table must be a strict prefix of the scale-k′ table
        // (k < k′): same fingerprint for the head, group-for-group.
        let small = build_sharded_table(sharded(2));
        let large = build_sharded_table(sharded(4));
        assert_eq!(small.n_rows(), 1_200);
        assert_eq!(large.n_rows(), 2_400);
        assert_eq!(
            small.fingerprint(),
            large.head(small.n_rows()).fingerprint(),
            "growing the shard count must not disturb existing shards"
        );
        assert_ne!(small.fingerprint(), large.fingerprint());
    }

    #[test]
    fn sharded_shards_regenerate_in_isolation() {
        // Shard i rebuilt alone is bit-identical to shard i inside the
        // full table (row_group_size divides events_per_shard, so shard
        // boundaries are row-group boundaries).
        let spec = sharded(3);
        let full = build_sharded_table(spec);
        let groups_per_shard = spec.events_per_shard / spec.row_group_size;
        for i in 0..spec.shards {
            let alone = build_sharded_table(ShardedSpec {
                events_per_shard: spec.events_per_shard,
                shards: 1,
                row_group_size: spec.row_group_size,
                seed: spec.seed,
            });
            // shard 0 alone ≡ first shard of the full table; deeper shards
            // need their ids and seeds checked through the event stream.
            if i == 0 {
                assert_eq!(
                    alone.fingerprint(),
                    full.shard(0, spec.shards).fingerprint()
                );
            }
            let part = full.shard(i, spec.shards);
            assert_eq!(part.row_groups().len(), groups_per_shard);
            assert_eq!(part.n_rows(), spec.events_per_shard);
        }
    }

    #[test]
    fn sharded_event_ids_are_globally_sequential() {
        let spec = sharded(2);
        let mut want = 1i64;
        for shard in 0..spec.shards {
            let g = Generator::starting_at(
                GeneratorConfig::default(),
                spec.shard_seed(shard),
                (shard * spec.events_per_shard) as u64 + 1,
            );
            for e in g.take(spec.events_per_shard) {
                assert_eq!(e.event as i64, want);
                want += 1;
            }
        }
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let spec = sharded(4);
        let seeds: Vec<u64> = (0..64).map(|i| spec.shard_seed(i)).collect();
        let uniq: std::collections::BTreeSet<u64> = seeds.iter().copied().collect();
        assert_eq!(uniq.len(), seeds.len());
        assert_eq!(
            spec.shard_seed(3),
            spec.with_shards(100).shard_seed(3),
            "shard seeds must not depend on the shard count"
        );
        assert!(spec.paper_scale_factor() > 1.0);
    }
}
