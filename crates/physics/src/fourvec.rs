//! Relativistic four-momentum arithmetic.
//!
//! HEP data sets store particles in detector coordinates: transverse
//! momentum `pt`, pseudorapidity `eta`, azimuth `phi`, and `mass`. Combining
//! particles (e.g. forming the trijet system of (Q6) or the dilepton system
//! of (Q5)/(Q8)) requires converting to Cartesian (px, py, pz, E), adding
//! component-wise, and converting back — the "vector space transformation,
//! piece-wise addition, and reverse transformation" of the paper's §3.5.

/// A four-momentum in Cartesian representation.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct FourMomentum {
    /// Momentum x-component (GeV).
    pub px: f64,
    /// Momentum y-component (GeV).
    pub py: f64,
    /// Momentum z-component (GeV).
    pub pz: f64,
    /// Energy (GeV).
    pub e: f64,
}

impl FourMomentum {
    /// Constructs from Cartesian components.
    pub fn new(px: f64, py: f64, pz: f64, e: f64) -> Self {
        FourMomentum { px, py, pz, e }
    }

    /// Constructs from detector coordinates (pt, η, φ, m).
    ///
    /// ```
    /// use physics::FourMomentum;
    /// let p = FourMomentum::from_pt_eta_phi_m(50.0, 0.0, 0.0, 0.0);
    /// assert!((p.px - 50.0).abs() < 1e-12);
    /// assert!(p.pz.abs() < 1e-12);
    /// ```
    pub fn from_pt_eta_phi_m(pt: f64, eta: f64, phi: f64, mass: f64) -> Self {
        let px = pt * phi.cos();
        let py = pt * phi.sin();
        let pz = pt * eta.sinh();
        let e = (px * px + py * py + pz * pz + mass * mass).sqrt();
        FourMomentum { px, py, pz, e }
    }

    /// Transverse momentum `sqrt(px² + py²)`.
    pub fn pt(&self) -> f64 {
        self.px.hypot(self.py)
    }

    /// Azimuthal angle in `(-π, π]`.
    pub fn phi(&self) -> f64 {
        self.py.atan2(self.px)
    }

    /// Pseudorapidity `asinh(pz / pt)`.
    ///
    /// Returns ±∞ for purely longitudinal momenta (pt = 0, pz ≠ 0) and 0.0
    /// for the zero vector, matching ROOT's `TLorentzVector::Eta` behaviour
    /// closely enough for analysis cuts.
    pub fn eta(&self) -> f64 {
        let pt = self.pt();
        if pt == 0.0 {
            if self.pz == 0.0 {
                0.0
            } else if self.pz > 0.0 {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            }
        } else {
            (self.pz / pt).asinh()
        }
    }

    /// Invariant mass `sqrt(E² − |p|²)`, clamped at zero for round-off.
    pub fn mass(&self) -> f64 {
        let m2 = self.e * self.e - (self.px * self.px + self.py * self.py + self.pz * self.pz);
        if m2 > 0.0 {
            m2.sqrt()
        } else {
            0.0
        }
    }

    /// Magnitude of the spatial momentum.
    pub fn p(&self) -> f64 {
        (self.px * self.px + self.py * self.py + self.pz * self.pz).sqrt()
    }

    /// Component-wise sum (the four-momentum of a composite system).
    pub fn add(&self, other: &FourMomentum) -> FourMomentum {
        FourMomentum {
            px: self.px + other.px,
            py: self.py + other.py,
            pz: self.pz + other.pz,
            e: self.e + other.e,
        }
    }

    /// Velocity vector `β = p/E`, used by [`FourMomentum::boost`].
    pub fn beta(&self) -> (f64, f64, f64) {
        (self.px / self.e, self.py / self.e, self.pz / self.e)
    }

    /// Applies a Lorentz boost with velocity `(bx, by, bz)` (|β| < 1).
    ///
    /// Used by the synthetic data generator to decay resonances: daughters
    /// are produced back-to-back in the parent rest frame and boosted into
    /// the lab frame with the parent's `β`.
    pub fn boost(&self, bx: f64, by: f64, bz: f64) -> FourMomentum {
        let b2 = bx * bx + by * by + bz * bz;
        if b2 == 0.0 {
            return *self;
        }
        debug_assert!(b2 < 1.0, "boost velocity must be < c");
        let gamma = 1.0 / (1.0 - b2).sqrt();
        let bp = bx * self.px + by * self.py + bz * self.pz;
        let gamma2 = (gamma - 1.0) / b2;
        FourMomentum {
            px: self.px + gamma2 * bp * bx + gamma * bx * self.e,
            py: self.py + gamma2 * bp * by + gamma * by * self.e,
            pz: self.pz + gamma2 * bp * bz + gamma * bz * self.e,
            e: gamma * (self.e + bp),
        }
    }
}

impl std::ops::Add for FourMomentum {
    type Output = FourMomentum;
    fn add(self, rhs: FourMomentum) -> FourMomentum {
        FourMomentum::add(&self, &rhs)
    }
}

impl std::iter::Sum for FourMomentum {
    fn sum<I: Iterator<Item = FourMomentum>>(iter: I) -> FourMomentum {
        iter.fold(FourMomentum::default(), |acc, p| acc + p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn detector_coordinate_roundtrip() {
        let p = FourMomentum::from_pt_eta_phi_m(42.0, 1.3, -2.1, 5.0);
        assert!((p.pt() - 42.0).abs() < EPS);
        assert!((p.eta() - 1.3).abs() < EPS);
        assert!((p.phi() - (-2.1)).abs() < EPS);
        assert!((p.mass() - 5.0).abs() < EPS);
    }

    #[test]
    fn massless_particle() {
        let p = FourMomentum::from_pt_eta_phi_m(10.0, 0.5, 0.3, 0.0);
        assert!(p.mass() < 1e-6);
        assert!((p.e - p.p()).abs() < 1e-9);
    }

    #[test]
    fn composite_mass_exceeds_parts_for_back_to_back() {
        // Two massless particles back to back: m = 2*pt.
        let a = FourMomentum::from_pt_eta_phi_m(50.0, 0.0, 0.0, 0.0);
        let b = FourMomentum::from_pt_eta_phi_m(50.0, 0.0, std::f64::consts::PI, 0.0);
        let sum = a + b;
        assert!((sum.mass() - 100.0).abs() < 1e-9);
        assert!(sum.pt() < 1e-9);
    }

    #[test]
    fn eta_degenerate_cases() {
        assert_eq!(FourMomentum::new(0.0, 0.0, 0.0, 0.0).eta(), 0.0);
        assert_eq!(FourMomentum::new(0.0, 0.0, 5.0, 5.0).eta(), f64::INFINITY);
        assert_eq!(
            FourMomentum::new(0.0, 0.0, -5.0, 5.0).eta(),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn boost_to_rest_frame_recovers_mass_as_energy() {
        let p = FourMomentum::from_pt_eta_phi_m(30.0, 0.7, 1.0, 91.2);
        let (bx, by, bz) = p.beta();
        // Boost with -β brings the particle to rest.
        let rest = p.boost(-bx, -by, -bz);
        assert!(rest.p() < 1e-6);
        assert!((rest.e - 91.2).abs() < 1e-6);
    }

    #[test]
    fn boost_preserves_invariant_mass() {
        let p = FourMomentum::from_pt_eta_phi_m(25.0, -1.1, 0.4, 3.5);
        let q = p.boost(0.3, -0.2, 0.5);
        assert!((q.mass() - p.mass()).abs() < 1e-9);
    }

    #[test]
    fn sum_iterator() {
        let parts = [
            FourMomentum::from_pt_eta_phi_m(10.0, 0.0, 0.0, 1.0),
            FourMomentum::from_pt_eta_phi_m(20.0, 0.5, 1.0, 2.0),
            FourMomentum::from_pt_eta_phi_m(30.0, -0.5, -1.0, 3.0),
        ];
        let total: FourMomentum = parts.iter().copied().sum();
        let manual = parts[0] + parts[1] + parts[2];
        assert_eq!(total, manual);
    }
}
