//! Property-based tests for kinematics and histograms.

use proptest::prelude::*;

use crate::fourvec::FourMomentum;
use crate::hist::{HistSpec, Histogram};
use crate::kinematics::{delta_phi, delta_r, transverse_mass};

fn pt() -> impl Strategy<Value = f64> {
    0.1..500.0f64
}
fn eta() -> impl Strategy<Value = f64> {
    -4.0..4.0f64
}
fn phi() -> impl Strategy<Value = f64> {
    -std::f64::consts::PI..std::f64::consts::PI
}
fn mass() -> impl Strategy<Value = f64> {
    0.0..50.0f64
}

proptest! {
    /// (pt, η, φ, m) → Cartesian → (pt, η, φ, m) round-trips.
    #[test]
    fn fourvec_roundtrip(pt in pt(), eta in eta(), phi in phi(), m in mass()) {
        let p = FourMomentum::from_pt_eta_phi_m(pt, eta, phi, m);
        prop_assert!((p.pt() - pt).abs() / pt < 1e-9);
        prop_assert!((p.eta() - eta).abs() < 1e-9);
        prop_assert!(delta_phi(p.phi(), phi).abs() < 1e-9);
        // Mass reconstruction loses precision for ultra-relativistic
        // particles (E ≫ m); tolerance is scaled to the energy.
        prop_assert!((p.mass() - m).abs() < 1e-6 * p.e.max(1.0));
    }

    /// Invariant mass of a two-particle system is ≥ sum of masses − ε and
    /// invariant under exchanging the particles.
    #[test]
    fn pair_mass_symmetric(
        pt1 in pt(), eta1 in eta(), phi1 in phi(), m1 in mass(),
        pt2 in pt(), eta2 in eta(), phi2 in phi(), m2 in mass(),
    ) {
        let a = FourMomentum::from_pt_eta_phi_m(pt1, eta1, phi1, m1);
        let b = FourMomentum::from_pt_eta_phi_m(pt2, eta2, phi2, m2);
        let mab = (a + b).mass();
        let mba = (b + a).mass();
        prop_assert!((mab - mba).abs() < 1e-9);
        prop_assert!(mab + 1e-6 * (a.e + b.e) >= m1 + m2);
    }

    /// Boosting by β and then −β is the identity (up to round-off).
    #[test]
    fn boost_inverse(
        pt in pt(), eta in eta(), phi in phi(), m in 0.1..50.0f64,
        bx in -0.9..0.9f64, by in -0.4..0.4f64, bz in -0.4..0.4f64,
    ) {
        prop_assume!(bx * bx + by * by + bz * bz < 0.95);
        let p = FourMomentum::from_pt_eta_phi_m(pt, eta, phi, m);
        let q = p.boost(bx, by, bz).boost(-bx, -by, -bz);
        let scale = p.e.max(1.0);
        prop_assert!((q.px - p.px).abs() / scale < 1e-6);
        prop_assert!((q.py - p.py).abs() / scale < 1e-6);
        prop_assert!((q.pz - p.pz).abs() / scale < 1e-6);
        prop_assert!((q.e - p.e).abs() / scale < 1e-6);
    }

    /// Δφ is always in (-π, π] and antisymmetric.
    #[test]
    fn delta_phi_range(a in -10.0..10.0f64, b in -10.0..10.0f64) {
        let d = delta_phi(a, b);
        prop_assert!(d > -std::f64::consts::PI - 1e-12);
        prop_assert!(d <= std::f64::consts::PI + 1e-12);
        prop_assert!((delta_phi(b, a) + d).abs() < 1e-9
            || (delta_phi(b, a) + d - 2.0 * std::f64::consts::PI).abs() < 1e-9
            || (delta_phi(b, a) + d + 2.0 * std::f64::consts::PI).abs() < 1e-9);
    }

    /// ΔR satisfies the triangle-ish lower bounds: ≥ |Δη| and ≥ |Δφ|.
    #[test]
    fn delta_r_bounds(e1 in eta(), p1 in phi(), e2 in eta(), p2 in phi()) {
        let dr = delta_r(e1, p1, e2, p2);
        prop_assert!(dr + 1e-12 >= (e1 - e2).abs());
        prop_assert!(dr + 1e-12 >= delta_phi(p1, p2).abs());
    }

    /// Transverse mass is bounded by 2·sqrt(pt·met).
    #[test]
    fn mt_bounds(ptl in pt(), phil in phi(), met in 0.0..300.0f64, metphi in phi()) {
        let mt = transverse_mass(ptl, phil, met, metphi);
        prop_assert!(mt >= 0.0);
        prop_assert!(mt <= 2.0 * (ptl * met).sqrt() + 1e-9);
    }

    /// Histogram filling conserves the total count and merge is equivalent
    /// to filling everything into one histogram.
    #[test]
    fn hist_merge_equals_sequential(
        xs in proptest::collection::vec(-50.0..150.0f64, 0..200),
        split in 0usize..200,
    ) {
        let spec = HistSpec::new(20, 0.0, 100.0);
        let split = split.min(xs.len());
        let mut whole = Histogram::new(spec);
        whole.fill_all(xs.iter().copied());
        let mut left = Histogram::new(spec);
        left.fill_all(xs[..split].iter().copied());
        let mut right = Histogram::new(spec);
        right.fill_all(xs[split..].iter().copied());
        left.merge(&right);
        prop_assert!(whole.counts_equal(&left));
        prop_assert_eq!(whole.total() as usize, xs.len());
    }

    /// Every filled value lands in exactly one bin.
    #[test]
    fn hist_bin_of_partition(x in -1e6..1e6f64) {
        let spec = HistSpec::new(100, -100.0, 100.0);
        let b = spec.bin_of(x);
        prop_assert!((-1..=100).contains(&b));
        if (0..100).contains(&b) {
            prop_assert!(spec.edge(b as usize) <= x);
            prop_assert!(x < spec.edge(b as usize + 1) + 1e-9);
        }
    }
}
