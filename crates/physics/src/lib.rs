//! # physics
//!
//! Particle-physics kinematics and histogramming kernels used by the ADL
//! benchmark queries.
//!
//! Every query engine in the workspace (SQL, JSONiq/FLWOR, RDataFrame-style)
//! and the reference implementations call into the same kernels defined
//! here, so cross-engine histogram validation is exact: identical inputs go
//! through identical floating-point operation sequences.
//!
//! The two core abstractions are:
//!
//! * [`FourMomentum`] — a relativistic four-vector in Cartesian
//!   (px, py, pz, E) representation with conversions from/to the detector
//!   coordinates (pt, η, φ, mass) that HEP data sets store, and
//! * [`Histogram`] — an equi-width 1-D histogram with dedicated under- and
//!   overflow bins, the output type of all eight ADL queries.

pub mod fourvec;
pub mod hist;
pub mod kinematics;

pub use fourvec::FourMomentum;
pub use hist::{HistSpec, Histogram};
pub use kinematics::{delta_phi, delta_r, invariant_mass_2, transverse_mass};

#[cfg(test)]
mod proptests;
