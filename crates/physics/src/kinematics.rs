//! Scalar kinematic formulas shared by all query implementations.

use crate::fourvec::FourMomentum;

/// Signed azimuthal angle difference wrapped into `[-π, π)`.
///
/// Uses a closed-form double-`mod` reduction rather than a subtraction
/// loop so that SQL/JSONiq query texts can spell out the *bit-identical*
/// computation (`MOD(MOD(d, 2π) + 2π, 2π) − π`) — a requirement for exact
/// cross-engine histogram validation.
pub fn delta_phi(phi1: f64, phi2: f64) -> f64 {
    let tau = 2.0 * std::f64::consts::PI;
    let d = phi1 - phi2 + std::f64::consts::PI;
    ((d % tau) + tau) % tau - std::f64::consts::PI
}

/// Angular distance `ΔR = sqrt(Δη² + Δφ²)` used by the jet–lepton isolation
/// cut of (Q7).
pub fn delta_r(eta1: f64, phi1: f64, eta2: f64, phi2: f64) -> f64 {
    let deta = eta1 - eta2;
    let dphi = delta_phi(phi1, phi2);
    (deta * deta + dphi * dphi).sqrt()
}

/// Invariant mass of a two-particle system given detector coordinates.
///
/// Convenience wrapper over [`FourMomentum`] used by (Q5) and (Q8).
#[allow(clippy::too_many_arguments)]
pub fn invariant_mass_2(
    pt1: f64,
    eta1: f64,
    phi1: f64,
    m1: f64,
    pt2: f64,
    eta2: f64,
    phi2: f64,
    m2: f64,
) -> f64 {
    let p1 = FourMomentum::from_pt_eta_phi_m(pt1, eta1, phi1, m1);
    let p2 = FourMomentum::from_pt_eta_phi_m(pt2, eta2, phi2, m2);
    (p1 + p2).mass()
}

/// Transverse mass of a lepton–MET system:
/// `mT = sqrt(2 · pt_l · MET · (1 − cos Δφ))` — the plotted quantity of (Q8).
///
/// The cosine is taken of the *raw* angle difference (cos is 2π-periodic,
/// so wrapping is unnecessary) — again keeping the float path identical to
/// the SQL/JSONiq formulations.
pub fn transverse_mass(pt_lep: f64, phi_lep: f64, met: f64, met_phi: f64) -> f64 {
    let dphi = phi_lep - met_phi;
    (2.0 * pt_lep * met * (1.0 - dphi.cos())).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn delta_phi_wraps() {
        assert!((delta_phi(PI - 0.1, -PI + 0.1) - (-0.2)).abs() < 1e-12);
        assert!((delta_phi(0.5, 0.2) - 0.3).abs() < 1e-12);
        // Result is always in (-π, π].
        for a in [-3.1, -1.0, 0.0, 1.0, 3.1] {
            for b in [-3.1, -1.0, 0.0, 1.0, 3.1] {
                let d = delta_phi(a, b);
                assert!(d > -PI - 1e-12 && d <= PI + 1e-12);
            }
        }
    }

    #[test]
    fn delta_r_symmetric_and_zero_on_self() {
        assert_eq!(delta_r(1.0, 0.5, 1.0, 0.5), 0.0);
        let d1 = delta_r(1.0, 0.5, -0.3, 2.0);
        let d2 = delta_r(-0.3, 2.0, 1.0, 0.5);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn z_peak_invariant_mass() {
        // Back-to-back muons with pt = mZ/2 give m = mZ.
        let m = invariant_mass_2(45.6, 0.0, 0.0, 0.105658, 45.6, 0.0, PI, 0.105658);
        assert!((m - 91.2).abs() < 0.1, "m = {m}");
    }

    #[test]
    fn transverse_mass_extremes() {
        // Δφ = π maximizes mT: mT = sqrt(4·pt·met) = 2·sqrt(pt·met).
        let mt = transverse_mass(50.0, 0.0, 50.0, PI);
        assert!((mt - 100.0).abs() < 1e-9);
        // Aligned lepton and MET: mT = 0.
        assert_eq!(transverse_mass(50.0, 1.0, 50.0, 1.0), 0.0);
    }
}
