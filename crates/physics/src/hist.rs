//! Equi-width 1-D histograms with under-/overflow bins.
//!
//! Every ADL query "plots" a quantity, which the benchmark defines as
//! filling an equi-width histogram (typically 100 bins with statically known
//! bounds) where values below/above the range land in dedicated under- and
//! overflow bins (paper §2.2). The histogram is therefore the result type
//! against which all engines are validated.

/// Static specification of a histogram: bin count and range.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistSpec {
    /// Number of regular bins (excluding under-/overflow).
    pub bins: usize,
    /// Lower edge of the first regular bin.
    pub lo: f64,
    /// Upper edge of the last regular bin.
    pub hi: f64,
}

impl HistSpec {
    /// Creates a spec; panics if `bins == 0` or `lo >= hi`.
    pub fn new(bins: usize, lo: f64, hi: f64) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        HistSpec { bins, lo, hi }
    }

    /// Bin width.
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.bins as f64
    }

    /// Maps a value to a bin index: `-1` for underflow, `bins` for overflow,
    /// otherwise `0..bins`. NaN counts as overflow (matching ROOT).
    pub fn bin_of(&self, x: f64) -> i64 {
        if x.is_nan() || x >= self.hi {
            self.bins as i64
        } else if x < self.lo {
            -1
        } else {
            let b = ((x - self.lo) / self.width()).floor() as i64;
            // Guard against floating-point edge effects at x == hi - ulp.
            b.min(self.bins as i64 - 1)
        }
    }

    /// Lower edge of regular bin `i`.
    pub fn edge(&self, i: usize) -> f64 {
        self.lo + self.width() * i as f64
    }
}

/// An equi-width histogram with under- and overflow bins.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    spec: HistSpec,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    /// Running sum of filled values (for mean), excluding under-/overflow.
    sum: f64,
    /// Running sum of squares (for stddev), excluding under-/overflow.
    sum2: f64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new(spec: HistSpec) -> Self {
        Histogram {
            spec,
            counts: vec![0; spec.bins],
            underflow: 0,
            overflow: 0,
            sum: 0.0,
            sum2: 0.0,
        }
    }

    /// The histogram's spec.
    pub fn spec(&self) -> HistSpec {
        self.spec
    }

    /// Fills one value.
    pub fn fill(&mut self, x: f64) {
        match self.spec.bin_of(x) {
            -1 => self.underflow += 1,
            b if b == self.spec.bins as i64 => self.overflow += 1,
            b => {
                self.counts[b as usize] += 1;
                self.sum += x;
                self.sum2 += x * x;
            }
        }
    }

    /// Fills many values.
    pub fn fill_all<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.fill(x);
        }
    }

    /// Directly adds `n` entries to regular bin `bin` (used by engines whose
    /// query text computes bin indices itself, e.g. SQL `GROUP BY FLOOR(…)`).
    ///
    /// Bin `-1` is underflow, `spec.bins` is overflow. Mean/stddev are
    /// approximated with the bin center for these entries.
    pub fn add_bin_count(&mut self, bin: i64, n: u64) {
        if bin < 0 {
            self.underflow += n;
        } else if bin >= self.spec.bins as i64 {
            self.overflow += n;
        } else {
            self.counts[bin as usize] += n;
            let center = self.spec.edge(bin as usize) + 0.5 * self.spec.width();
            self.sum += center * n as f64;
            self.sum2 += center * center * n as f64;
        }
    }

    /// Per-bin counts (regular bins only).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Underflow count.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Overflow count.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total entries including under-/overflow.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.counts.iter().sum::<u64>()
    }

    /// Entries in regular bins.
    pub fn in_range(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of in-range entries; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.in_range();
        (n > 0).then(|| self.sum / n as f64)
    }

    /// Population standard deviation of in-range entries; `None` when empty.
    pub fn stddev(&self) -> Option<f64> {
        let n = self.in_range();
        (n > 0).then(|| {
            let mean = self.sum / n as f64;
            (self.sum2 / n as f64 - mean * mean).max(0.0).sqrt()
        })
    }

    /// Merges another histogram with the same spec into this one.
    ///
    /// Panics if the specs differ — merging incompatible binnings is a
    /// programming error, not a data error.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.spec, other.spec, "merging incompatible histograms");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.sum += other.sum;
        self.sum2 += other.sum2;
    }

    /// Bin-count equality ignoring the running moments — the comparison used
    /// by cross-engine validation (engines that receive pre-binned results
    /// cannot reconstruct exact moments).
    pub fn counts_equal(&self, other: &Histogram) -> bool {
        self.spec == other.spec
            && self.counts == other.counts
            && self.underflow == other.underflow
            && self.overflow == other.overflow
    }

    /// Renders a compact ASCII summary (used by example binaries).
    pub fn ascii(&self, max_width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "entries={} (under={}, over={}) mean={:.3} std={:.3}\n",
            self.total(),
            self.underflow,
            self.overflow,
            self.mean().unwrap_or(0.0),
            self.stddev().unwrap_or(0.0),
        ));
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat(((c as f64 / peak as f64) * max_width as f64).round() as usize);
            out.push_str(&format!(
                "[{:>10.3}, {:>10.3}) {:>9} {}\n",
                self.spec.edge(i),
                self.spec.edge(i + 1),
                c,
                bar
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> HistSpec {
        HistSpec::new(10, 0.0, 100.0)
    }

    #[test]
    fn bin_mapping() {
        let s = spec();
        assert_eq!(s.bin_of(-0.001), -1);
        assert_eq!(s.bin_of(0.0), 0);
        assert_eq!(s.bin_of(9.999), 0);
        assert_eq!(s.bin_of(10.0), 1);
        assert_eq!(s.bin_of(99.999), 9);
        assert_eq!(s.bin_of(100.0), 10);
        assert_eq!(s.bin_of(f64::NAN), 10);
        assert_eq!(s.bin_of(f64::INFINITY), 10);
        assert_eq!(s.bin_of(f64::NEG_INFINITY), -1);
    }

    #[test]
    fn fill_and_total_conservation() {
        let mut h = Histogram::new(spec());
        h.fill_all([-5.0, 0.0, 15.0, 15.5, 99.0, 150.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 6);
        assert_eq!(h.in_range(), 4);
    }

    #[test]
    fn moments() {
        let mut h = Histogram::new(spec());
        h.fill_all([10.0, 20.0, 30.0]);
        assert!((h.mean().unwrap() - 20.0).abs() < 1e-12);
        let expected_std = (200.0f64 / 3.0).sqrt();
        assert!((h.stddev().unwrap() - expected_std).abs() < 1e-12);
        assert_eq!(Histogram::new(spec()).mean(), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(spec());
        let mut b = Histogram::new(spec());
        a.fill_all([5.0, 15.0]);
        b.fill_all([15.0, 200.0]);
        a.merge(&b);
        assert_eq!(a.counts()[0], 1);
        assert_eq!(a.counts()[1], 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_rejects_different_specs() {
        let mut a = Histogram::new(HistSpec::new(10, 0.0, 1.0));
        let b = Histogram::new(HistSpec::new(20, 0.0, 1.0));
        a.merge(&b);
    }

    #[test]
    fn add_bin_count_matches_fill_for_counts() {
        let mut a = Histogram::new(spec());
        a.fill_all([5.0, 15.0, -1.0, 101.0]);
        let mut b = Histogram::new(spec());
        b.add_bin_count(0, 1);
        b.add_bin_count(1, 1);
        b.add_bin_count(-1, 1);
        b.add_bin_count(10, 1);
        assert!(a.counts_equal(&b));
    }

    #[test]
    fn ascii_renders() {
        let mut h = Histogram::new(HistSpec::new(3, 0.0, 3.0));
        h.fill_all([0.5, 1.5, 1.6]);
        let s = h.ascii(20);
        assert!(s.contains("entries=3"));
        assert!(s.lines().count() == 4);
    }
}
