//! Tree-walking executor with lexical scopes.
//!
//! The executor interprets the validated AST directly against materialized
//! relations. Rows are [`Value`] structs; FROM clauses build *scopes*
//! (binding chains) so that lateral `UNNEST`, lambda parameters, and
//! correlated subqueries all resolve names the same way.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use nested_value::ops::{arith, compare, sql_eq, ArithOp};
use nested_value::{StructValue, Value};

use crate::ast::*;
use crate::dialect::Dialect;
use crate::error::SqlError;
use crate::functions;

/// A materialized relation: named columns and rows.
#[derive(Clone, Debug, PartialEq)]
pub struct Relation {
    /// Column names.
    pub cols: Vec<String>,
    /// Row values, one `Vec<Value>` per row, aligned with `cols`.
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    /// Rows as struct values (for binding as a FROM relation).
    pub fn to_structs(&self) -> Vec<Value> {
        // Field names are shared across rows: intern them once.
        let names: Vec<Arc<str>> = self.cols.iter().map(|c| Arc::from(c.as_str())).collect();
        self.rows
            .iter()
            .map(|r| {
                Value::Struct(Arc::new(StructValue::new(
                    names
                        .iter()
                        .zip(r.iter())
                        .map(|(c, v)| (c.clone(), v.clone()))
                        .collect(),
                )))
            })
            .collect()
    }
}

/// A compiled user-defined function.
#[derive(Clone, Debug)]
pub struct Udf {
    /// Parameter names.
    pub params: Vec<String>,
    /// Declared parameter types (for struct coercion).
    pub types: Vec<TypeName>,
    /// Body expression.
    pub body: Expr,
}

/// Execution context: tables/CTEs and UDFs.
pub struct ExecContext {
    /// Relations visible as FROM targets (base tables + materialized CTEs).
    pub relations: HashMap<String, Rc<Vec<Value>>>,
    /// UDFs by lowercase name.
    pub udfs: HashMap<String, Udf>,
    /// Active dialect (for alias-in-GROUP-BY behaviour).
    pub dialect: Dialect,
}

/// One name binding in a scope. The name is an `Rc<str>` so per-row scope
/// construction clones a pointer rather than reallocating the string.
#[derive(Clone, Debug)]
struct Binding {
    name: Rc<str>,
    value: Value,
    /// Struct fields addressable without qualification?
    open: bool,
}

/// Binding storage of a scope: owned for scopes that accumulate bindings
/// (root, lambda frames), borrowed for the per-row scopes the executor
/// builds in its hot loops — those wrap a `&[Binding]` that already lives
/// in the FROM product, and cloning it per row would dominate execution.
#[derive(Clone)]
enum Bindings<'a> {
    Owned(Vec<Binding>),
    Borrowed(&'a [Binding]),
}

impl Bindings<'_> {
    fn as_slice(&self) -> &[Binding] {
        match self {
            Bindings::Owned(v) => v,
            Bindings::Borrowed(s) => s,
        }
    }
}

/// A lexical scope: local bindings plus a parent chain (outer query scopes,
/// lambda frames).
#[derive(Clone)]
pub struct Scope<'a> {
    parent: Option<&'a Scope<'a>>,
    bindings: Bindings<'a>,
}

impl<'a> Scope<'a> {
    /// The empty root scope.
    pub fn root() -> Scope<'static> {
        Scope {
            parent: None,
            bindings: Bindings::Owned(Vec::new()),
        }
    }

    fn child(&'a self) -> Scope<'a> {
        Scope {
            parent: Some(self),
            bindings: Bindings::Owned(Vec::new()),
        }
    }

    fn bind(&mut self, name: &str, value: Value, open: bool) {
        let b = Binding {
            name: Rc::from(name),
            value,
            open,
        };
        match &mut self.bindings {
            Bindings::Owned(v) => v.push(b),
            Bindings::Borrowed(s) => {
                let mut v = s.to_vec();
                v.push(b);
                self.bindings = Bindings::Owned(v);
            }
        }
    }

    fn resolve(&self, parts: &[String]) -> Option<Value> {
        let bindings = self.bindings.as_slice();
        // Later bindings shadow earlier ones.
        for b in bindings.iter().rev() {
            if b.name.eq_ignore_ascii_case(&parts[0]) {
                return descend(&b.value, &parts[1..]);
            }
        }
        for b in bindings.iter().rev() {
            if b.open {
                if let Value::Struct(s) = &b.value {
                    if let Some(v) = struct_get_ci(s, &parts[0]) {
                        return descend(v, &parts[1..]);
                    }
                }
            }
        }
        self.parent.and_then(|p| p.resolve(parts))
    }
}

fn struct_get_ci<'v>(s: &'v StructValue, name: &str) -> Option<&'v Value> {
    s.iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v)
}

fn descend(v: &Value, rest: &[String]) -> Option<Value> {
    let mut cur = v;
    for part in rest {
        match cur {
            Value::Struct(s) => match struct_get_ci(s, part) {
                Some(next) => cur = next,
                None => return None,
            },
            _ => return None,
        }
    }
    Some(cur.clone())
}

/// Evaluates a query to a relation. `outer` is the enclosing row scope for
/// correlated subqueries (use [`Scope::root`] at top level).
pub fn eval_query(q: &Query, ctx: &ExecContext, outer: &Scope<'_>) -> Result<Relation, SqlError> {
    // Materialize CTEs in order; later CTEs and the body see earlier ones.
    if q.ctes.is_empty() {
        return eval_query_body(q, ctx, outer);
    }
    let mut scoped = ExecContext {
        relations: ctx.relations.clone(),
        udfs: ctx.udfs.clone(),
        dialect: ctx.dialect,
    };
    for (name, cte_q) in &q.ctes {
        let rel = eval_query(cte_q, &scoped, outer)?;
        scoped
            .relations
            .insert(name.to_ascii_lowercase(), Rc::new(rel.to_structs()));
    }
    eval_query_body(q, &scoped, outer)
}

fn eval_query_body(q: &Query, ctx: &ExecContext, outer: &Scope<'_>) -> Result<Relation, SqlError> {
    // ORDER BY keys are evaluated inside eval_select, where the FROM scope
    // is still visible (SQL permits sorting by non-projected columns).
    let mut rel = eval_select(&q.select, ctx, outer, &q.order_by)?;
    if let Some(n) = q.limit {
        rel.rows.truncate(n as usize);
    }
    Ok(rel)
}

fn sort_relation(
    rel: &mut Relation,
    order_by: &[OrderItem],
    ctx: &ExecContext,
    outer: &Scope<'_>,
) -> Result<(), SqlError> {
    // Evaluate keys once per row, then sort by them.
    let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(rel.rows.len());
    for row in rel.rows.drain(..) {
        let mut scope = outer.child();
        let s = StructValue::new(
            rel.cols
                .iter()
                .zip(row.iter())
                .map(|(c, v)| (Arc::from(c.as_str()), v.clone()))
                .collect(),
        );
        scope.bind("$row", Value::Struct(Arc::new(s)), true);
        let mut keys = Vec::with_capacity(order_by.len());
        for item in order_by {
            keys.push(eval_expr(&item.expr, ctx, &scope)?);
        }
        keyed.push((keys, row));
    }
    let mut err = None;
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, (a, b)) in ka.iter().zip(kb.iter()).enumerate() {
            match compare(a, b) {
                Ok(std::cmp::Ordering::Equal) => continue,
                Ok(ord) => {
                    return if order_by[i].desc { ord.reverse() } else { ord };
                }
                Err(e) => {
                    err = Some(e);
                    return std::cmp::Ordering::Equal;
                }
            }
        }
        std::cmp::Ordering::Equal
    });
    if let Some(e) = err {
        return Err(e.into());
    }
    rel.rows = keyed.into_iter().map(|(_, r)| r).collect();
    Ok(())
}

// ---------------------------------------------------------------- SELECT

fn eval_select(
    s: &Select,
    ctx: &ExecContext,
    outer: &Scope<'_>,
    order_by: &[OrderItem],
) -> Result<Relation, SqlError> {
    // 1. FROM → a list of scopes (ownership: each scope's bindings are
    // self-contained values, parented on `outer`).
    let mut scopes: Vec<Vec<Binding>> = vec![Vec::new()];
    for item in &s.from {
        scopes = join_from(scopes, item, ctx, outer)?;
    }

    // 2. WHERE.
    if let Some(pred) = &s.where_clause {
        let mut kept = Vec::with_capacity(scopes.len());
        for b in scopes {
            let scope = scope_of(outer, &b);
            if truthy(&eval_expr(pred, ctx, &scope)?) {
                kept.push(b);
            }
        }
        scopes = kept;
    }

    // 3. Aggregation?
    let has_aggs = s.items.iter().any(|it| match it {
        SelectItem::Expr { expr, .. } => contains_aggregate(expr),
        _ => false,
    }) || s.having.as_ref().is_some_and(contains_aggregate);

    let (mut rel, mut keys) = if !s.group_by.is_empty() || has_aggs {
        eval_aggregate(s, scopes, ctx, outer, order_by)?
    } else {
        let mut cols: Option<Vec<String>> = None;
        let mut names: Option<Vec<Arc<str>>> = None;
        let mut rows = Vec::with_capacity(scopes.len());
        let mut keys = Vec::new();
        for b in &scopes {
            let scope = scope_of(outer, b);
            let (c, r) = project(s, ctx, &scope, b, None, cols.is_none())?;
            if cols.is_none() {
                cols = Some(c);
            }
            if !order_by.is_empty() {
                let names =
                    names.get_or_insert_with(|| intern_names(cols.as_ref().expect("set above")));
                let mut aug = scope.child();
                aug.bind("$row", row_struct(names, &r), true);
                let mut k = Vec::with_capacity(order_by.len());
                for o in order_by {
                    k.push(eval_expr(&o.expr, ctx, &aug)?);
                }
                keys.push(k);
            }
            rows.push(r);
        }
        (
            Relation {
                cols: cols.unwrap_or_else(|| project_names(s)),
                rows,
            },
            keys,
        )
    };

    // 4. DISTINCT (keys kept in lockstep with surviving rows).
    if s.distinct {
        let mut seen = std::collections::HashSet::new();
        let mut kept_rows = Vec::new();
        let mut kept_keys = Vec::new();
        for (i, r) in rel.rows.drain(..).enumerate() {
            if seen.insert(row_key(&r)) {
                if !keys.is_empty() {
                    kept_keys.push(keys[i].clone());
                }
                kept_rows.push(r);
            }
        }
        rel.rows = kept_rows;
        keys = kept_keys;
    }

    // 5. ORDER BY.
    if !order_by.is_empty() {
        rel.rows = sort_rows_by_keys(rel.rows, keys, order_by)?;
    }
    Ok(rel)
}

/// Interns output-column names once so per-row structs share them.
fn intern_names(cols: &[String]) -> Vec<Arc<str>> {
    cols.iter().map(|c| Arc::from(c.as_str())).collect()
}

/// Builds an output-row struct for alias resolution in ORDER BY.
fn row_struct(cols: &[Arc<str>], row: &[Value]) -> Value {
    Value::Struct(Arc::new(StructValue::new(
        cols.iter().cloned().zip(row.iter().cloned()).collect(),
    )))
}

fn sort_rows_by_keys(
    rows: Vec<Vec<Value>>,
    keys: Vec<Vec<Value>>,
    order_by: &[OrderItem],
) -> Result<Vec<Vec<Value>>, SqlError> {
    debug_assert_eq!(rows.len(), keys.len());
    let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = keys.into_iter().zip(rows).collect();
    let mut err = None;
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, (a, b)) in ka.iter().zip(kb.iter()).enumerate() {
            match compare(a, b) {
                Ok(std::cmp::Ordering::Equal) => continue,
                Ok(ord) => {
                    return if order_by[i].desc { ord.reverse() } else { ord };
                }
                Err(e) => {
                    err = Some(e);
                    return std::cmp::Ordering::Equal;
                }
            }
        }
        std::cmp::Ordering::Equal
    });
    if let Some(e) = err {
        return Err(e.into());
    }
    Ok(keyed.into_iter().map(|(_, r)| r).collect())
}

fn scope_of<'a>(outer: &'a Scope<'a>, bindings: &'a [Binding]) -> Scope<'a> {
    Scope {
        parent: Some(outer),
        bindings: Bindings::Borrowed(bindings),
    }
}

fn join_from(
    scopes: Vec<Vec<Binding>>,
    item: &FromItem,
    ctx: &ExecContext,
    outer: &Scope<'_>,
) -> Result<Vec<Vec<Binding>>, SqlError> {
    match item {
        FromItem::Table { name, alias } => {
            let rel = ctx
                .relations
                .get(&name.to_ascii_lowercase())
                .ok_or_else(|| SqlError::Unresolved(format!("table {name}")))?
                .clone();
            let bind_name: Rc<str> = Rc::from(alias.as_deref().unwrap_or(name));
            let mut out = Vec::with_capacity(scopes.len() * rel.len());
            for b in &scopes {
                for row in rel.iter() {
                    let mut nb = b.clone();
                    nb.push(Binding {
                        name: bind_name.clone(),
                        value: row.clone(),
                        open: true,
                    });
                    out.push(nb);
                }
            }
            Ok(out)
        }
        FromItem::Subquery { query, alias } => {
            let rel = eval_query(query, ctx, outer)?;
            let rows = rel.to_structs();
            let bind_name: Rc<str> = Rc::from(alias.as_str());
            let mut out = Vec::with_capacity(scopes.len() * rows.len());
            for b in &scopes {
                for row in &rows {
                    let mut nb = b.clone();
                    nb.push(Binding {
                        name: bind_name.clone(),
                        value: row.clone(),
                        open: true,
                    });
                    out.push(nb);
                }
            }
            Ok(out)
        }
        FromItem::Unnest(u) => {
            let names = UnnestNames::of(u);
            let mut out = Vec::new();
            for b in scopes {
                let items = {
                    let scope = scope_of(outer, &b);
                    let arr = eval_expr(&u.expr, ctx, &scope)?;
                    match arr {
                        Value::Array(a) => a,
                        Value::Null => Arc::new(Vec::new()),
                        other => {
                            return Err(SqlError::Eval(format!(
                                "UNNEST expects an array, found {}",
                                other.type_name()
                            )))
                        }
                    }
                };
                for (i, element) in items.iter().enumerate() {
                    let mut nb = b.clone();
                    bind_unnest_element(u, &names, element, i, &mut nb)?;
                    out.push(nb);
                }
            }
            Ok(out)
        }
        FromItem::Join {
            left,
            right,
            kind,
            on,
        } => {
            let scopes = join_from(scopes, left, ctx, outer)?;
            let joined = join_from(scopes, right, ctx, outer)?;
            match kind {
                JoinKind::Cross => Ok(joined),
                JoinKind::Inner => {
                    let pred = on
                        .as_ref()
                        .ok_or_else(|| SqlError::Plan("INNER JOIN requires ON".into()))?;
                    let mut kept = Vec::new();
                    for b in joined {
                        let scope = scope_of(outer, &b);
                        if truthy(&eval_expr(pred, ctx, &scope)?) {
                            kept.push(b);
                        }
                    }
                    Ok(kept)
                }
            }
        }
    }
}

/// Binding names of an UNNEST clause, interned once per FROM evaluation so
/// the per-element loop clones pointers instead of strings.
struct UnnestNames {
    column_aliases: Vec<Rc<str>>,
    alias: Option<Rc<str>>,
    with_offset: Option<Rc<str>>,
}

impl UnnestNames {
    fn of(u: &Unnest) -> UnnestNames {
        UnnestNames {
            column_aliases: u
                .column_aliases
                .iter()
                .map(|a| Rc::from(a.as_str()))
                .collect(),
            alias: u.alias.as_deref().map(Rc::from),
            with_offset: u.with_offset.as_deref().map(Rc::from),
        }
    }
}

fn bind_unnest_element(
    u: &Unnest,
    names: &UnnestNames,
    element: &Value,
    index: usize,
    bindings: &mut Vec<Binding>,
) -> Result<(), SqlError> {
    if !u.column_aliases.is_empty() {
        // Presto column list: explode struct fields positionally; the last
        // alias names the ordinality column if requested.
        let n_data = if u.with_ordinality {
            u.column_aliases
                .len()
                .checked_sub(1)
                .ok_or_else(|| SqlError::Plan("ordinality needs a column alias".into()))?
        } else {
            u.column_aliases.len()
        };
        match element {
            Value::Struct(s) => {
                if s.len() != n_data {
                    return Err(SqlError::Plan(format!(
                        "UNNEST column list has {} names but struct has {} fields",
                        n_data,
                        s.len()
                    )));
                }
                for (i, alias) in names.column_aliases.iter().take(n_data).enumerate() {
                    bindings.push(Binding {
                        name: alias.clone(),
                        value: s.get_index(i).expect("checked").clone(),
                        open: false,
                    });
                }
            }
            scalar => {
                if n_data != 1 {
                    return Err(SqlError::Plan(
                        "UNNEST of scalars takes exactly one column alias".into(),
                    ));
                }
                bindings.push(Binding {
                    name: names.column_aliases[0].clone(),
                    value: scalar.clone(),
                    open: false,
                });
            }
        }
        if u.with_ordinality {
            bindings.push(Binding {
                name: names.column_aliases[n_data].clone(),
                value: Value::Int(index as i64 + 1),
                open: false,
            });
        }
    } else if let Some(alias) = &names.alias {
        if u.with_ordinality {
            return Err(SqlError::Plan(
                "WITH ORDINALITY requires a column alias list".into(),
            ));
        }
        bindings.push(Binding {
            name: alias.clone(),
            value: element.clone(),
            open: false,
        });
    } else {
        return Err(SqlError::Plan("UNNEST requires an alias".into()));
    }
    if let Some(off) = &names.with_offset {
        bindings.push(Binding {
            name: off.clone(),
            value: Value::Int(index as i64),
            open: false,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------- projection

fn project_names(s: &Select) -> Vec<String> {
    let mut names = Vec::new();
    for (i, item) in s.items.iter().enumerate() {
        match item {
            SelectItem::Expr { expr, alias } => names.push(
                alias
                    .clone()
                    .or_else(|| implied_col_name(expr))
                    .unwrap_or_else(|| format!("_col{i}")),
            ),
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {}
        }
    }
    names
}

fn implied_col_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Name(parts) => parts.last().cloned(),
        Expr::Field(_, f) => Some(f.clone()),
        _ => None,
    }
}

/// Projects one scope into an output row. `agg` carries the group rows when
/// aggregating. Column names are identical for every row, so only the first
/// call per SELECT asks for them (`need_cols`); the per-row calls skip the
/// name building entirely.
fn project(
    s: &Select,
    ctx: &ExecContext,
    scope: &Scope<'_>,
    local_bindings: &[Binding],
    agg: Option<&AggGroup<'_>>,
    need_cols: bool,
) -> Result<(Vec<String>, Vec<Value>), SqlError> {
    let mut cols = Vec::new();
    let mut row = Vec::new();
    for (i, item) in s.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for b in local_bindings {
                    expand_binding(b, &mut cols, &mut row, need_cols);
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let b = local_bindings
                    .iter()
                    .rev()
                    .find(|b| b.name.eq_ignore_ascii_case(q))
                    .ok_or_else(|| SqlError::Unresolved(format!("relation {q}")))?;
                expand_binding(b, &mut cols, &mut row, need_cols);
            }
            SelectItem::Expr { expr, alias } => {
                let v = match agg {
                    Some(group) => eval_agg_expr(expr, ctx, group)?,
                    None => eval_expr(expr, ctx, scope)?,
                };
                if need_cols {
                    cols.push(
                        alias
                            .clone()
                            .or_else(|| implied_col_name(expr))
                            .unwrap_or_else(|| format!("_col{i}")),
                    );
                }
                row.push(v);
            }
        }
    }
    Ok((cols, row))
}

fn expand_binding(b: &Binding, cols: &mut Vec<String>, row: &mut Vec<Value>, need_cols: bool) {
    match &b.value {
        Value::Struct(s) if b.open => {
            for (n, v) in s.iter() {
                if need_cols {
                    cols.push(n.to_string());
                }
                row.push(v.clone());
            }
        }
        other => {
            if need_cols {
                cols.push(b.name.to_string());
            }
            row.push(other.clone());
        }
    }
}

// ---------------------------------------------------------------- grouping

struct AggGroup<'a> {
    /// Scopes (rows) belonging to this group.
    scopes: Vec<Scope<'a>>,
    /// Representative scope for non-aggregate expressions.
    first: &'a Scope<'a>,
}

fn eval_aggregate(
    s: &Select,
    scopes: Vec<Vec<Binding>>,
    ctx: &ExecContext,
    outer: &Scope<'_>,
    order_by: &[OrderItem],
) -> Result<(Relation, Vec<Vec<Value>>), SqlError> {
    // Resolve alias references in GROUP BY (BigQuery extension R2.4).
    let aliases: HashMap<String, &Expr> = s
        .items
        .iter()
        .filter_map(|it| match it {
            SelectItem::Expr {
                expr,
                alias: Some(a),
            } => Some((a.to_ascii_lowercase(), expr)),
            _ => None,
        })
        .collect();
    let group_exprs: Vec<&Expr> = s
        .group_by
        .iter()
        .map(|e| match e {
            Expr::Name(parts)
                if parts.len() == 1
                    && ctx.dialect.group_by_alias
                    && aliases.contains_key(&parts[0].to_ascii_lowercase()) =>
            {
                *aliases
                    .get(&parts[0].to_ascii_lowercase())
                    .expect("checked")
            }
            other => other,
        })
        .collect();

    // Group scopes by key.
    let mut groups: Vec<(Vec<Value>, Vec<Vec<Binding>>)> = Vec::new();
    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    for b in scopes {
        let scope = scope_of(outer, &b);
        let mut key = Vec::with_capacity(group_exprs.len());
        for ge in &group_exprs {
            key.push(eval_expr(ge, ctx, &scope)?);
        }
        let kb = values_key(&key);
        let slot = *index.entry(kb).or_insert_with(|| {
            groups.push((key, Vec::new()));
            groups.len() - 1
        });
        groups[slot].1.push(b);
    }
    // Aggregates with no GROUP BY over empty input produce one empty group.
    if groups.is_empty() && s.group_by.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let mut cols: Option<Vec<String>> = None;
    let mut names: Option<Vec<Arc<str>>> = None;
    let mut rows = Vec::with_capacity(groups.len());
    let mut keys = Vec::new();
    for (_, members) in &groups {
        let member_scopes: Vec<Scope<'_>> = members.iter().map(|b| scope_of(outer, b)).collect();
        let empty = outer.child();
        let first: &Scope<'_> = member_scopes.first().unwrap_or(&empty);
        let group = AggGroup {
            scopes: member_scopes.clone(),
            first,
        };
        if let Some(having) = &s.having {
            if !truthy(&eval_agg_expr(having, ctx, &group)?) {
                continue;
            }
        }
        let local = members.first().map(|b| b.as_slice()).unwrap_or(&[]);
        let (c, r) = project(s, ctx, first, local, Some(&group), cols.is_none())?;
        if cols.is_none() {
            cols = Some(c);
        }
        if !order_by.is_empty() {
            // Sort keys may reference output aliases or group aggregates.
            let names =
                names.get_or_insert_with(|| intern_names(cols.as_ref().expect("set above")));
            let mut aug = first.child();
            aug.bind("$row", row_struct(names, &r), true);
            let aug_group = AggGroup {
                scopes: member_scopes.clone(),
                first: &aug,
            };
            let mut k = Vec::with_capacity(order_by.len());
            for o in order_by {
                k.push(eval_agg_expr(&o.expr, ctx, &aug_group)?);
            }
            keys.push(k);
        }
        rows.push(r);
    }
    Ok((
        Relation {
            cols: cols.unwrap_or_else(|| project_names(s)),
            rows,
        },
        keys,
    ))
}

/// Evaluates an expression in aggregate context: aggregate calls compute
/// over the group; everything else evaluates against the group's first row.
fn eval_agg_expr(e: &Expr, ctx: &ExecContext, group: &AggGroup<'_>) -> Result<Value, SqlError> {
    match e {
        Expr::CountStar => Ok(Value::Int(group.scopes.len() as i64)),
        Expr::Call {
            name,
            args,
            distinct,
            order_by,
            limit,
        } if is_aggregate_name(name) => {
            eval_aggregate_call(name, args, *distinct, order_by, *limit, ctx, group)
        }
        Expr::Binary(a, op, b) => {
            let va = eval_agg_expr(a, ctx, group)?;
            let vb_lazy = || eval_agg_expr(b, ctx, group);
            eval_binary(*op, va, vb_lazy)
        }
        Expr::Unary(op, a) => {
            let v = eval_agg_expr(a, ctx, group)?;
            match op {
                UnaryOp::Neg => Ok(nested_value::ops::neg(&v)?),
                UnaryOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(SqlError::Eval(format!(
                        "NOT expects boolean, found {}",
                        other.type_name()
                    ))),
                },
            }
        }
        Expr::Cast(inner, t) => {
            let v = eval_agg_expr(inner, ctx, group)?;
            cast_value(&v, t)
        }
        Expr::Case { whens, else_ } => {
            for (c, r) in whens {
                if truthy(&eval_agg_expr(c, ctx, group)?) {
                    return eval_agg_expr(r, ctx, group);
                }
            }
            match else_ {
                Some(r) => eval_agg_expr(r, ctx, group),
                None => Ok(Value::Null),
            }
        }
        Expr::Call { name, args, .. } => {
            // Scalar function over aggregate results.
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_agg_expr(a, ctx, group)?);
            }
            if let Some(r) = functions::eval_builtin(name, &vals) {
                return r;
            }
            call_udf(name, &vals, ctx, group.first)
        }
        // Pure (non-aggregate) expression: evaluate on the first row.
        other => eval_expr(other, ctx, group.first),
    }
}

fn is_aggregate_name(name: &str) -> bool {
    functions::with_lower(name, |lower| {
        matches!(
            lower,
            "count"
                | "sum"
                | "avg"
                | "min"
                | "max"
                | "min_by"
                | "max_by"
                | "array_agg"
                | "any_value"
        )
    })
}

pub(crate) fn contains_aggregate(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |n| match n {
        Expr::CountStar => found = true,
        Expr::Call { name, .. } if is_aggregate_name(name) => found = true,
        _ => {}
    });
    found
}

fn eval_aggregate_call(
    name: &str,
    args: &[Expr],
    distinct: bool,
    order_by: &[OrderItem],
    limit: Option<u64>,
    ctx: &ExecContext,
    group: &AggGroup<'_>,
) -> Result<Value, SqlError> {
    let lower = name.to_ascii_lowercase();
    let eval_per_row = |expr: &Expr| -> Result<Vec<Value>, SqlError> {
        group
            .scopes
            .iter()
            .map(|sc| eval_expr(expr, ctx, sc))
            .collect()
    };
    match lower.as_str() {
        "count" => {
            let vals = eval_per_row(&args[0])?;
            let mut non_null: Vec<&Value> = vals.iter().filter(|v| !v.is_null()).collect();
            if distinct {
                let mut seen = std::collections::HashSet::new();
                non_null.retain(|v| seen.insert(value_key(v)));
            }
            Ok(Value::Int(non_null.len() as i64))
        }
        "sum" | "avg" => {
            let vals = eval_per_row(&args[0])?;
            let nums: Vec<f64> = vals
                .iter()
                .filter(|v| !v.is_null())
                .map(|v| v.as_f64())
                .collect::<Result<_, _>>()?;
            if nums.is_empty() {
                return Ok(Value::Null);
            }
            let total: f64 = nums.iter().sum();
            if lower == "avg" {
                Ok(Value::Float(total / nums.len() as f64))
            } else if vals
                .iter()
                .all(|v| matches!(v, Value::Int(_) | Value::Null))
            {
                Ok(Value::Int(total as i64))
            } else {
                Ok(Value::Float(total))
            }
        }
        "min" | "max" => {
            let vals = eval_per_row(&args[0])?;
            let mut best: Option<Value> = None;
            for v in vals.into_iter().filter(|v| !v.is_null()) {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = compare(&v, &b)?;
                        let take = if lower == "max" {
                            ord == std::cmp::Ordering::Greater
                        } else {
                            ord == std::cmp::Ordering::Less
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        "min_by" | "max_by" => {
            if args.len() != 2 {
                return Err(SqlError::Eval(format!("{lower} expects 2 arguments")));
            }
            let vals = eval_per_row(&args[0])?;
            let keys = eval_per_row(&args[1])?;
            let mut best: Option<(Value, Value)> = None;
            for (v, k) in vals.into_iter().zip(keys) {
                if k.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => (v, k),
                    Some((bv, bk)) => {
                        let ord = compare(&k, &bk)?;
                        let take = if lower == "max_by" {
                            ord == std::cmp::Ordering::Greater
                        } else {
                            ord == std::cmp::Ordering::Less
                        };
                        if take {
                            (v, k)
                        } else {
                            (bv, bk)
                        }
                    }
                });
            }
            Ok(best.map(|(v, _)| v).unwrap_or(Value::Null))
        }
        "array_agg" => {
            let mut pairs: Vec<(Vec<Value>, Value)> = Vec::new();
            for sc in &group.scopes {
                let v = eval_expr(&args[0], ctx, sc)?;
                let mut keys = Vec::with_capacity(order_by.len());
                for o in order_by {
                    keys.push(eval_expr(&o.expr, ctx, sc)?);
                }
                pairs.push((keys, v));
            }
            if !order_by.is_empty() {
                let mut err = None;
                pairs.sort_by(|(ka, _), (kb, _)| {
                    for (i, (a, b)) in ka.iter().zip(kb.iter()).enumerate() {
                        match compare(a, b) {
                            Ok(std::cmp::Ordering::Equal) => continue,
                            Ok(ord) => return if order_by[i].desc { ord.reverse() } else { ord },
                            Err(e) => {
                                err = Some(e);
                                return std::cmp::Ordering::Equal;
                            }
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                if let Some(e) = err {
                    return Err(e.into());
                }
            }
            let mut items: Vec<Value> = pairs.into_iter().map(|(_, v)| v).collect();
            if distinct {
                let mut seen = std::collections::HashSet::new();
                items.retain(|v| seen.insert(value_key(v)));
            }
            if let Some(n) = limit {
                items.truncate(n as usize);
            }
            Ok(Value::array(items))
        }
        "any_value" => {
            let vals = eval_per_row(&args[0])?;
            Ok(vals
                .into_iter()
                .find(|v| !v.is_null())
                .unwrap_or(Value::Null))
        }
        other => Err(SqlError::Eval(format!("unknown aggregate {other}"))),
    }
}

// ---------------------------------------------------------------- expressions

/// True when the value counts as a satisfied predicate.
pub fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

fn eval_binary(
    op: BinaryOp,
    a: Value,
    b: impl FnOnce() -> Result<Value, SqlError>,
) -> Result<Value, SqlError> {
    use BinaryOp::*;
    match op {
        And => match a {
            Value::Bool(false) => Ok(Value::Bool(false)),
            Value::Bool(true) => b(),
            Value::Null => {
                // NULL AND false = false, else NULL.
                match b()? {
                    Value::Bool(false) => Ok(Value::Bool(false)),
                    _ => Ok(Value::Null),
                }
            }
            other => Err(SqlError::Eval(format!(
                "AND expects booleans, found {}",
                other.type_name()
            ))),
        },
        Or => match a {
            Value::Bool(true) => Ok(Value::Bool(true)),
            Value::Bool(false) => b(),
            Value::Null => match b()? {
                Value::Bool(true) => Ok(Value::Bool(true)),
                _ => Ok(Value::Null),
            },
            other => Err(SqlError::Eval(format!(
                "OR expects booleans, found {}",
                other.type_name()
            ))),
        },
        Add => Ok(arith(ArithOp::Add, &a, &b()?)?),
        Sub => Ok(arith(ArithOp::Sub, &a, &b()?)?),
        Mul => Ok(arith(ArithOp::Mul, &a, &b()?)?),
        Div => {
            let b = b()?;
            // SQL float division when either side is float; integer division
            // for int/int (Presto semantics; BigQuery's queries in this repo
            // always cast).
            Ok(arith(ArithOp::Div, &a, &b)?)
        }
        Mod => Ok(arith(ArithOp::Mod, &a, &b()?)?),
        Eq | Neq | Lt | Lte | Gt | Gte => {
            let b = b()?;
            if a.is_null() || b.is_null() {
                return Ok(Value::Null);
            }
            let ord = compare(&a, &b)?;
            let result = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                Neq => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                Lte => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Gte => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(result))
        }
        Concat => {
            let b = b()?;
            match (&a, &b) {
                (Value::Str(x), Value::Str(y)) => Ok(Value::str(format!("{x}{y}"))),
                (Value::Array(x), Value::Array(y)) => {
                    let mut out = x.as_ref().clone();
                    out.extend(y.iter().cloned());
                    Ok(Value::array(out))
                }
                _ => Err(SqlError::Eval(format!(
                    "|| expects strings or arrays, found {} and {}",
                    a.type_name(),
                    b.type_name()
                ))),
            }
        }
    }
}

/// Evaluates a scalar expression in a scope.
pub fn eval_expr(e: &Expr, ctx: &ExecContext, scope: &Scope<'_>) -> Result<Value, SqlError> {
    match e {
        Expr::Null => Ok(Value::Null),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Int(i) => Ok(Value::Int(*i)),
        Expr::Float(f) => Ok(Value::Float(*f)),
        Expr::Str(s) => Ok(Value::str(s.as_str())),
        Expr::Name(parts) => scope
            .resolve(parts)
            .ok_or_else(|| SqlError::Unresolved(parts.join("."))),
        Expr::Field(base, f) => {
            let v = eval_expr(base, ctx, scope)?;
            match &v {
                Value::Struct(s) => struct_get_ci(s, f)
                    .cloned()
                    .ok_or_else(|| SqlError::Eval(format!("no field {f}"))),
                Value::Null => Ok(Value::Null),
                other => Err(SqlError::Eval(format!(
                    "field access on {}",
                    other.type_name()
                ))),
            }
        }
        Expr::Index(base, idx) => {
            let v = eval_expr(base, ctx, scope)?;
            let i = eval_expr(idx, ctx, scope)?.as_i64()?;
            match &v {
                // Presto: arrays are 1-based.
                Value::Array(a) => a
                    .get((i - 1).max(0) as usize)
                    .cloned()
                    .ok_or(nested_value::ValueError::IndexOutOfBounds {
                        index: i,
                        len: a.len(),
                    })
                    .map_err(Into::into),
                // Positional access into anonymous rows.
                Value::Struct(s) => s
                    .get_index((i - 1).max(0) as usize)
                    .cloned()
                    .ok_or_else(|| SqlError::Eval(format!("row index {i} out of range"))),
                Value::Null => Ok(Value::Null),
                other => Err(SqlError::Eval(format!(
                    "indexing into {}",
                    other.type_name()
                ))),
            }
        }
        Expr::OffsetIndex(base, idx) => {
            let v = eval_expr(base, ctx, scope)?;
            let i = eval_expr(idx, ctx, scope)?.as_i64()?;
            match &v {
                Value::Array(a) => a
                    .get(i.max(0) as usize)
                    .cloned()
                    .ok_or(nested_value::ValueError::IndexOutOfBounds {
                        index: i,
                        len: a.len(),
                    })
                    .map_err(Into::into),
                Value::Null => Ok(Value::Null),
                other => Err(SqlError::Eval(format!(
                    "OFFSET indexing into {}",
                    other.type_name()
                ))),
            }
        }
        Expr::Unary(op, inner) => {
            let v = eval_expr(inner, ctx, scope)?;
            match op {
                UnaryOp::Neg => Ok(nested_value::ops::neg(&v)?),
                UnaryOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(SqlError::Eval(format!(
                        "NOT expects boolean, found {}",
                        other.type_name()
                    ))),
                },
            }
        }
        Expr::Binary(a, op, b) => {
            let va = eval_expr(a, ctx, scope)?;
            eval_binary(*op, va, || eval_expr(b, ctx, scope))
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = eval_expr(expr, ctx, scope)?;
            let lo = eval_expr(lo, ctx, scope)?;
            let hi = eval_expr(hi, ctx, scope)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Null);
            }
            let within = compare(&v, &lo)? != std::cmp::Ordering::Less
                && compare(&v, &hi)? != std::cmp::Ordering::Greater;
            Ok(Value::Bool(within != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(expr, ctx, scope)?;
            let mut saw_null = false;
            for item in list {
                let w = eval_expr(item, ctx, scope)?;
                match sql_eq(&v, &w)? {
                    Some(true) => return Ok(Value::Bool(!negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::IsNull(inner, negated) => {
            let v = eval_expr(inner, ctx, scope)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Case { whens, else_ } => {
            for (c, r) in whens {
                if truthy(&eval_expr(c, ctx, scope)?) {
                    return eval_expr(r, ctx, scope);
                }
            }
            match else_ {
                Some(r) => eval_expr(r, ctx, scope),
                None => Ok(Value::Null),
            }
        }
        Expr::Cast(inner, t) => {
            let v = eval_expr(inner, ctx, scope)?;
            cast_value(&v, t)
        }
        Expr::CountStar => Err(SqlError::Plan("COUNT(*) outside aggregation".into())),
        Expr::Lambda(..) => Err(SqlError::Plan(
            "lambda outside an array-function argument".into(),
        )),
        Expr::RowCtor(items) => {
            let mut fields = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                fields.push((
                    Arc::from(format!("${}", i + 1).as_str()),
                    eval_expr(item, ctx, scope)?,
                ));
            }
            Ok(Value::Struct(Arc::new(StructValue::new(fields))))
        }
        Expr::StructCtor { fields, declared } => {
            let mut out = Vec::with_capacity(fields.len());
            for (i, (name, fe)) in fields.iter().enumerate() {
                let v = eval_expr(fe, ctx, scope)?;
                let (fname, fv) = match declared {
                    Some(decls) => {
                        let (dname, dtype) = &decls[i];
                        (dname.clone(), cast_value(&v, dtype)?)
                    }
                    None => (name.clone().unwrap_or_else(|| format!("${}", i + 1)), v),
                };
                out.push((Arc::from(fname.as_str()), fv));
            }
            Ok(Value::Struct(Arc::new(StructValue::new(out))))
        }
        Expr::ArrayCtor(items) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(eval_expr(item, ctx, scope)?);
            }
            Ok(Value::array(out))
        }
        Expr::Subquery(q) => {
            let rel = eval_query(q, ctx, scope)?;
            match rel.rows.len() {
                0 => Ok(Value::Null),
                1 => row_scalar(&rel, 0),
                n => Err(SqlError::Eval(format!("scalar subquery returned {n} rows"))),
            }
        }
        Expr::Exists(q) => {
            let rel = eval_query(q, ctx, scope)?;
            Ok(Value::Bool(!rel.rows.is_empty()))
        }
        Expr::ArraySubquery(q) => {
            let rel = eval_query(q, ctx, scope)?;
            let mut out = Vec::with_capacity(rel.rows.len());
            for i in 0..rel.rows.len() {
                out.push(row_scalar(&rel, i)?);
            }
            Ok(Value::array(out))
        }
        Expr::Call { name, args, .. } => eval_call(name, args, ctx, scope),
    }
}

fn row_scalar(rel: &Relation, row: usize) -> Result<Value, SqlError> {
    if rel.cols.len() == 1 {
        Ok(rel.rows[row][0].clone())
    } else {
        Ok(Value::Struct(Arc::new(StructValue::new(
            rel.cols
                .iter()
                .zip(rel.rows[row].iter())
                .map(|(c, v)| (Arc::from(c.as_str()), v.clone()))
                .collect(),
        ))))
    }
}

fn eval_call(
    name: &str,
    args: &[Expr],
    ctx: &ExecContext,
    scope: &Scope<'_>,
) -> Result<Value, SqlError> {
    functions::with_lower(name, |lower| eval_call_lower(name, lower, args, ctx, scope))
}

fn eval_call_lower(
    name: &str,
    lower: &str,
    args: &[Expr],
    ctx: &ExecContext,
    scope: &Scope<'_>,
) -> Result<Value, SqlError> {
    // Lambda-taking array functions.
    match lower {
        "filter" | "transform" | "any_match" | "none_match" | "all_match" => {
            if args.len() != 2 {
                return Err(SqlError::Eval(format!("{lower} expects (array, lambda)")));
            }
            let arr = eval_expr(&args[0], ctx, scope)?;
            let items: Vec<Value> = match arr {
                Value::Array(a) => a.as_ref().clone(),
                Value::Null => return Ok(Value::Null),
                other => {
                    return Err(SqlError::Eval(format!(
                        "{lower} expects an array, found {}",
                        other.type_name()
                    )))
                }
            };
            let (params, body) = expect_lambda(&args[1], 1)?;
            let mut out = Vec::new();
            for item in &items {
                let mut inner = scope.child();
                inner.bind(&params[0], item.clone(), false);
                let r = eval_expr(body, ctx, &inner)?;
                match lower {
                    "filter" => {
                        if truthy(&r) {
                            out.push(item.clone());
                        }
                    }
                    "transform" => out.push(r),
                    "any_match" => {
                        if truthy(&r) {
                            return Ok(Value::Bool(true));
                        }
                    }
                    "none_match" => {
                        if truthy(&r) {
                            return Ok(Value::Bool(false));
                        }
                    }
                    "all_match" => {
                        if !truthy(&r) {
                            return Ok(Value::Bool(false));
                        }
                    }
                    _ => unreachable!(),
                }
            }
            match lower {
                "filter" | "transform" => Ok(Value::array(out)),
                "any_match" => Ok(Value::Bool(false)),
                "none_match" | "all_match" => Ok(Value::Bool(true)),
                _ => unreachable!(),
            }
        }
        "reduce" => {
            if args.len() != 4 {
                return Err(SqlError::Eval(
                    "reduce expects (array, init, (s, x) -> …, s -> …)".into(),
                ));
            }
            let arr = eval_expr(&args[0], ctx, scope)?;
            let items: Vec<Value> = match arr {
                Value::Array(a) => a.as_ref().clone(),
                Value::Null => return Ok(Value::Null),
                other => {
                    return Err(SqlError::Eval(format!(
                        "reduce expects an array, found {}",
                        other.type_name()
                    )))
                }
            };
            let mut state = eval_expr(&args[1], ctx, scope)?;
            let (params, body) = expect_lambda(&args[2], 2)?;
            for item in &items {
                let mut inner = scope.child();
                inner.bind(&params[0], state.clone(), false);
                inner.bind(&params[1], item.clone(), false);
                state = eval_expr(body, ctx, &inner)?;
            }
            let (oparams, obody) = expect_lambda(&args[3], 1)?;
            let mut inner = scope.child();
            inner.bind(&oparams[0], state, false);
            eval_expr(obody, ctx, &inner)
        }
        _ => {
            // Pure builtins, then UDFs.
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(a, ctx, scope)?);
            }
            if let Some(r) = functions::eval_builtin(name, &vals) {
                return r;
            }
            call_udf(name, &vals, ctx, scope)
        }
    }
}

fn call_udf(
    name: &str,
    vals: &[Value],
    ctx: &ExecContext,
    scope: &Scope<'_>,
) -> Result<Value, SqlError> {
    let udf = functions::with_lower(name, |lower| ctx.udfs.get(lower))
        .ok_or_else(|| SqlError::Unresolved(format!("function {name}")))?;
    if vals.len() != udf.params.len() {
        return Err(SqlError::Eval(format!(
            "{name} expects {} arguments, got {}",
            udf.params.len(),
            vals.len()
        )));
    }
    // Fresh scope: UDF bodies see only their parameters (no caller columns).
    let root = Scope::root();
    let mut inner = root.child();
    for ((p, t), v) in udf.params.iter().zip(&udf.types).zip(vals) {
        let coerced = cast_value(v, t)?;
        inner.bind(p, coerced, false);
    }
    let _ = scope; // parameters fully determine the body's environment
    eval_expr(&udf.body, ctx, &inner)
}

fn expect_lambda(e: &Expr, arity: usize) -> Result<(&[String], &Expr), SqlError> {
    match e {
        Expr::Lambda(params, body) if params.len() == arity => Ok((params, body)),
        Expr::Lambda(params, _) => Err(SqlError::Eval(format!(
            "lambda expects {arity} parameter(s), found {}",
            params.len()
        ))),
        _ => Err(SqlError::Eval("expected a lambda argument".into())),
    }
}

/// Casts/coerces a value to a type name. Struct casts rename positionally
/// (the Presto `CAST(ROW(…) AS ROW(…))` idiom and UDF struct parameters).
pub fn cast_value(v: &Value, t: &TypeName) -> Result<Value, SqlError> {
    match t {
        TypeName::Any => Ok(v.clone()),
        TypeName::Int => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(*i)),
            Value::Float(f) => Ok(Value::Int(*f as i64)),
            Value::Bool(b) => Ok(Value::Int(*b as i64)),
            Value::Str(s) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| SqlError::Eval(format!("cannot cast '{s}' to BIGINT"))),
            other => Err(SqlError::Eval(format!(
                "cannot cast {} to BIGINT",
                other.type_name()
            ))),
        },
        TypeName::Float => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Float(*i as f64)),
            Value::Float(f) => Ok(Value::Float(*f)),
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| SqlError::Eval(format!("cannot cast '{s}' to DOUBLE"))),
            other => Err(SqlError::Eval(format!(
                "cannot cast {} to DOUBLE",
                other.type_name()
            ))),
        },
        TypeName::Bool => match v {
            Value::Null => Ok(Value::Null),
            Value::Bool(b) => Ok(Value::Bool(*b)),
            other => Err(SqlError::Eval(format!(
                "cannot cast {} to BOOLEAN",
                other.type_name()
            ))),
        },
        TypeName::Str => match v {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => Ok(Value::Str(s.clone())),
            other => Ok(Value::str(other.to_string())),
        },
        TypeName::Row(decls) => match v {
            Value::Null => Ok(Value::Null),
            Value::Struct(s) => {
                if s.len() != decls.len() {
                    return Err(SqlError::Eval(format!(
                        "cannot cast a {}-field struct to a {}-field ROW",
                        s.len(),
                        decls.len()
                    )));
                }
                let mut out = Vec::with_capacity(decls.len());
                for (i, (name, ft)) in decls.iter().enumerate() {
                    let fv = s.get_index(i).expect("checked");
                    out.push((Arc::from(name.as_str()), cast_value(fv, ft)?));
                }
                Ok(Value::Struct(Arc::new(StructValue::new(out))))
            }
            other => Err(SqlError::Eval(format!(
                "cannot cast {} to ROW",
                other.type_name()
            ))),
        },
        TypeName::Array(inner) => match v {
            Value::Null => Ok(Value::Null),
            Value::Array(a) => {
                let mut out = Vec::with_capacity(a.len());
                for item in a.iter() {
                    out.push(cast_value(item, inner)?);
                }
                Ok(Value::array(out))
            }
            other => Err(SqlError::Eval(format!(
                "cannot cast {} to ARRAY",
                other.type_name()
            ))),
        },
    }
}

// ---------------------------------------------------------------- hashing

/// Canonical byte key for grouping/distinct on a row.
pub fn row_key(row: &[Value]) -> Vec<u8> {
    let mut out = Vec::new();
    for v in row {
        write_key(v, &mut out);
    }
    out
}

fn values_key(vals: &[Value]) -> Vec<u8> {
    row_key(vals)
}

fn value_key(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    write_key(v, &mut out);
    out
}

fn write_key(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            // Integers and integral floats compare equal in SQL grouping,
            // so both are keyed through the float encoding when lossless.
            let f = *i as f64;
            if f as i64 == *i {
                out.push(3);
                out.extend(f.to_bits().to_le_bytes());
            } else {
                out.push(2);
                out.extend(i.to_le_bytes());
            }
        }
        Value::Float(f) => {
            out.push(3);
            let canonical = if *f == 0.0 { 0.0 } else { *f };
            out.extend(canonical.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            out.extend((s.len() as u32).to_le_bytes());
            out.extend(s.as_bytes());
        }
        Value::Array(a) => {
            out.push(5);
            out.extend((a.len() as u32).to_le_bytes());
            for item in a.iter() {
                write_key(item, out);
            }
        }
        Value::Struct(s) => {
            out.push(6);
            out.extend((s.len() as u32).to_le_bytes());
            for (_, item) in s.iter() {
                write_key(item, out);
            }
        }
    }
}

/// Public wrapper around relation sorting (used by the engine to re-sort
/// merged parallel results).
pub fn sort_relation_pub(
    rel: &mut Relation,
    order_by: &[OrderItem],
    ctx: &ExecContext,
    outer: &Scope<'_>,
) -> Result<(), SqlError> {
    sort_relation(rel, order_by, ctx, outer)
}
