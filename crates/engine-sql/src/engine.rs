//! The public engine API: register tables, execute scripts, collect stats.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use nested_value::Value;
use nf2_columnar::{
    ChunkCache, ExecStats, FaultInjector, Projection, RowGroup, ScalarPredicate, ScanCache,
    ScanFaults, ScanStats, Table,
};
use parking_lot::Mutex;

use crate::ast::Script;
use crate::dialect::Dialect;
use crate::error::SqlError;
use crate::exec::{self, ExecContext, Relation, Scope, Udf};
use crate::parser;
use crate::plan::{self, ColMerge};

/// Execution options.
#[derive(Clone, Copy, Debug)]
pub struct SqlOptions {
    /// Worker threads for segment-parallel execution (0 ⇒ all cores).
    pub n_threads: usize,
    /// Allow running decomposable aggregations per row group in parallel
    /// (Presto's split model). Requires joins/grouping inside the query to
    /// be partition-local — true for HEP queries, where every join and
    /// per-event `GROUP BY` stays within one event and events never span
    /// row groups. Disable for arbitrary SQL.
    pub partition_parallel: bool,
    /// Skip row groups whose zone maps ([`nf2_columnar::stats`]) cannot
    /// satisfy top-level WHERE conjuncts on scalar columns. Sound —
    /// extraction in [`crate::plan::filterable_predicates`] is
    /// conservative, and the skipped bytes are billed as
    /// `ScanStats::bytes_pruned`.
    pub zone_map_pruning: bool,
    /// Evaluate top-level WHERE conjuncts on non-repeated numeric columns
    /// vectorized over the decoded chunk buffers and materialize only the
    /// surviving rows (late materialization; see [`nf2_columnar::select`]).
    /// Purely an execution-speed knob: scan/pricing accounting is defined
    /// by the projected columns, not by surviving rows, and results are
    /// identical because the WHERE clause still runs on the survivors.
    pub vectorized_filter: bool,
    /// Compiled execution: scripts recognized by [`crate::compile`] run
    /// as fused batch kernels over the shared physical IR instead of the
    /// row-at-a-time relational interpreter. Recognition is exact
    /// (canonical-template AST equality), so disabling this only costs
    /// speed; results are bit-identical either way.
    pub compile: bool,
    /// Morsel-driven intra-query parallelism for compiled execution:
    /// `> 1` runs compiled plans through `exec_par` with this many
    /// workers (row groups are the morsels). `0` or `1` keeps the serial
    /// compiled executor. Output is byte-identical at any value — the
    /// exchange merges partial aggregates in group order — and scan
    /// accounting is unaffected (it is a serial pre-pass either way).
    /// Ignored when `compile` is off or the script does not lower.
    pub parallel_workers: usize,
    /// Morsel-level fault recovery for compiled execution (default off):
    /// each morsel runs under `catch_unwind`, transient scan faults are
    /// retried in place, panicking morsels are quarantined and
    /// re-executed, dead workers' deques are reassigned and the pool
    /// degrades down to a serial fallback instead of failing the query
    /// (see `exec_par`). When active the fault injector is routed to the
    /// morsel fault surface instead of the scan pre-pass, so billing
    /// stays fault-free and byte-identical by construction. Results are
    /// unchanged; only failure handling differs. Ignored when the script
    /// does not lower to the compiled path.
    pub morsel_recovery: bool,
}

impl Default for SqlOptions {
    fn default() -> Self {
        SqlOptions {
            n_threads: 0,
            partition_parallel: true,
            zone_map_pruning: true,
            vectorized_filter: true,
            compile: true,
            parallel_workers: 0,
            morsel_recovery: false,
        }
    }
}

/// Result of executing a script.
#[derive(Clone, Debug)]
pub struct QueryOutput {
    /// The final relation.
    pub relation: Relation,
    /// Execution statistics (wall/CPU/scan accounting).
    pub stats: ExecStats,
}

/// A SQL engine bound to a dialect profile.
pub struct SqlEngine {
    dialect: Dialect,
    options: SqlOptions,
    tables: HashMap<String, Arc<Table>>,
    chunk_cache: Option<Arc<ChunkCache>>,
    fault_injector: Option<Arc<FaultInjector>>,
    trace: obs::TraceCtx,
    cancel: obs::CancelToken,
}

impl SqlEngine {
    /// Creates an engine for a dialect.
    pub fn new(dialect: Dialect, options: SqlOptions) -> SqlEngine {
        SqlEngine {
            dialect,
            options,
            tables: HashMap::new(),
            chunk_cache: None,
            fault_injector: None,
            trace: obs::TraceCtx::disabled(),
            cancel: obs::CancelToken::none(),
        }
    }

    /// Registers a base table under its own name.
    pub fn register(&mut self, table: Arc<Table>) {
        self.tables.insert(table.name().to_ascii_lowercase(), table);
    }

    /// Attaches a shared buffer pool in front of physical chunk reads.
    /// Purely an I/O-accounting/serving knob: billing bytes and results
    /// are identical with or without it (see [`nf2_columnar::ScanStats`]).
    pub fn set_chunk_cache(&mut self, cache: Option<Arc<ChunkCache>>) {
        self.chunk_cache = cache;
    }

    /// Attaches a chaos-layer fault injector to physical chunk reads.
    /// `None` (the default) leaves the scan path byte-identical to the
    /// fault-free engine.
    pub fn set_fault_injector(&mut self, injector: Option<Arc<FaultInjector>>) {
        self.fault_injector = injector;
    }

    /// Attaches a tracing context: execution stages record spans into
    /// it. The default (disabled) context makes instrumentation a
    /// near-no-op.
    pub fn set_trace(&mut self, trace: obs::TraceCtx) {
        self.trace = trace;
    }

    /// Attaches a cooperative cancellation token: the scan accounting
    /// and the per-group execution loops check it at row-group
    /// granularity and abort with [`SqlError::Cancelled`] once it trips.
    /// The default (disabled) token costs a single branch per group.
    pub fn set_cancel(&mut self, cancel: obs::CancelToken) {
        self.cancel = cancel;
    }

    /// The engine's dialect.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// Parses, validates (against the dialect), and executes a script.
    pub fn execute(&self, sql: &str) -> Result<QueryOutput, SqlError> {
        let start = Instant::now();
        let parse_span = self.trace.span_with(obs::Stage::Parse, || {
            format!("{} dialect", self.dialect.name.as_str())
        });
        let script = parser::parse_script(sql)?;
        self.dialect.validate(&script)?;
        parse_span.finish();

        let plan_span = self.trace.span(obs::Stage::Plan);
        // Static projection analysis → scan accounting per base table.
        let schemas: HashMap<String, &nf2_columnar::Schema> = self
            .tables
            .iter()
            .map(|(n, t)| (n.clone(), t.schema()))
            .collect();
        let projections = plan::collect_projections(&script, &schemas);

        // One predicate extraction feeds two independent consumers:
        // zone-map pruning (whole row groups skipped before decode, via
        // [`nf2_columnar::ScanRequest::prune`]) and the vectorized
        // pre-filter (late materialization of surviving groups). Either
        // can be toggled without the other; results are identical in all
        // four combinations because the full WHERE still runs on whatever
        // rows get materialized.
        let extracted = if self.options.zone_map_pruning || self.options.vectorized_filter {
            plan::filterable_predicates(&script, &schemas)
        } else {
            HashMap::new()
        };
        let no_preds: HashMap<String, Vec<ScalarPredicate>> = HashMap::new();
        let prune_preds = if self.options.zone_map_pruning {
            &extracted
        } else {
            &no_preds
        };
        let filter_preds = if self.options.vectorized_filter {
            &extracted
        } else {
            &no_preds
        };

        let udfs = compile_udfs(&script)?;
        // Segment-parallel if the root is decomposable and exactly one base
        // table is referenced.
        let merge_spec = plan::root_merge_spec(&script);
        // Compiled path detection (under the Plan span): scripts that are
        // exact instances of the canonical template lower to a
        // fused-kernel physical plan; everything else interprets. The
        // scan accounting above and below is shared by both modes.
        let compiled = if self.options.compile {
            crate::compile::lower(&script)
        } else {
            None
        };
        plan_span.finish();

        let mut scan = ScanStats::default();
        let mut table_projs: HashMap<String, Projection> = HashMap::new();
        // Keep-masks over row groups (zone-map pruning); execution loops
        // skip exactly the groups the scan accounting skipped.
        let mut masks: HashMap<String, Vec<bool>> = HashMap::new();
        for (name, table) in &self.tables {
            let proj = match projections.get(name) {
                Some(cols) if !cols.is_empty() => Projection::of(cols.iter()),
                // Table in FROM but no column referenced (bare COUNT(*)):
                // real engines still read one (cheap) column to count rows.
                Some(_) => {
                    let first = table
                        .schema()
                        .leaves()
                        .first()
                        .map(|l| l.path.to_string())
                        .unwrap_or_default();
                    Projection::of([first])
                }
                None => continue, // table not referenced
            };
            let scan_cache = self.chunk_cache.as_deref().map(|cache| ScanCache {
                cache,
                table_fingerprint: table.fingerprint(),
            });
            // With morsel recovery active on the compiled path, the
            // injector moves to the morsel fault surface (exec_par probes
            // the same (fingerprint, group, leaf) coordinates per morsel),
            // and the billing pre-pass here stays fault-free — which is
            // what makes ScanStats byte-identical under injected faults
            // and recovered morsels impossible to double-bill.
            let faults_at_morsels =
                self.options.morsel_recovery && compiled.is_some() && name == "events";
            let scan_faults = if faults_at_morsels {
                None
            } else {
                self.fault_injector.as_deref().map(|injector| ScanFaults {
                    injector,
                    table_name: table.name(),
                    table_fingerprint: table.fingerprint(),
                })
            };
            let preds = prune_preds.get(name).map_or(&[][..], |v| v.as_slice());
            let run = nf2_columnar::ScanRequest::new(table, &proj)
                .capability(self.dialect.pushdown)
                .cache(scan_cache)
                .faults(scan_faults)
                .trace(&self.trace)
                .cancel(&self.cancel)
                .prune(preds)
                .run()?;
            scan.merge(&run.stats);
            let keep = run
                .skip
                .map(|skip| skip.iter().map(|s| !s).collect())
                .unwrap_or_else(|| vec![true; table.row_groups().len()]);
            masks.insert(name.clone(), keep);
            table_projs.insert(name.clone(), proj);
        }
        let skipped_groups = scan.groups_pruned;

        let cpu = Mutex::new(0.0f64);
        // Compiled execution binds to the template's base table; the
        // zone-map keep-mask still applies (pruned groups are skipped by
        // the executor exactly as the interpreter skips them).
        let compiled_exec = compiled.as_ref().and_then(|p| {
            let table = self.tables.get("events")?;
            let mask = masks.get("events")?;
            Some((p, table, mask))
        });
        let (relation, threads_used, morsel_rec) = if let Some((cplan, table, mask)) = compiled_exec
        {
            let t0 = Instant::now();
            let skip: Vec<bool> = mask.iter().map(|keep| !keep).collect();
            let workers = self.options.parallel_workers;
            let recovering = self.options.morsel_recovery;
            // Recovery runs through the pool even at one worker so a
            // serial compiled query still gets the retry/quarantine path.
            let (bins, compiled_threads, recovery) = if workers > 1 || recovering {
                let opts = exec_par::ParOptions {
                    recovery: recovering.then(exec_par::RecoveryOptions::default),
                    ..exec_par::ParOptions::new(workers.max(1))
                };
                let morsel_faults = recovering
                    .then(|| {
                        self.fault_injector.as_deref().map(|injector| ScanFaults {
                            injector,
                            table_name: table.name(),
                            table_fingerprint: table.fingerprint(),
                        })
                    })
                    .flatten();
                exec_par::execute_with_faults(
                    cplan,
                    table,
                    Some(&skip),
                    &self.trace,
                    &self.cancel,
                    None,
                    &opts,
                    morsel_faults,
                )
                .map(|(bins, stats)| (bins, stats.workers, stats.recovery))
            } else {
                physical_ir::execute(cplan, table, Some(&skip), &self.trace, &self.cancel)
                    .map(|bins| (bins, 1, nf2_columnar::MorselRecovery::default()))
            }
            .map_err(|e| match e {
                physical_ir::PirError::Columnar(c) => SqlError::from(c),
                physical_ir::PirError::Cancelled(c) => SqlError::Cancelled(c),
                e @ physical_ir::PirError::MorselPanic { .. } => SqlError::Eval(e.to_string()),
            })?;
            // The trivial final count, matching the binning tail's output
            // contract: two columns (bin, n), one row per non-empty bin.
            let mut counts: std::collections::BTreeMap<i64, i64> =
                std::collections::BTreeMap::new();
            for b in bins {
                *counts.entry(b).or_insert(0) += 1;
            }
            let rel = Relation {
                cols: vec!["bin".to_string(), "n".to_string()],
                rows: counts
                    .into_iter()
                    .map(|(b, n)| vec![Value::Int(b), Value::Int(n)])
                    .collect(),
            };
            *cpu.lock() += t0.elapsed().as_secs_f64();
            (rel, compiled_threads, recovery)
        } else {
            let (rel, threads) = match (&merge_spec, table_projs.len()) {
                (Some(spec), 1) if self.options.partition_parallel => {
                    let (name, proj) = table_projs.iter().next().expect("one table");
                    let table = self.tables.get(name).expect("registered");
                    let mask = masks.get(name).expect("mask built above");
                    let preds = filter_preds.get(name).map_or(&[][..], |v| v.as_slice());
                    self.run_parallel(&script, &udfs, name, table, proj, mask, preds, spec, &cpu)?
                }
                _ => {
                    let t0 = Instant::now();
                    let rel =
                        self.run_serial(&script, &udfs, &table_projs, &masks, filter_preds)?;
                    *cpu.lock() += t0.elapsed().as_secs_f64();
                    (rel, 1)
                }
            };
            (rel, threads, nf2_columnar::MorselRecovery::default())
        };

        Ok(QueryOutput {
            relation,
            stats: ExecStats {
                wall_seconds: start.elapsed().as_secs_f64(),
                cpu_seconds: cpu.into_inner(),
                scan,
                threads_used,
                row_groups_skipped: skipped_groups,
                recovery: morsel_rec,
            },
        })
    }

    fn materialize_group(
        &self,
        table: &Table,
        group: &RowGroup,
        group_idx: usize,
        proj: &Projection,
        preds: &[ScalarPredicate],
    ) -> Result<Vec<Value>, SqlError> {
        // Rows are reconstructed from the *logical* leaves; the dialect's
        // pushdown limitation affects bytes scanned (accounted above), not
        // the values the executor sees. Leaf resolution happens inside the
        // materialize span: it is per-group work and must be accounted.
        if preds.is_empty() {
            let mat_span = self
                .trace
                .span_with(obs::Stage::Materialize, || format!("group {group_idx}"));
            let leaves = proj.logical_leaves(table.schema())?;
            let rows = group.read_rows(table.schema(), &leaves)?;
            drop(mat_span);
            return Ok(rows);
        }
        let mut filter_span = self
            .trace
            .span_with(obs::Stage::Filter, || format!("group {group_idx}"));
        let sel = nf2_columnar::apply_predicates(group, preds)?;
        if filter_span.is_enabled() {
            filter_span.add_rows_in(sel.n_rows() as u64);
            filter_span.add_rows_out(sel.len() as u64);
        }
        filter_span.finish();
        let mat_span = self
            .trace
            .span_with(obs::Stage::Materialize, || format!("group {group_idx}"));
        let leaves = proj.logical_leaves(table.schema())?;
        let rows = if sel.is_full() {
            group.read_rows(table.schema(), &leaves)?
        } else {
            group.read_rows_selected(table.schema(), &leaves, &sel)?
        };
        drop(mat_span);
        Ok(rows)
    }

    fn run_serial(
        &self,
        script: &Script,
        udfs: &HashMap<String, Udf>,
        projs: &HashMap<String, Projection>,
        masks: &HashMap<String, Vec<bool>>,
        filters: &HashMap<String, Vec<ScalarPredicate>>,
    ) -> Result<Relation, SqlError> {
        let mut relations = HashMap::new();
        for (name, proj) in projs {
            let table = self.tables.get(name).expect("registered");
            let mask = masks.get(name).expect("mask built");
            let preds = filters.get(name).map_or(&[][..], |v| v.as_slice());
            let mut rows = Vec::with_capacity(table.n_rows());
            let mut rows_done = 0u64;
            for (idx, (g, keep)) in table.row_groups().iter().zip(mask).enumerate() {
                if !keep {
                    continue;
                }
                self.cancel.check(obs::Stage::Materialize, rows_done)?;
                rows.extend(self.materialize_group(table, g, idx, proj, preds)?);
                rows_done += g.n_rows() as u64;
            }
            relations.insert(name.clone(), Rc::new(rows));
        }
        let agg_span = self.trace.span(obs::Stage::Aggregate);
        let ctx = ExecContext {
            relations,
            udfs: udfs.clone(),
            dialect: self.dialect,
        };
        let root = Scope::root();
        let rel = exec::eval_query(&script.query, &ctx, &root);
        drop(ctx);
        agg_span.finish();
        rel
    }

    #[allow(clippy::too_many_arguments)]
    fn run_parallel(
        &self,
        script: &Script,
        udfs: &HashMap<String, Udf>,
        table_name: &str,
        table: &Arc<Table>,
        proj: &Projection,
        mask: &[bool],
        preds: &[ScalarPredicate],
        spec: &[ColMerge],
        cpu: &Mutex<f64>,
    ) -> Result<(Relation, usize), SqlError> {
        let n_groups = table.row_groups().len();
        let hw = std::thread::available_parallelism().map_or(4, |n| n.get());
        let n_threads = if self.options.n_threads == 0 {
            hw
        } else {
            self.options.n_threads
        }
        .max(1)
        .min(n_groups.max(1));

        let next = AtomicUsize::new(0);
        // Partials are tagged with their group index and merged in group
        // order below: completion order depends on thread scheduling, and
        // first-encounter order decides output row order for grouped
        // results with no ORDER BY.
        let partials: Mutex<Vec<(usize, Relation)>> = Mutex::new(Vec::new());
        let first_err: Mutex<Option<SqlError>> = Mutex::new(None);
        // Rows of fully processed groups, shared so a cancellation
        // observed by any worker reports total progress.
        let rows_done = std::sync::atomic::AtomicU64::new(0);

        let worker = || {
            let t0 = Instant::now();
            loop {
                let g = next.fetch_add(1, Ordering::Relaxed);
                if g >= n_groups {
                    break;
                }
                if !mask[g] {
                    continue;
                }
                if let Err(c) = self
                    .cancel
                    .check(obs::Stage::Materialize, rows_done.load(Ordering::Relaxed))
                {
                    first_err.lock().get_or_insert(SqlError::Cancelled(c));
                    break;
                }
                let result = (|| -> Result<Relation, SqlError> {
                    let rows =
                        self.materialize_group(table, &table.row_groups()[g], g, proj, preds)?;
                    // The aggregate span also covers building and freeing
                    // the per-group context: releasing the materialized
                    // rows is real per-group work.
                    let agg_span = self
                        .trace
                        .span_with(obs::Stage::Aggregate, || format!("group {g}"));
                    let mut relations = HashMap::new();
                    relations.insert(table_name.to_string(), Rc::new(rows));
                    let ctx = ExecContext {
                        relations,
                        udfs: udfs.clone(),
                        dialect: self.dialect,
                    };
                    let root = Scope::root();
                    let rel = exec::eval_query(&script.query, &ctx, &root);
                    drop(ctx);
                    agg_span.finish();
                    rel
                })();
                match result {
                    Ok(rel) => {
                        rows_done
                            .fetch_add(table.row_groups()[g].n_rows() as u64, Ordering::Relaxed);
                        partials.lock().push((g, rel));
                    }
                    Err(e) => {
                        first_err.lock().get_or_insert(e);
                        break;
                    }
                }
            }
            *cpu.lock() += t0.elapsed().as_secs_f64();
        };

        if n_threads <= 1 {
            worker();
        } else {
            crossbeam::thread::scope(|s| {
                for _ in 0..n_threads {
                    s.spawn(|_| worker());
                }
            })
            .expect("scope");
        }
        if let Some(e) = first_err.into_inner() {
            return Err(e);
        }
        let merge_span = self
            .trace
            .span_with(obs::Stage::Aggregate, || "merge".to_string());
        let mut partials = partials.into_inner();
        partials.sort_by_key(|(g, _)| *g);
        let merged = merge_partials(partials.into_iter().map(|(_, r)| r).collect(), spec)?;
        // Re-apply root ORDER BY on the merged result.
        let mut merged = merged;
        if !script.query.order_by.is_empty() {
            let ctx = ExecContext {
                relations: HashMap::new(),
                udfs: udfs.clone(),
                dialect: self.dialect,
            };
            let root = Scope::root();
            exec::sort_relation_pub(&mut merged, &script.query.order_by, &ctx, &root)?;
        }
        merge_span.finish();
        Ok((merged, n_threads))
    }
}

fn compile_udfs(script: &Script) -> Result<HashMap<String, Udf>, SqlError> {
    let mut udfs = HashMap::new();
    for f in &script.functions {
        let udf = Udf {
            params: f.params.iter().map(|(n, _)| n.clone()).collect(),
            types: f.params.iter().map(|(_, t)| t.clone()).collect(),
            body: f.body.clone(),
        };
        udfs.insert(f.name.to_ascii_lowercase(), udf);
    }
    Ok(udfs)
}

/// Merges per-segment relations by key columns, combining aggregate columns
/// per the merge spec.
fn merge_partials(partials: Vec<Relation>, spec: &[ColMerge]) -> Result<Relation, SqlError> {
    let cols = partials
        .iter()
        .find(|r| !r.cols.is_empty())
        .map(|r| r.cols.clone())
        .unwrap_or_default();
    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for part in &partials {
        for row in &part.rows {
            if row.len() != spec.len() {
                return Err(SqlError::Plan(format!(
                    "merge spec covers {} columns but row has {}",
                    spec.len(),
                    row.len()
                )));
            }
            let key: Vec<Value> = row
                .iter()
                .zip(spec.iter())
                .filter(|(_, m)| **m == ColMerge::Key)
                .map(|(v, _)| v.clone())
                .collect();
            let kb = exec::row_key(&key);
            match index.get(&kb) {
                None => {
                    index.insert(kb, rows.len());
                    rows.push(row.clone());
                }
                Some(&slot) => {
                    let dst = &mut rows[slot];
                    for (i, m) in spec.iter().enumerate() {
                        match m {
                            ColMerge::Key => {}
                            ColMerge::Sum => {
                                dst[i] = nested_value::ops::arith(
                                    nested_value::ops::ArithOp::Add,
                                    &dst[i],
                                    &row[i],
                                )?;
                            }
                            ColMerge::Min | ColMerge::Max => {
                                let ord = nested_value::ops::compare(&row[i], &dst[i])?;
                                let take = if *m == ColMerge::Max {
                                    ord == std::cmp::Ordering::Greater
                                } else {
                                    ord == std::cmp::Ordering::Less
                                };
                                if take || dst[i].is_null() {
                                    dst[i] = row[i].clone();
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(Relation { cols, rows })
}
