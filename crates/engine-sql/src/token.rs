//! SQL tokenizer.

use crate::error::SqlError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or keyword (kept verbatim; keyword matching is
    /// case-insensitive at the parser level).
    Ident(String),
    /// Quoted identifier (`"name"` or `` `name` ``).
    QuotedIdent(String),
    /// Numeric literal.
    Number(String),
    /// String literal (single quotes).
    Str(String),
    /// Punctuation / operator.
    Punct(&'static str),
}

impl Token {
    /// True if this is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// True if this is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Token::Punct(q) if *q == p)
    }
}

const PUNCTS: &[&str] = &[
    "<=", ">=", "<>", "!=", "->", "||", "(", ")", "[", "]", "{", "}", ",", ".", ";", "+", "-", "*",
    "/", "%", "<", ">", "=", ":",
];

/// Tokenizes SQL text. Comments (`-- …` and `/* … */`) are skipped.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = sql.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let mut j = i + 2;
            while j + 1 < bytes.len() {
                if bytes[j] == b'*' && bytes[j + 1] == b'/' {
                    i = j + 2;
                    continue 'outer;
                }
                j += 1;
            }
            return Err(SqlError::Lex(i, "unterminated block comment".into()));
        }
        // String literal.
        if c == '\'' {
            let mut s = String::new();
            let mut j = i + 1;
            loop {
                if j >= bytes.len() {
                    return Err(SqlError::Lex(i, "unterminated string".into()));
                }
                if bytes[j] == b'\'' {
                    if bytes.get(j + 1) == Some(&b'\'') {
                        s.push('\'');
                        j += 2;
                        continue;
                    }
                    break;
                }
                s.push(bytes[j] as char);
                j += 1;
            }
            out.push(Token::Str(s));
            i = j + 1;
            continue;
        }
        // Quoted identifiers.
        if c == '"' || c == '`' {
            let quote = bytes[i];
            let mut j = i + 1;
            let mut s = String::new();
            while j < bytes.len() && bytes[j] != quote {
                s.push(bytes[j] as char);
                j += 1;
            }
            if j >= bytes.len() {
                return Err(SqlError::Lex(i, "unterminated quoted identifier".into()));
            }
            out.push(Token::QuotedIdent(s));
            i = j + 1;
            continue;
        }
        // Numbers (including decimals and exponents).
        if c.is_ascii_digit() || (c == '.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()))
        {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                i += 1;
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && bytes[j].is_ascii_digit() {
                    i = j;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            out.push(Token::Number(sql[start..i].to_string()));
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'$')
            {
                i += 1;
            }
            out.push(Token::Ident(sql[start..i].to_string()));
            continue;
        }
        // Punctuation (longest match first).
        for p in PUNCTS {
            if sql[i..].starts_with(p) {
                out.push(Token::Punct(p));
                i += p.len();
                continue 'outer;
            }
        }
        return Err(SqlError::Lex(i, format!("unexpected character {c:?}")));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("SELECT a.b, 1.5e3 FROM t WHERE x <= 'it''s'").unwrap();
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert!(toks[2].is_punct("."));
        assert_eq!(toks[4], Token::Punct(","));
        assert_eq!(toks[5], Token::Number("1.5e3".into()));
        assert!(toks.iter().any(|t| t.is_punct("<=")));
        assert!(toks
            .iter()
            .any(|t| matches!(t, Token::Str(s) if s == "it's")));
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT /* hi */ 1 -- trailing\n+ 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Number("1".into()),
                Token::Punct("+"),
                Token::Number("2".into()),
            ]
        );
    }

    #[test]
    fn lambda_arrow_and_neq() {
        let toks = tokenize("x -> x.pt != 1 <> 2").unwrap();
        assert!(toks.iter().any(|t| t.is_punct("->")));
        assert!(toks.iter().any(|t| t.is_punct("!=")));
        assert!(toks.iter().any(|t| t.is_punct("<>")));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("/* unterminated").is_err());
        assert!(tokenize("a ? b").is_err());
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("SELECT \"weird name\", `bq`").unwrap();
        assert_eq!(toks[1], Token::QuotedIdent("weird name".into()));
        assert_eq!(toks[3], Token::QuotedIdent("bq".into()));
    }
}
