//! # engine-sql
//!
//! A SQL query engine for NF² (nested) data with **per-dialect capability
//! profiles**, standing in for the three SQL systems of the paper: Google
//! BigQuery, PrestoDB, and Amazon Athena.
//!
//! The engine implements the SQL:1999-and-beyond constructs the paper's
//! functional analysis (§3) identifies as essential for HEP analytics:
//!
//! * `UNNEST` in `CROSS JOIN` position, with `WITH ORDINALITY` (Presto/
//!   Athena) and `WITH OFFSET` (BigQuery) index generation (R1.1–R1.3);
//! * correlated **nested subqueries** over `UNNEST` of the outer row's
//!   arrays (R2.2 — BigQuery only, like in the paper);
//! * non-standard **array functions** `FILTER`, `TRANSFORM`, `REDUCE`,
//!   `CARDINALITY`, `ANY_MATCH`/`NONE_MATCH`, `COMBINATIONS` with lambda
//!   expressions (R3.3 — Presto/Athena flavour);
//! * `ROW`/`STRUCT` construction — `CAST(ROW(…) AS ROW(…))` for Presto,
//!   inline `STRUCT<…>(…)` and `STRUCT(… AS name)` for BigQuery
//!   (R2.1/R3.1/R3.2);
//! * chains of **common table expressions** and SQL **UDFs**
//!   (`CREATE TEMP FUNCTION` — BigQuery; `CREATE FUNCTION … RETURN` —
//!   Presto, with its "UDFs cannot call UDFs" restriction; Athena: none)
//!   (R1.4/R2.3);
//! * `GROUP BY` on select aliases (BigQuery divergence, R2.4), `MIN_BY`
//!   aggregates, `ORDER BY`/`LIMIT` in subqueries.
//!
//! A [`dialect::Dialect`] is enforced at plan time: queries using constructs
//! a system lacks fail with a capability error, exactly mirroring Table 1.
//!
//! Execution is row-at-a-time over the columnar substrate with projection
//! pushdown limited by the dialect's [`nf2_columnar::PushdownCapability`]
//! (Presto/Athena read whole structs — paper §4.1/Fig 4b). Queries whose
//! root is a decomposable aggregation can run **segment-parallel** over row
//! groups (Presto's split model); see [`exec`].

pub mod ast;
pub mod compile;
pub mod dialect;
pub mod engine;
pub mod error;
pub mod exec;
pub mod functions;
pub mod parser;
pub mod plan;
pub mod token;

pub use dialect::{Dialect, DialectName, UdfSupport};
pub use engine::{QueryOutput, SqlEngine, SqlOptions};
pub use error::SqlError;

#[cfg(test)]
mod proptests;
#[cfg(test)]
mod tests_queries;
