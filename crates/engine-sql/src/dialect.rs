//! Dialect capability profiles — Table 1 of the paper in executable form.

use nf2_columnar::PushdownCapability;

use crate::ast::{Expr, FromItem, Query, Script, Select, SelectItem};
use crate::error::SqlError;

/// UDF support level (paper §3.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UdfSupport {
    /// No usable UDFs (Athena: only serverless preview, unusable for
    /// data-intensive work).
    None,
    /// Experimental SQL UDFs that cannot call other UDFs (Presto).
    NoNestedCalls,
    /// Mature permanent/temporary UDFs (BigQuery).
    Full,
}

/// The three SQL systems under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DialectName {
    /// Google BigQuery (Dremel's public interface).
    BigQuery,
    /// PrestoDB 0.248.
    Presto,
    /// Amazon Athena v2 (Presto-derived QaaS).
    Athena,
}

impl DialectName {
    /// Human-readable name.
    pub fn as_str(&self) -> &'static str {
        match self {
            DialectName::BigQuery => "BigQuery",
            DialectName::Presto => "Presto",
            DialectName::Athena => "Athena",
        }
    }
}

/// A capability profile controlling which parsed constructs are legal and
/// how the storage layer behaves.
#[derive(Clone, Copy, Debug)]
pub struct Dialect {
    /// Which system this profile models.
    pub name: DialectName,
    /// UDF support level (R1.4).
    pub udf_support: UdfSupport,
    /// Correlated/nested subqueries in expressions (R2.2).
    pub nested_subqueries: bool,
    /// `GROUP BY` may reference select aliases (R2.4).
    pub group_by_alias: bool,
    /// `UNNEST … WITH OFFSET` (BigQuery index syntax).
    pub unnest_with_offset: bool,
    /// `UNNEST … WITH ORDINALITY` (Presto/Athena index syntax).
    pub unnest_with_ordinality: bool,
    /// Whole-struct unnest alias without a column list (R3.5 — BigQuery and
    /// Athena; Presto requires the full field list).
    pub unnest_struct_alias: bool,
    /// BigQuery struct constructors `STRUCT<…>(…)` / `STRUCT(… AS n)`
    /// (R3.1).
    pub struct_ctor: bool,
    /// Presto/Athena `ROW(…)` constructor + `CAST(… AS ROW(…))`.
    pub row_ctor: bool,
    /// BigQuery `ARRAY(SELECT …)` construction (R3.4).
    pub array_subquery: bool,
    /// Lambda-based array functions `FILTER`/`TRANSFORM`/`REDUCE`/… (R3.3).
    pub lambda_array_functions: bool,
    /// Presto's `COMBINATIONS` function (not in Athena despite the shared
    /// code base — paper §3.4).
    pub combinations_function: bool,
    /// How far the scan layer pushes projections (paper §4.1/Fig 4b).
    pub pushdown: PushdownCapability,
}

impl Dialect {
    /// The BigQuery profile.
    pub fn bigquery() -> Dialect {
        Dialect {
            name: DialectName::BigQuery,
            udf_support: UdfSupport::Full,
            nested_subqueries: true,
            group_by_alias: true,
            unnest_with_offset: true,
            unnest_with_ordinality: false,
            unnest_struct_alias: true,
            struct_ctor: true,
            row_ctor: false,
            array_subquery: true,
            lambda_array_functions: false,
            combinations_function: false,
            pushdown: PushdownCapability::IndividualLeaves,
        }
    }

    /// The PrestoDB profile.
    pub fn presto() -> Dialect {
        Dialect {
            name: DialectName::Presto,
            udf_support: UdfSupport::NoNestedCalls,
            nested_subqueries: false,
            group_by_alias: false,
            unnest_with_offset: false,
            unnest_with_ordinality: true,
            unnest_struct_alias: false,
            struct_ctor: false,
            row_ctor: true,
            array_subquery: false,
            lambda_array_functions: true,
            combinations_function: true,
            pushdown: PushdownCapability::WholeStructs,
        }
    }

    /// The Athena v2 profile.
    pub fn athena() -> Dialect {
        Dialect {
            name: DialectName::Athena,
            udf_support: UdfSupport::None,
            nested_subqueries: false,
            group_by_alias: false,
            unnest_with_offset: false,
            unnest_with_ordinality: true,
            unnest_struct_alias: true,
            struct_ctor: false,
            row_ctor: true,
            array_subquery: false,
            lambda_array_functions: true,
            combinations_function: false,
            pushdown: PushdownCapability::WholeStructs,
        }
    }

    /// Profile by name.
    pub fn of(name: DialectName) -> Dialect {
        match name {
            DialectName::BigQuery => Dialect::bigquery(),
            DialectName::Presto => Dialect::presto(),
            DialectName::Athena => Dialect::athena(),
        }
    }

    fn err(&self, construct: &str) -> SqlError {
        SqlError::Capability {
            dialect: self.name.as_str(),
            construct: construct.to_string(),
        }
    }

    /// Validates a parsed script against this profile.
    pub fn validate(&self, script: &Script) -> Result<(), SqlError> {
        // UDFs.
        if !script.functions.is_empty() && self.udf_support == UdfSupport::None {
            return Err(self.err("user-defined functions"));
        }
        if self.udf_support == UdfSupport::NoNestedCalls {
            let names: Vec<String> = script
                .functions
                .iter()
                .map(|f| f.name.to_ascii_lowercase())
                .collect();
            for f in &script.functions {
                let mut violation = None;
                f.body.walk(&mut |e| {
                    if let Expr::Call { name, .. } = e {
                        if names.contains(&name.to_ascii_lowercase()) {
                            violation = Some(name.clone());
                        }
                    }
                });
                if let Some(callee) = violation {
                    return Err(self.err(&format!(
                        "UDFs calling other UDFs ({} calls {})",
                        f.name, callee
                    )));
                }
            }
        }
        for f in &script.functions {
            self.validate_expr(&f.body)?;
        }
        self.validate_query(&script.query)
    }

    fn validate_query(&self, q: &Query) -> Result<(), SqlError> {
        for (_, cte) in &q.ctes {
            self.validate_query(cte)?;
        }
        self.validate_select(&q.select)?;
        for o in &q.order_by {
            self.validate_expr(&o.expr)?;
        }
        Ok(())
    }

    fn validate_select(&self, s: &Select) -> Result<(), SqlError> {
        for item in &s.items {
            if let SelectItem::Expr { expr, .. } = item {
                self.validate_expr(expr)?;
            }
        }
        for f in &s.from {
            self.validate_from(f)?;
        }
        for e in s
            .where_clause
            .iter()
            .chain(s.group_by.iter())
            .chain(s.having.iter())
        {
            self.validate_expr(e)?;
        }
        Ok(())
    }

    fn validate_from(&self, f: &FromItem) -> Result<(), SqlError> {
        match f {
            FromItem::Table { .. } => Ok(()),
            FromItem::Subquery { query, .. } => self.validate_query(query),
            FromItem::Join {
                left, right, on, ..
            } => {
                self.validate_from(left)?;
                self.validate_from(right)?;
                if let Some(e) = on {
                    self.validate_expr(e)?;
                }
                Ok(())
            }
            FromItem::Unnest(u) => {
                self.validate_expr(&u.expr)?;
                if u.with_offset.is_some() && !self.unnest_with_offset {
                    return Err(self.err("UNNEST … WITH OFFSET"));
                }
                if u.with_ordinality && !self.unnest_with_ordinality {
                    return Err(self.err("UNNEST … WITH ORDINALITY"));
                }
                if u.alias.is_some() && u.column_aliases.is_empty() && !self.unnest_struct_alias {
                    return Err(self.err(
                        "whole-struct aliases in UNNEST (the full column list must be spelled out)",
                    ));
                }
                Ok(())
            }
        }
    }

    fn validate_expr(&self, root: &Expr) -> Result<(), SqlError> {
        let mut err: Option<SqlError> = None;
        root.walk(&mut |e| {
            if err.is_some() {
                return;
            }
            match e {
                Expr::Subquery(q) | Expr::Exists(q) => {
                    if !self.nested_subqueries {
                        err = Some(self.err("nested subqueries in expressions"));
                    } else if let Err(e2) = self.validate_query(q) {
                        err = Some(e2);
                    }
                }
                Expr::ArraySubquery(q) => {
                    if !self.array_subquery {
                        err = Some(self.err("ARRAY(SELECT …) construction"));
                    } else if let Err(e2) = self.validate_query(q) {
                        err = Some(e2);
                    }
                }
                Expr::StructCtor { .. } if !self.struct_ctor => {
                    err = Some(self.err("STRUCT constructors"));
                }
                Expr::RowCtor(_) if !self.row_ctor => {
                    err = Some(self.err("ROW constructors"));
                }
                Expr::Lambda(..) if !self.lambda_array_functions => {
                    err = Some(self.err("lambda expressions / array functions"));
                }
                Expr::Call { name, .. }
                    if name.eq_ignore_ascii_case("combinations") && !self.combinations_function =>
                {
                    err = Some(self.err("the COMBINATIONS array function"));
                }
                _ => {}
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;

    #[test]
    fn athena_rejects_udfs() {
        let s = parse_script("CREATE TEMP FUNCTION f(x FLOAT64) AS (x); SELECT f(1.0)").unwrap();
        assert!(Dialect::bigquery().validate(&s).is_ok());
        assert!(matches!(
            Dialect::athena().validate(&s),
            Err(SqlError::Capability {
                dialect: "Athena",
                ..
            })
        ));
    }

    #[test]
    fn presto_rejects_nested_udf_calls() {
        let s = parse_script(
            "CREATE FUNCTION f(x DOUBLE) RETURNS DOUBLE RETURN x;\n\
             CREATE FUNCTION g(x DOUBLE) RETURNS DOUBLE RETURN f(x) + 1;\n\
             SELECT g(1.0)",
        )
        .unwrap();
        assert!(Dialect::bigquery().validate(&s).is_ok());
        let err = Dialect::presto().validate(&s).unwrap_err();
        assert!(matches!(
            err,
            SqlError::Capability {
                dialect: "Presto",
                ..
            }
        ));
    }

    #[test]
    fn presto_rejects_correlated_subqueries() {
        let s = parse_script("SELECT 1 FROM events WHERE (SELECT COUNT(*) FROM UNNEST(Jet) j) > 1")
            .unwrap();
        assert!(Dialect::bigquery().validate(&s).is_ok());
        assert!(Dialect::presto().validate(&s).is_err());
        assert!(Dialect::athena().validate(&s).is_err());
    }

    #[test]
    fn bigquery_rejects_lambdas_prestos_accept() {
        let s =
            parse_script("SELECT CARDINALITY(FILTER(Jet, j -> j.pt > 40)) FROM events").unwrap();
        assert!(Dialect::presto().validate(&s).is_ok());
        assert!(Dialect::athena().validate(&s).is_ok());
        assert!(Dialect::bigquery().validate(&s).is_err());
    }

    #[test]
    fn combinations_is_presto_only() {
        let s = parse_script("SELECT COMBINATIONS(Jet, 3) FROM events").unwrap();
        assert!(Dialect::presto().validate(&s).is_ok());
        assert!(Dialect::athena().validate(&s).is_err());
    }

    #[test]
    fn struct_vs_row_constructors() {
        let bq = parse_script("SELECT STRUCT(1 AS x) FROM t").unwrap();
        assert!(Dialect::bigquery().validate(&bq).is_ok());
        assert!(Dialect::presto().validate(&bq).is_err());
        let presto = parse_script("SELECT CAST(ROW(1) AS ROW(x BIGINT)) FROM t").unwrap();
        assert!(Dialect::presto().validate(&presto).is_ok());
        assert!(Dialect::bigquery().validate(&presto).is_err());
    }

    #[test]
    fn unnest_index_syntax() {
        let bq = parse_script("SELECT 1 FROM t, UNNEST(Jet) j WITH OFFSET i").unwrap();
        assert!(Dialect::bigquery().validate(&bq).is_ok());
        assert!(Dialect::presto().validate(&bq).is_err());
        let presto =
            parse_script("SELECT 1 FROM t CROSS JOIN UNNEST(Jet) WITH ORDINALITY AS u (pt, i)")
                .unwrap();
        assert!(Dialect::presto().validate(&presto).is_ok());
        assert!(Dialect::bigquery().validate(&presto).is_err());
        // Whole-struct alias: fine in Athena, not in Presto (R3.5).
        let athena = parse_script("SELECT 1 FROM t CROSS JOIN UNNEST(Jet) AS j").unwrap();
        assert!(Dialect::athena().validate(&athena).is_ok());
        assert!(Dialect::presto().validate(&athena).is_err());
    }

    #[test]
    fn pushdown_capabilities() {
        assert_eq!(
            Dialect::bigquery().pushdown,
            nf2_columnar::PushdownCapability::IndividualLeaves
        );
        assert_eq!(
            Dialect::presto().pushdown,
            nf2_columnar::PushdownCapability::WholeStructs
        );
    }
}
