//! Built-in scalar and array functions (lambda-free).
//!
//! Lambda-taking array functions (`FILTER`, `TRANSFORM`, `REDUCE`,
//! `ANY_MATCH`, …) are evaluated in [`crate::exec`] because they need the
//! expression evaluator; everything value-only lives here.

use nested_value::Value;

use crate::error::SqlError;

/// Calls `f` with `name` ASCII-lowercased, using a stack buffer for the
/// common short-name case: function dispatch happens per row in hot query
/// loops, and `to_ascii_lowercase` would heap-allocate on every call.
pub(crate) fn with_lower<R>(name: &str, f: impl FnOnce(&str) -> R) -> R {
    let bytes = name.as_bytes();
    if bytes.len() <= 24 {
        let mut buf = [0u8; 24];
        let b = &mut buf[..bytes.len()];
        b.copy_from_slice(bytes);
        b.make_ascii_lowercase();
        // ASCII-lowercasing bytes cannot break UTF-8 validity.
        f(std::str::from_utf8(b).expect("still valid UTF-8"))
    } else {
        f(&name.to_ascii_lowercase())
    }
}

/// Evaluates a built-in scalar function. Returns `None` when the name is
/// not a known builtin (the caller then tries UDFs).
pub fn eval_builtin(name: &str, args: &[Value]) -> Option<Result<Value, SqlError>> {
    with_lower(name, |lower| eval_builtin_lower(lower, args))
}

fn eval_builtin_lower(lower: &str, args: &[Value]) -> Option<Result<Value, SqlError>> {
    Some(match lower {
        "abs" => unary_numeric(lower, args, f64::abs, Some(|i: i64| i.abs())),
        "sqrt" => unary_numeric(lower, args, f64::sqrt, None),
        "exp" => unary_numeric(lower, args, f64::exp, None),
        "ln" => unary_numeric(lower, args, f64::ln, None),
        "log" | "log10" => unary_numeric(lower, args, f64::log10, None),
        "log2" => unary_numeric(lower, args, f64::log2, None),
        "floor" => unary_numeric(lower, args, f64::floor, Some(|i| i)),
        "ceil" | "ceiling" => unary_numeric(lower, args, f64::ceil, Some(|i| i)),
        "round" => unary_numeric(lower, args, f64::round, Some(|i| i)),
        "sign" => unary_numeric(lower, args, f64::signum, Some(|i: i64| i.signum())),
        "cos" => unary_numeric(lower, args, f64::cos, None),
        "sin" => unary_numeric(lower, args, f64::sin, None),
        "tan" => unary_numeric(lower, args, f64::tan, None),
        "acos" => unary_numeric(lower, args, f64::acos, None),
        "asin" => unary_numeric(lower, args, f64::asin, None),
        "atan" => unary_numeric(lower, args, f64::atan, None),
        "cosh" => unary_numeric(lower, args, f64::cosh, None),
        "sinh" => unary_numeric(lower, args, f64::sinh, None),
        "tanh" => unary_numeric(lower, args, f64::tanh, None),
        "pi" => {
            if args.is_empty() {
                Ok(Value::Float(std::f64::consts::PI))
            } else {
                Err(arity(lower, 0, args.len()))
            }
        }
        "power" | "pow" => binary_numeric(lower, args, f64::powf),
        "atan2" => binary_numeric(lower, args, f64::atan2),
        "mod" => binary_numeric(lower, args, |a, b| a % b),
        "truncate" => unary_numeric(lower, args, f64::trunc, Some(|i| i)),
        "greatest" => fold_numeric(lower, args, f64::max),
        "least" => fold_numeric(lower, args, f64::min),
        "coalesce" => Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        "nullif" => {
            if args.len() != 2 {
                return Some(Err(arity(lower, 2, args.len())));
            }
            match nested_value::ops::sql_eq(&args[0], &args[1]) {
                Ok(Some(true)) => Ok(Value::Null),
                Ok(_) => Ok(args[0].clone()),
                Err(e) => Err(e.into()),
            }
        }
        "if" => {
            if args.len() != 3 {
                return Some(Err(arity(lower, 3, args.len())));
            }
            match &args[0] {
                Value::Bool(true) => Ok(args[1].clone()),
                Value::Null | Value::Bool(false) => Ok(args[2].clone()),
                other => Err(SqlError::Eval(format!(
                    "IF condition must be boolean, found {}",
                    other.type_name()
                ))),
            }
        }
        "cardinality" | "array_length" => match args {
            [Value::Array(a)] => Ok(Value::Int(a.len() as i64)),
            [Value::Null] => Ok(Value::Null),
            _ => Err(SqlError::Eval(format!("{lower} expects one array"))),
        },
        "element_at" => match args {
            [Value::Array(a), Value::Int(i)] => {
                // Presto semantics: 1-based, negative from the end.
                let idx = *i;
                let n = a.len() as i64;
                let pos = if idx > 0 { idx - 1 } else { n + idx };
                if (0..n).contains(&pos) {
                    Ok(a[pos as usize].clone())
                } else {
                    Ok(Value::Null)
                }
            }
            _ => Err(SqlError::Eval("element_at expects (array, index)".into())),
        },
        "concat" | "array_concat" => {
            if args.iter().all(|a| matches!(a, Value::Array(_))) && !args.is_empty() {
                let mut out = Vec::new();
                for a in args {
                    out.extend(a.as_array().expect("checked").iter().cloned());
                }
                Ok(Value::array(out))
            } else if args.iter().all(|a| matches!(a, Value::Str(_))) {
                let mut s = String::new();
                for a in args {
                    s.push_str(a.as_str().expect("checked"));
                }
                Ok(Value::str(s))
            } else {
                Err(SqlError::Eval(
                    "concat expects all arrays or all strings".into(),
                ))
            }
        }
        "array_max" => array_extreme(args, true),
        "array_min" => array_extreme(args, false),
        "combinations" => match args {
            [Value::Array(a), Value::Int(k)] => Ok(combinations(a, *k as usize)),
            _ => Err(SqlError::Eval("combinations expects (array, n)".into())),
        },
        "slice" => match args {
            [Value::Array(a), Value::Int(start), Value::Int(len)] => {
                let s = (*start - 1).max(0) as usize;
                let e = (s + (*len).max(0) as usize).min(a.len());
                Ok(Value::array(a.get(s..e).unwrap_or(&[]).to_vec()))
            }
            _ => Err(SqlError::Eval(
                "slice expects (array, start, length)".into(),
            )),
        },
        _ => return None,
    })
}

/// All `k`-element combinations of `items` preserving order — Presto's
/// `COMBINATIONS(array, n)`.
pub fn combinations(items: &[Value], k: usize) -> Value {
    let n = items.len();
    let mut out = Vec::new();
    if k == 0 || k > n {
        return Value::array(out);
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(Value::array(
            idx.iter().map(|&i| items[i].clone()).collect(),
        ));
        // Advance the last index that can still move.
        let mut i = k;
        loop {
            if i == 0 {
                return Value::array(out);
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

fn arity(name: &str, want: usize, got: usize) -> SqlError {
    SqlError::Eval(format!("{name} expects {want} argument(s), got {got}"))
}

type IntFn = fn(i64) -> i64;

fn unary_numeric(
    name: &str,
    args: &[Value],
    f: fn(f64) -> f64,
    int_f: Option<IntFn>,
) -> Result<Value, SqlError> {
    match args {
        [Value::Null] => Ok(Value::Null),
        [Value::Int(i)] => match int_f {
            Some(g) => Ok(Value::Int(g(*i))),
            None => Ok(Value::Float(f(*i as f64))),
        },
        [Value::Float(x)] => Ok(Value::Float(f(*x))),
        [other] => Err(SqlError::Eval(format!(
            "{name} expects a number, found {}",
            other.type_name()
        ))),
        _ => Err(arity(name, 1, args.len())),
    }
}

fn binary_numeric(name: &str, args: &[Value], f: fn(f64, f64) -> f64) -> Result<Value, SqlError> {
    match args {
        [a, b] => {
            if a.is_null() || b.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Float(f(a.as_f64()?, b.as_f64()?)))
        }
        _ => Err(arity(name, 2, args.len())),
    }
}

fn fold_numeric(name: &str, args: &[Value], f: fn(f64, f64) -> f64) -> Result<Value, SqlError> {
    if args.is_empty() {
        return Err(arity(name, 1, 0));
    }
    if args.iter().any(|a| a.is_null()) {
        return Ok(Value::Null);
    }
    let mut acc = args[0].as_f64()?;
    let all_int = args.iter().all(|a| matches!(a, Value::Int(_)));
    for a in &args[1..] {
        acc = f(acc, a.as_f64()?);
    }
    if all_int {
        Ok(Value::Int(acc as i64))
    } else {
        Ok(Value::Float(acc))
    }
}

fn array_extreme(args: &[Value], max: bool) -> Result<Value, SqlError> {
    match args {
        [Value::Array(a)] => {
            let mut best: Option<&Value> = None;
            for v in a.iter() {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = nested_value::ops::compare(v, b)?;
                        if (max && ord == std::cmp::Ordering::Greater)
                            || (!max && ord == std::cmp::Ordering::Less)
                        {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.cloned().unwrap_or(Value::Null))
        }
        _ => Err(SqlError::Eval("array_max/min expects one array".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(x: f64) -> Value {
        Value::Float(x)
    }

    #[test]
    fn math_builtins() {
        assert_eq!(eval_builtin("SQRT", &[f(9.0)]).unwrap().unwrap(), f(3.0));
        assert_eq!(
            eval_builtin("abs", &[Value::Int(-3)]).unwrap().unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_builtin("POWER", &[f(2.0), f(10.0)]).unwrap().unwrap(),
            f(1024.0)
        );
        assert_eq!(eval_builtin("floor", &[f(2.7)]).unwrap().unwrap(), f(2.0));
        assert!(eval_builtin("nosuchfn", &[]).is_none());
    }

    #[test]
    fn null_propagation() {
        assert_eq!(
            eval_builtin("sqrt", &[Value::Null]).unwrap().unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_builtin("atan2", &[Value::Null, f(1.0)])
                .unwrap()
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_builtin("coalesce", &[Value::Null, f(2.0)])
                .unwrap()
                .unwrap(),
            f(2.0)
        );
    }

    #[test]
    fn cardinality_and_element_at() {
        let arr = Value::array(vec![f(1.0), f(2.0), f(3.0)]);
        assert_eq!(
            eval_builtin("CARDINALITY", std::slice::from_ref(&arr))
                .unwrap()
                .unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_builtin("element_at", &[arr.clone(), Value::Int(1)])
                .unwrap()
                .unwrap(),
            f(1.0)
        );
        assert_eq!(
            eval_builtin("element_at", &[arr.clone(), Value::Int(-1)])
                .unwrap()
                .unwrap(),
            f(3.0)
        );
        assert_eq!(
            eval_builtin("element_at", &[arr, Value::Int(7)])
                .unwrap()
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn combinations_counts() {
        let arr: Vec<Value> = (0..5).map(Value::Int).collect();
        let c3 = combinations(&arr, 3);
        assert_eq!(c3.as_array().unwrap().len(), 10);
        // Each combination is ordered and strictly increasing here.
        for combo in c3.as_array().unwrap() {
            let xs = combo.as_array().unwrap();
            assert!(xs
                .windows(2)
                .all(|w| { w[0].as_i64().unwrap() < w[1].as_i64().unwrap() }));
        }
        assert_eq!(combinations(&arr, 0).as_array().unwrap().len(), 0);
        assert_eq!(combinations(&arr, 6).as_array().unwrap().len(), 0);
        assert_eq!(combinations(&arr, 5).as_array().unwrap().len(), 1);
    }

    #[test]
    fn concat_arrays_and_strings() {
        let a = Value::array(vec![f(1.0)]);
        let b = Value::array(vec![f(2.0)]);
        let c = eval_builtin("CONCAT", &[a, b]).unwrap().unwrap();
        assert_eq!(c.as_array().unwrap().len(), 2);
        let s = eval_builtin("concat", &[Value::str("a"), Value::str("b")])
            .unwrap()
            .unwrap();
        assert_eq!(s.as_str().unwrap(), "ab");
    }

    #[test]
    fn greatest_least() {
        assert_eq!(
            eval_builtin("GREATEST", &[Value::Int(3), Value::Int(7), Value::Int(5)])
                .unwrap()
                .unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            eval_builtin("LEAST", &[f(3.0), f(-1.0)]).unwrap().unwrap(),
            f(-1.0)
        );
    }
}
