//! Abstract syntax tree for the SQL subset.

/// A parsed script: zero or more function definitions followed by one query.
#[derive(Clone, Debug, PartialEq)]
pub struct Script {
    /// `CREATE [TEMP] FUNCTION` statements in order.
    pub functions: Vec<CreateFunction>,
    /// The final query.
    pub query: Query,
}

/// A SQL user-defined function (expression-bodied).
#[derive(Clone, Debug, PartialEq)]
pub struct CreateFunction {
    /// Function name (case-insensitive at call sites).
    pub name: String,
    /// Parameter names and declared types.
    pub params: Vec<(String, TypeName)>,
    /// Declared return type, if given.
    pub returns: Option<TypeName>,
    /// The body expression.
    pub body: Expr,
    /// True when declared with BigQuery's `CREATE TEMP FUNCTION … AS (…)`,
    /// false for Presto's `CREATE FUNCTION … RETURN …`.
    pub bigquery_syntax: bool,
}

/// A query: optional CTEs plus a select body.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// `WITH name AS (…)` definitions, in order (later CTEs may reference
    /// earlier ones).
    pub ctes: Vec<(String, Query)>,
    /// The select statement.
    pub select: Select,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
}

/// One `ORDER BY` item.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderItem {
    /// Sort key.
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

/// A `SELECT … FROM … WHERE … GROUP BY … HAVING …` block.
#[derive(Clone, Debug, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection items.
    pub items: Vec<SelectItem>,
    /// `FROM` relations (comma-joined) with their unnest/join chain.
    pub from: Vec<FromItem>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

/// One projection item.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*` (all columns of all in-scope bindings).
    Wildcard,
    /// `alias.*`.
    QualifiedWildcard(String),
    /// Expression with optional alias. For BigQuery's `SELECT AS STRUCT`,
    /// the select marks `as_struct` on the whole select (see [`Select`]) —
    /// modeled instead as a single struct-typed item by the parser.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A relation in the FROM clause.
#[derive(Clone, Debug, PartialEq)]
pub enum FromItem {
    /// Base table or CTE reference with optional alias.
    Table {
        /// Table / CTE name.
        name: String,
        /// Alias.
        alias: Option<String>,
    },
    /// Parenthesized subquery with alias.
    Subquery {
        /// The inner query.
        query: Box<Query>,
        /// Alias (required).
        alias: String,
    },
    /// `UNNEST(expr)` producing one row per array element.
    Unnest(Unnest),
    /// Explicit join of two from-items.
    Join {
        /// Left input.
        left: Box<FromItem>,
        /// Right input.
        right: Box<FromItem>,
        /// Join kind.
        kind: JoinKind,
        /// `ON` predicate (None for CROSS JOIN).
        on: Option<Expr>,
    },
}

/// Join kinds (the benchmark needs CROSS for unnesting and INNER for
/// CTE-to-CTE recombination).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinKind {
    /// Cartesian product.
    Cross,
    /// Inner join with predicate.
    Inner,
}

/// An `UNNEST` clause.
#[derive(Clone, Debug, PartialEq)]
pub struct Unnest {
    /// The array expression being unnested (may reference preceding
    /// relations — lateral semantics, like all three systems).
    pub expr: Expr,
    /// Alias for the element (whole-struct alias: Athena/BigQuery style),
    /// or the name the Presto column list binds the struct's fields to.
    pub alias: Option<String>,
    /// Presto's `AS t (f1, …, fn [, ord])` column list, exploding struct
    /// fields into columns.
    pub column_aliases: Vec<String>,
    /// `WITH ORDINALITY` (Presto/Athena, 1-based) — the last column alias
    /// names the index.
    pub with_ordinality: bool,
    /// `WITH OFFSET [AS] name` (BigQuery, 0-based).
    pub with_offset: Option<String>,
}

/// A type name in CAST / function signatures.
#[derive(Clone, Debug, PartialEq)]
pub enum TypeName {
    /// 64-bit integer (`BIGINT`, `INT64`, `INTEGER`).
    Int,
    /// Double (`DOUBLE`, `FLOAT64`).
    Float,
    /// `BOOLEAN`.
    Bool,
    /// `VARCHAR` / `STRING`.
    Str,
    /// `ROW(name type, …)` / `STRUCT<name type, …>`.
    Row(Vec<(String, TypeName)>),
    /// `ARRAY(T)` / `ARRAY<T>`.
    Array(Box<TypeName>),
    /// BigQuery `ANY TYPE`.
    Any,
}

/// Scalar expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// NULL literal.
    Null,
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Unqualified or qualified name: `a`, `a.b.c` — resolution decides
    /// which prefix is a binding and which suffixes are field accesses.
    Name(Vec<String>),
    /// Explicit field access on an arbitrary expression: `(e).f`.
    Field(Box<Expr>, String),
    /// Array subscript `a[e]` (Presto, 1-based).
    Index(Box<Expr>, Box<Expr>),
    /// BigQuery `a[OFFSET(e)]` (0-based).
    OffsetIndex(Box<Expr>, Box<Expr>),
    /// Unary operators.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operators.
    Binary(Box<Expr>, BinaryOp, Box<Expr>),
    /// `expr BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// Negated?
        negated: bool,
    },
    /// `expr IN (e1, e2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// Negated?
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull(Box<Expr>, bool),
    /// `CASE WHEN … THEN … [ELSE …] END` (searched form).
    Case {
        /// (condition, result) arms.
        whens: Vec<(Expr, Expr)>,
        /// `ELSE` result.
        else_: Option<Box<Expr>>,
    },
    /// `CAST(e AS type)`.
    Cast(Box<Expr>, TypeName),
    /// Function call (scalar, array, aggregate, or UDF — resolved at
    /// planning). `distinct` applies to aggregates.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `COUNT(DISTINCT x)`.
        distinct: bool,
        /// `ARRAY_AGG(x ORDER BY y [DESC] LIMIT n)` modifiers.
        order_by: Vec<OrderItem>,
        /// LIMIT inside an aggregate call.
        limit: Option<u64>,
    },
    /// `COUNT(*)`.
    CountStar,
    /// Lambda `x -> e` or `(x, y) -> e` (argument of array functions).
    Lambda(Vec<String>, Box<Expr>),
    /// `ROW(e1, …)` — anonymous row (Presto).
    RowCtor(Vec<Expr>),
    /// BigQuery struct constructor: `STRUCT(e [AS name], …)` or
    /// `STRUCT<n1 t1, …>(e1, …)`.
    StructCtor {
        /// Field values with optional names.
        fields: Vec<(Option<String>, Expr)>,
        /// Inline type declaration (names override, values cast).
        declared: Option<Vec<(String, TypeName)>>,
    },
    /// Array literal `ARRAY[e1, …]` / `[e1, …]`.
    ArrayCtor(Vec<Expr>),
    /// Scalar subquery `(SELECT …)`.
    Subquery(Box<Query>),
    /// `EXISTS (SELECT …)`.
    Exists(Box<Query>),
    /// BigQuery `ARRAY(SELECT …)`.
    ArraySubquery(Box<Query>),
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Lte,
    /// `>`
    Gt,
    /// `>=`
    Gte,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `||` (string/array concatenation)
    Concat,
}

impl Expr {
    /// Convenience: a simple (single-segment) name.
    pub fn name(s: &str) -> Expr {
        Expr::Name(vec![s.to_string()])
    }

    /// Walks the expression tree, calling `f` on every node (pre-order).
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Field(e, _)
            | Expr::Unary(_, e)
            | Expr::Cast(e, _)
            | Expr::IsNull(e, _)
            | Expr::Lambda(_, e) => e.walk(f),
            Expr::Index(a, b) | Expr::OffsetIndex(a, b) | Expr::Binary(a, _, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.walk(f);
                lo.walk(f);
                hi.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Case { whens, else_ } => {
                for (c, r) in whens {
                    c.walk(f);
                    r.walk(f);
                }
                if let Some(e) = else_ {
                    e.walk(f);
                }
            }
            Expr::Call { args, order_by, .. } => {
                for a in args {
                    a.walk(f);
                }
                for o in order_by {
                    o.expr.walk(f);
                }
            }
            Expr::RowCtor(es) | Expr::ArrayCtor(es) => {
                for e in es {
                    e.walk(f);
                }
            }
            Expr::StructCtor { fields, .. } => {
                for (_, e) in fields {
                    e.walk(f);
                }
            }
            Expr::Null
            | Expr::Bool(_)
            | Expr::Int(_)
            | Expr::Float(_)
            | Expr::Str(_)
            | Expr::Name(_)
            | Expr::CountStar
            | Expr::Subquery(_)
            | Expr::Exists(_)
            | Expr::ArraySubquery(_) => {}
        }
    }
}
