//! End-to-end SQL tests over a small generated HEP data set.

use std::sync::Arc;

use hep_model::generator::build_dataset;
use hep_model::DatasetSpec;
use nested_value::Value;

use crate::dialect::Dialect;
use crate::engine::{SqlEngine, SqlOptions};
use crate::error::SqlError;

fn dataset() -> (Vec<hep_model::Event>, Arc<nf2_columnar::Table>) {
    let (events, table) = build_dataset(DatasetSpec {
        n_events: 800,
        row_group_size: 128,
        seed: 21,
    });
    (events, Arc::new(table))
}

fn engine(dialect: Dialect, table: Arc<nf2_columnar::Table>) -> SqlEngine {
    let mut e = SqlEngine::new(dialect, SqlOptions::default());
    e.register(table);
    e
}

fn serial_engine(dialect: Dialect, table: Arc<nf2_columnar::Table>) -> SqlEngine {
    let mut e = SqlEngine::new(
        dialect,
        SqlOptions {
            n_threads: 1,
            partition_parallel: false,
            ..SqlOptions::default()
        },
    );
    e.register(table);
    e
}

#[test]
fn count_all_events() {
    let (events, t) = dataset();
    let e = engine(Dialect::presto(), t);
    let out = e.execute("SELECT COUNT(*) FROM events").unwrap();
    assert_eq!(
        out.relation.rows,
        vec![vec![Value::Int(events.len() as i64)]]
    );
    assert!(out.stats.scan.rows > 0);
}

#[test]
fn scalar_projection_and_filter() {
    let (events, t) = dataset();
    let e = engine(Dialect::bigquery(), t);
    let out = e
        .execute("SELECT COUNT(*) FROM events WHERE MET.pt > 20.0")
        .unwrap();
    let expect = events.iter().filter(|e| e.met.pt > 20.0).count() as i64;
    assert_eq!(out.relation.rows[0][0], Value::Int(expect));
}

#[test]
fn unnest_bigquery_offset() {
    let (events, t) = dataset();
    let e = engine(Dialect::bigquery(), t);
    let out = e
        .execute(
            "SELECT COUNT(*) FROM events ev, UNNEST(ev.Jet) AS j WITH OFFSET i \
             WHERE j.pt > 30.0 AND i >= 0",
        )
        .unwrap();
    let expect: i64 = events
        .iter()
        .flat_map(|e| e.jets.iter())
        .filter(|j| j.pt > 30.0)
        .count() as i64;
    assert_eq!(out.relation.rows[0][0], Value::Int(expect));
}

#[test]
fn unnest_presto_ordinality_column_list() {
    let (events, t) = dataset();
    let e = engine(Dialect::presto(), t);
    let out = e
        .execute(
            "SELECT COUNT(*) FROM events CROSS JOIN \
             UNNEST(Muon) WITH ORDINALITY AS m (pt, eta, phi, mass, charge, iso3, iso4, \
             tightId, softId, dxy, dxyErr, dz, dzErr, jetIdx, genPartIdx, idx) \
             WHERE idx = 1",
        )
        .unwrap();
    let expect = events.iter().filter(|e| !e.muons.is_empty()).count() as i64;
    assert_eq!(out.relation.rows[0][0], Value::Int(expect));
}

#[test]
fn unnest_athena_struct_alias() {
    let (events, t) = dataset();
    let e = engine(Dialect::athena(), t);
    let out = e
        .execute("SELECT COUNT(*) FROM events CROSS JOIN UNNEST(Jet) AS j WHERE ABS(j.eta) < 1.0")
        .unwrap();
    let expect = events
        .iter()
        .flat_map(|e| e.jets.iter())
        .filter(|j| j.eta.abs() < 1.0)
        .count() as i64;
    assert_eq!(out.relation.rows[0][0], Value::Int(expect));
}

#[test]
fn correlated_subquery_counts() {
    let (events, t) = dataset();
    let e = engine(Dialect::bigquery(), t);
    let out = e
        .execute(
            "SELECT COUNT(*) FROM events ev WHERE \
             (SELECT COUNT(*) FROM UNNEST(ev.Jet) j WHERE j.pt > 40.0) >= 2",
        )
        .unwrap();
    let expect = events
        .iter()
        .filter(|e| e.jets.iter().filter(|j| j.pt > 40.0).count() >= 2)
        .count() as i64;
    assert_eq!(out.relation.rows[0][0], Value::Int(expect));
}

#[test]
fn array_functions_filter_cardinality() {
    let (events, t) = dataset();
    let e = engine(Dialect::athena(), t);
    let out = e
        .execute(
            "SELECT COUNT(*) FROM events WHERE \
             CARDINALITY(FILTER(Jet, j -> j.pt > 40.0)) >= 2",
        )
        .unwrap();
    let expect = events
        .iter()
        .filter(|e| e.jets.iter().filter(|j| j.pt > 40.0).count() >= 2)
        .count() as i64;
    assert_eq!(out.relation.rows[0][0], Value::Int(expect));
}

#[test]
fn exists_pair_query() {
    let (events, t) = dataset();
    let e = engine(Dialect::bigquery(), t);
    let out = e
        .execute(
            "SELECT COUNT(*) FROM events ev WHERE EXISTS (\
               SELECT 1 FROM UNNEST(ev.Muon) m1 WITH OFFSET i, \
                             UNNEST(ev.Muon) m2 WITH OFFSET j \
               WHERE i < j AND m1.charge != m2.charge)",
        )
        .unwrap();
    let expect = events
        .iter()
        .filter(|e| {
            e.muons
                .iter()
                .enumerate()
                .any(|(i, a)| e.muons[i + 1..].iter().any(|b| a.charge != b.charge))
        })
        .count() as i64;
    assert_eq!(out.relation.rows[0][0], Value::Int(expect));
}

#[test]
fn group_by_histogram_shape() {
    let (events, t) = dataset();
    let e = engine(Dialect::presto(), t);
    let out = e
        .execute(
            "SELECT CAST(FLOOR(MET.pt / 10.0) AS BIGINT) AS bin, COUNT(*) AS n \
             FROM events GROUP BY CAST(FLOOR(MET.pt / 10.0) AS BIGINT)",
        )
        .unwrap();
    let total: i64 = out
        .relation
        .rows
        .iter()
        .map(|r| r[1].as_i64().unwrap())
        .sum();
    assert_eq!(total, events.len() as i64);
}

#[test]
fn group_by_alias_bigquery_only() {
    let (_, t) = dataset();
    let sql = "SELECT CAST(FLOOR(MET.pt / 10.0) AS INT64) AS bin, COUNT(*) AS n \
               FROM events GROUP BY bin";
    let bq = engine(Dialect::bigquery(), t.clone());
    assert!(bq.execute(sql).is_ok());
    let presto = engine(Dialect::presto(), t);
    // Presto cannot resolve the alias: `bin` is not a column.
    assert!(matches!(presto.execute(sql), Err(SqlError::Unresolved(_))));
}

#[test]
fn cte_chain_and_join() {
    let (events, t) = dataset();
    let e = serial_engine(Dialect::presto(), t);
    let out = e
        .execute(
            "WITH base AS (SELECT event AS eid, MET.pt AS met FROM events), \
                  big AS (SELECT eid FROM base WHERE met > 25.0) \
             SELECT COUNT(*) FROM base INNER JOIN big ON base.eid = big.eid",
        )
        .unwrap();
    let expect = events.iter().filter(|e| e.met.pt > 25.0).count() as i64;
    assert_eq!(out.relation.rows[0][0], Value::Int(expect));
}

#[test]
fn min_by_per_event() {
    let (events, t) = dataset();
    let e = serial_engine(Dialect::athena(), t);
    // Jet with mass closest to 20 GeV per event, then count events with one.
    let out = e
        .execute(
            "WITH cand AS (\
               SELECT event AS eid, MIN_BY(j.pt, ABS(j.mass - 20.0)) AS best_pt \
               FROM events CROSS JOIN UNNEST(Jet) AS j GROUP BY event) \
             SELECT COUNT(*) FROM cand WHERE best_pt IS NOT NULL",
        )
        .unwrap();
    let expect = events.iter().filter(|e| !e.jets.is_empty()).count() as i64;
    assert_eq!(out.relation.rows[0][0], Value::Int(expect));
}

#[test]
fn udf_struct_params() {
    let (events, t) = dataset();
    let e = engine(Dialect::bigquery(), t);
    let out = e
        .execute(
            "CREATE TEMP FUNCTION JetE(j STRUCT<pt FLOAT64, eta FLOAT64>) AS (\
               j.pt * COSH(j.eta));\
             SELECT COUNT(*) FROM events ev, UNNEST(ev.Jet) j \
             WHERE JetE(STRUCT(j.pt, j.eta)) > 100.0",
        )
        .unwrap();
    let expect = events
        .iter()
        .flat_map(|e| e.jets.iter())
        .filter(|j| j.pt * j.eta.cosh() > 100.0)
        .count() as i64;
    assert_eq!(out.relation.rows[0][0], Value::Int(expect));
}

#[test]
fn presto_udf_and_row_cast() {
    let (_, t) = dataset();
    let e = engine(Dialect::presto(), t);
    let out = e
        .execute(
            "CREATE FUNCTION double_pt(x DOUBLE) RETURNS DOUBLE RETURN x * 2;\
             SELECT COUNT(*) FROM events CROSS JOIN \
             UNNEST(Jet) AS j (jpt, jeta, jphi, jmass, jbtag, jpuId) \
             WHERE CAST(ROW(jpt, jeta) AS ROW(pt DOUBLE, eta DOUBLE)).pt \
                   = jpt AND double_pt(jpt) > 60.0",
        )
        .unwrap();
    assert!(out.relation.rows[0][0].as_i64().unwrap() >= 0);
}

#[test]
fn transform_reduce_pipeline() {
    let (events, t) = dataset();
    let e = engine(Dialect::presto(), t);
    let out = e
        .execute(
            "SELECT CAST(SUM(s) AS BIGINT) FROM (\
               SELECT REDUCE(FILTER(Jet, j -> j.pt > 30.0), 0.0, \
                             (acc, j) -> acc + 1.0, acc -> acc) AS s \
               FROM events) t",
        )
        .unwrap();
    let expect: i64 = events
        .iter()
        .map(|e| e.jets.iter().filter(|j| j.pt > 30.0).count() as i64)
        .sum();
    assert_eq!(out.relation.rows[0][0], Value::Int(expect));
}

#[test]
fn combinations_function_counts() {
    let (events, t) = dataset();
    let e = engine(Dialect::presto(), t);
    let out = e
        .execute("SELECT CAST(SUM(CARDINALITY(COMBINATIONS(Jet, 3))) AS BIGINT) FROM events")
        .unwrap();
    let c3 = |k: usize| (k * k.saturating_sub(1) * k.saturating_sub(2) / 6) as i64;
    let expect: i64 = events.iter().map(|e| c3(e.jets.len())).sum();
    assert_eq!(out.relation.rows[0][0], Value::Int(expect));
}

#[test]
fn array_subquery_bigquery() {
    let (events, t) = dataset();
    let e = engine(Dialect::bigquery(), t);
    let out = e
        .execute(
            "SELECT COUNT(*) FROM events ev WHERE \
             ARRAY_LENGTH(ARRAY(SELECT j.pt FROM UNNEST(ev.Jet) j WHERE j.pt > 40.0)) >= 2",
        )
        .unwrap();
    let expect = events
        .iter()
        .filter(|e| e.jets.iter().filter(|j| j.pt > 40.0).count() >= 2)
        .count() as i64;
    assert_eq!(out.relation.rows[0][0], Value::Int(expect));
}

#[test]
fn order_by_limit_in_subquery() {
    let (events, t) = dataset();
    let e = engine(Dialect::bigquery(), t);
    let out = e
        .execute(
            "SELECT CAST(SUM(lead) AS INT64) FROM (\
               SELECT (SELECT j.pt FROM UNNEST(ev.Jet) j ORDER BY j.pt DESC LIMIT 1) AS lead \
               FROM events ev WHERE ARRAY_LENGTH(ev.Jet) > 0) t",
        )
        .unwrap();
    let expect: f64 = events
        .iter()
        .filter(|e| !e.jets.is_empty())
        .map(|e| e.jets.iter().map(|j| j.pt).fold(f64::MIN, f64::max))
        .sum();
    assert_eq!(out.relation.rows[0][0], Value::Int(expect as i64));
}

#[test]
fn parallel_matches_serial() {
    let (_, t) = dataset();
    let sql = "SELECT CAST(FLOOR(MET.pt / 5.0) AS BIGINT) AS bin, COUNT(*) AS n \
               FROM events GROUP BY CAST(FLOOR(MET.pt / 5.0) AS BIGINT) ORDER BY bin";
    let par = engine(Dialect::presto(), t.clone()).execute(sql).unwrap();
    let ser = serial_engine(Dialect::presto(), t).execute(sql).unwrap();
    assert_eq!(par.relation.cols, ser.relation.cols);
    assert_eq!(par.relation.rows, ser.relation.rows);
}

#[test]
fn pushdown_changes_bytes_scanned_between_dialects() {
    let (_, t) = dataset();
    let sql = "SELECT COUNT(*) FROM events WHERE MET.pt > 20.0";
    let bq = engine(Dialect::bigquery(), t.clone()).execute(sql).unwrap();
    let presto = engine(Dialect::presto(), t).execute(sql).unwrap();
    // Presto reads the whole MET struct; BigQuery reads MET.pt only.
    assert!(presto.stats.scan.bytes_scanned > bq.stats.scan.bytes_scanned);
    assert_eq!(
        presto.stats.scan.ideal_compressed_bytes,
        bq.stats.scan.ideal_compressed_bytes
    );
}

#[test]
fn distinct_and_in_list() {
    let (_, t) = dataset();
    let e = serial_engine(Dialect::athena(), t);
    let out = e
        .execute(
            "SELECT DISTINCT m.charge FROM events CROSS JOIN UNNEST(Muon) AS m \
             WHERE m.charge IN (-1, 1)",
        )
        .unwrap();
    let mut charges: Vec<i64> = out
        .relation
        .rows
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect();
    charges.sort_unstable();
    assert_eq!(charges, vec![-1, 1]);
}

#[test]
fn error_on_unknown_table_and_column() {
    let (_, t) = dataset();
    let e = engine(Dialect::presto(), t);
    assert!(matches!(
        e.execute("SELECT COUNT(*) FROM nonexistent"),
        Err(SqlError::Unresolved(_))
    ));
    assert!(e.execute("SELECT nope FROM events").is_err());
}

#[test]
fn between_and_case() {
    let (events, t) = dataset();
    let e = engine(Dialect::athena(), t);
    let out = e
        .execute(
            "SELECT CAST(SUM(CASE WHEN MET.pt BETWEEN 10.0 AND 30.0 THEN 1 ELSE 0 END) AS BIGINT) \
             FROM events",
        )
        .unwrap();
    let expect = events
        .iter()
        .filter(|e| (10.0..=30.0).contains(&e.met.pt))
        .count() as i64;
    assert_eq!(out.relation.rows[0][0], Value::Int(expect));
}

#[test]
fn zone_map_pruning_skips_groups_and_preserves_results() {
    let (events, t) = dataset();
    // Highly selective scalar predicate: most row groups have no event
    // with MET above the 99.9th percentile.
    let mut mets: Vec<f64> = events.iter().map(|e| e.met.pt).collect();
    mets.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let cut = mets[mets.len() - 3];
    let sql = format!("SELECT COUNT(*) FROM events WHERE MET.pt > {cut}");
    let expect = events.iter().filter(|e| e.met.pt > cut).count() as i64;

    let pruned = engine(Dialect::presto(), t.clone()).execute(&sql).unwrap();
    let mut no_prune_engine = SqlEngine::new(
        Dialect::presto(),
        SqlOptions {
            zone_map_pruning: false,
            ..SqlOptions::default()
        },
    );
    no_prune_engine.register(t);
    let unpruned = no_prune_engine.execute(&sql).unwrap();

    assert_eq!(pruned.relation.rows[0][0], Value::Int(expect));
    assert_eq!(unpruned.relation.rows[0][0], Value::Int(expect));
    assert!(pruned.stats.row_groups_skipped > 0, "nothing was pruned");
    assert_eq!(unpruned.stats.row_groups_skipped, 0);
    assert!(pruned.stats.scan.bytes_scanned < unpruned.stats.scan.bytes_scanned);
    assert!(pruned.stats.scan.rows < unpruned.stats.scan.rows);
}

#[test]
fn zone_map_pruning_is_conservative_for_shared_tables() {
    let (events, t) = dataset();
    // The same table feeds a CTE and the root query; pruning must not
    // apply (the CTE needs all rows), and results must stay correct.
    let sql = "WITH total AS (SELECT COUNT(*) AS n FROM events) \
               SELECT COUNT(*) FROM events WHERE MET.pt > 1000.0";
    let out = engine(Dialect::presto(), t).execute(sql).unwrap();
    assert_eq!(out.stats.row_groups_skipped, 0);
    let expect = events.iter().filter(|e| e.met.pt > 1000.0).count() as i64;
    assert_eq!(out.relation.rows[0][0], Value::Int(expect));
}
