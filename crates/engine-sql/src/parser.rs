//! Recursive-descent parser for the SQL subset.
//!
//! The parser accepts the **union** of the three dialects' syntaxes
//! (BigQuery `STRUCT<…>(…)`/`WITH OFFSET`, Presto `CAST(ROW(…) AS ROW(…))`/
//! `WITH ORDINALITY`, Athena's whole-struct unnest aliases); dialect
//! *capability* enforcement happens at plan time ([`crate::dialect`]), so a
//! query can be parsed once and validated against each system profile —
//! exactly how the paper's Table 1 was assembled.

use crate::ast::*;
use crate::error::SqlError;
use crate::token::{tokenize, Token};

/// Parses a full script (UDF definitions + one query).
pub fn parse_script(sql: &str) -> Result<Script, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut functions = Vec::new();
    while p.peek_kw("CREATE") {
        functions.push(p.create_function()?);
        p.eat_punct(";")?;
    }
    let query = p.query()?;
    if p.peek_punct(";") {
        p.bump();
    }
    if p.pos != p.tokens.len() {
        return Err(SqlError::Parse(format!(
            "trailing tokens starting at {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(Script { functions, query })
}

/// Parses a single query (no UDFs).
pub fn parse_query(sql: &str) -> Result<Query, SqlError> {
    let script = parse_script(sql)?;
    if !script.functions.is_empty() {
        return Err(SqlError::Parse("unexpected function definitions".into()));
    }
    Ok(script.query)
}

/// Parses a standalone scalar expression (used in tests and by the UDF
/// machinery).
pub fn parse_expr(sql: &str) -> Result<Expr, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(SqlError::Parse("trailing tokens after expression".into()));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&Token> {
        self.tokens.get(self.pos + off)
    }

    fn bump(&mut self) -> &Token {
        let t = &self.tokens[self.pos];
        self.pos += 1;
        t
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn peek_kw_at(&self, off: usize, kw: &str) -> bool {
        self.peek_at(off).is_some_and(|t| t.is_kw(kw))
    }

    fn peek_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(p))
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.peek_kw(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), SqlError> {
        if self.peek_punct(p) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {p:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn accept_punct(&mut self, p: &str) -> bool {
        if self.peek_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(Token::QuotedIdent(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // ---------------- statements ----------------

    fn create_function(&mut self) -> Result<CreateFunction, SqlError> {
        self.eat_kw("CREATE")?;
        if self.accept_kw("OR") {
            self.eat_kw("REPLACE")?;
        }
        let _temp = self.accept_kw("TEMP") || self.accept_kw("TEMPORARY");
        self.eat_kw("FUNCTION")?;
        let name = self.ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.peek_punct(")") {
            loop {
                let pname = self.ident()?;
                let ptype = self.type_name()?;
                params.push((pname, ptype));
                if !self.accept_punct(",") {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        let mut returns = None;
        if self.accept_kw("RETURNS") {
            returns = Some(self.type_name()?);
        }
        if self.accept_kw("AS") {
            // BigQuery: AS ( expr )
            self.eat_punct("(")?;
            let body = self.expr()?;
            self.eat_punct(")")?;
            Ok(CreateFunction {
                name,
                params,
                returns,
                body,
                bigquery_syntax: true,
            })
        } else if self.accept_kw("RETURN") {
            // Presto: RETURN expr
            let body = self.expr()?;
            Ok(CreateFunction {
                name,
                params,
                returns,
                body,
                bigquery_syntax: false,
            })
        } else {
            Err(SqlError::Parse("expected AS (…) or RETURN …".into()))
        }
    }

    // ---------------- queries ----------------

    fn query(&mut self) -> Result<Query, SqlError> {
        let mut ctes = Vec::new();
        if self.accept_kw("WITH") {
            loop {
                let name = self.ident()?;
                self.eat_kw("AS")?;
                self.eat_punct("(")?;
                let q = self.query()?;
                self.eat_punct(")")?;
                ctes.push((name, q));
                if !self.accept_punct(",") {
                    break;
                }
            }
        }
        let select = self.select()?;
        let mut order_by = Vec::new();
        if self.accept_kw("ORDER") {
            self.eat_kw("BY")?;
            order_by = self.order_items()?;
        }
        let mut limit = None;
        if self.accept_kw("LIMIT") {
            limit = Some(self.number_u64()?);
        }
        Ok(Query {
            ctes,
            select,
            order_by,
            limit,
        })
    }

    fn order_items(&mut self) -> Result<Vec<OrderItem>, SqlError> {
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let desc = if self.accept_kw("DESC") {
                true
            } else {
                self.accept_kw("ASC");
                false
            };
            items.push(OrderItem { expr, desc });
            if !self.accept_punct(",") {
                break;
            }
        }
        Ok(items)
    }

    fn number_u64(&mut self) -> Result<u64, SqlError> {
        match self.peek() {
            Some(Token::Number(n)) => {
                let v = n
                    .parse::<u64>()
                    .map_err(|_| SqlError::Parse(format!("bad integer {n}")))?;
                self.pos += 1;
                Ok(v)
            }
            other => Err(SqlError::Parse(format!(
                "expected integer, found {other:?}"
            ))),
        }
    }

    fn select(&mut self) -> Result<Select, SqlError> {
        self.eat_kw("SELECT")?;
        let distinct = self.accept_kw("DISTINCT");
        // BigQuery's `SELECT AS STRUCT …` (subquery producing one struct).
        let as_struct = if self.peek_kw("AS") && self.peek_kw_at(1, "STRUCT") {
            self.bump();
            self.bump();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.accept_punct(",") {
                break;
            }
        }
        if as_struct {
            // Desugar: SELECT AS STRUCT a, b AS y  ⇒  one STRUCT(…) item.
            let fields = items
                .into_iter()
                .map(|it| match it {
                    SelectItem::Expr { expr, alias } => {
                        let name = alias.or_else(|| implied_name(&expr));
                        Ok((name, expr))
                    }
                    _ => Err(SqlError::Parse(
                        "wildcard not supported in SELECT AS STRUCT".into(),
                    )),
                })
                .collect::<Result<Vec<_>, _>>()?;
            items = vec![SelectItem::Expr {
                expr: Expr::StructCtor {
                    fields,
                    declared: None,
                },
                alias: None,
            }];
        }
        let mut from = Vec::new();
        if self.accept_kw("FROM") {
            loop {
                from.push(self.parse_from_item()?);
                if !self.accept_punct(",") {
                    break;
                }
            }
        }
        let where_clause = if self.accept_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.accept_kw("GROUP") {
            self.eat_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.accept_punct(",") {
                    break;
                }
            }
        }
        let having = if self.accept_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.accept_punct("*") {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* lookahead.
        if let (Some(Token::Ident(name)), Some(t1), Some(t2)) =
            (self.peek(), self.peek_at(1), self.peek_at(2))
        {
            if t1.is_punct(".") && t2.is_punct("*") {
                let name = name.clone();
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.expr()?;
        let alias = if self.accept_kw("AS")
            || matches!(self.peek(), Some(Token::Ident(s)) if !is_reserved(s))
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from_item(&mut self) -> Result<FromItem, SqlError> {
        let mut item = self.parse_from_primary()?;
        loop {
            if self.peek_kw("CROSS") {
                self.bump();
                self.eat_kw("JOIN")?;
                let right = self.parse_from_primary()?;
                item = FromItem::Join {
                    left: Box::new(item),
                    right: Box::new(right),
                    kind: JoinKind::Cross,
                    on: None,
                };
            } else if self.peek_kw("INNER") || self.peek_kw("JOIN") {
                self.accept_kw("INNER");
                self.eat_kw("JOIN")?;
                let right = self.parse_from_primary()?;
                self.eat_kw("ON")?;
                let on = self.expr()?;
                item = FromItem::Join {
                    left: Box::new(item),
                    right: Box::new(right),
                    kind: JoinKind::Inner,
                    on: Some(on),
                };
            } else {
                break;
            }
        }
        Ok(item)
    }

    fn parse_from_primary(&mut self) -> Result<FromItem, SqlError> {
        if self.peek_kw("UNNEST") {
            return Ok(FromItem::Unnest(self.unnest()?));
        }
        if self.accept_punct("(") {
            let query = self.query()?;
            self.eat_punct(")")?;
            self.accept_kw("AS");
            let alias = self.ident()?;
            return Ok(FromItem::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = if self.accept_kw("AS")
            || matches!(self.peek(), Some(Token::Ident(s)) if !is_reserved(s))
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(FromItem::Table { name, alias })
    }

    fn unnest(&mut self) -> Result<Unnest, SqlError> {
        self.eat_kw("UNNEST")?;
        self.eat_punct("(")?;
        let expr = self.expr()?;
        self.eat_punct(")")?;
        // Presto order: UNNEST(x) WITH ORDINALITY AS t (a, b, i)
        let mut with_ordinality = false;
        if self.peek_kw("WITH") && self.peek_kw_at(1, "ORDINALITY") {
            self.bump();
            self.bump();
            with_ordinality = true;
        }
        let mut alias = None;
        let mut column_aliases = Vec::new();
        let has_as = self.accept_kw("AS");
        if has_as || matches!(self.peek(), Some(Token::Ident(s)) if !is_reserved(s)) {
            alias = Some(self.ident()?);
            if self.accept_punct("(") {
                loop {
                    column_aliases.push(self.ident()?);
                    if !self.accept_punct(",") {
                        break;
                    }
                }
                self.eat_punct(")")?;
            }
        }
        // BigQuery order: UNNEST(x) AS a WITH OFFSET [AS] i
        let mut with_offset = None;
        if self.peek_kw("WITH") && self.peek_kw_at(1, "OFFSET") {
            self.bump();
            self.bump();
            self.accept_kw("AS");
            with_offset = Some(self.ident()?);
        }
        Ok(Unnest {
            expr,
            alias,
            column_aliases,
            with_ordinality,
            with_offset,
        })
    }

    // ---------------- types ----------------

    fn type_name(&mut self) -> Result<TypeName, SqlError> {
        let name = self.ident()?;
        let upper = name.to_ascii_uppercase();
        Ok(match upper.as_str() {
            "BIGINT" | "INT64" | "INTEGER" | "INT" => TypeName::Int,
            "DOUBLE" | "FLOAT64" | "REAL" | "FLOAT" => TypeName::Float,
            "BOOLEAN" | "BOOL" => TypeName::Bool,
            "VARCHAR" | "STRING" => TypeName::Str,
            "ANY" => {
                self.eat_kw("TYPE")?;
                TypeName::Any
            }
            "ROW" => {
                self.eat_punct("(")?;
                let mut fields = Vec::new();
                loop {
                    let fname = self.ident()?;
                    let ftype = self.type_name()?;
                    fields.push((fname, ftype));
                    if !self.accept_punct(",") {
                        break;
                    }
                }
                self.eat_punct(")")?;
                TypeName::Row(fields)
            }
            "STRUCT" => {
                self.eat_punct("<")?;
                let mut fields = Vec::new();
                loop {
                    let fname = self.ident()?;
                    let ftype = self.type_name()?;
                    fields.push((fname, ftype));
                    if !self.accept_punct(",") {
                        break;
                    }
                }
                self.eat_punct(">")?;
                TypeName::Row(fields)
            }
            "ARRAY" => {
                if self.accept_punct("(") {
                    let inner = self.type_name()?;
                    self.eat_punct(")")?;
                    TypeName::Array(Box::new(inner))
                } else {
                    self.eat_punct("<")?;
                    let inner = self.type_name()?;
                    self.eat_punct(">")?;
                    TypeName::Array(Box::new(inner))
                }
            }
            other => return Err(SqlError::Parse(format!("unknown type {other}"))),
        })
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<Expr, SqlError> {
        // Lambda lookahead: `x ->` or `(x, y) ->`.
        if let Some(Token::Ident(s)) = self.peek() {
            if !is_reserved(s) && self.peek_at(1).is_some_and(|t| t.is_punct("->")) {
                let param = self.ident()?;
                self.eat_punct("->")?;
                let body = self.expr()?;
                return Ok(Expr::Lambda(vec![param], Box::new(body)));
            }
        }
        if self.peek_punct("(") {
            // Try (x, y) -> …
            if let Some(params) = self.try_lambda_params() {
                let body = self.expr()?;
                return Ok(Expr::Lambda(params, Box::new(body)));
            }
        }
        self.or_expr()
    }

    /// If the cursor is at `(id, id, …) ->`, consume through `->` and return
    /// the parameter names; otherwise leave the cursor unchanged.
    fn try_lambda_params(&mut self) -> Option<Vec<String>> {
        let start = self.pos;
        let mut params = Vec::new();
        if !self.accept_punct("(") {
            return None;
        }
        loop {
            match self.peek() {
                Some(Token::Ident(s)) if !is_reserved(s) => {
                    params.push(s.clone());
                    self.pos += 1;
                }
                _ => {
                    self.pos = start;
                    return None;
                }
            }
            if self.accept_punct(",") {
                continue;
            }
            break;
        }
        if self.accept_punct(")") && self.accept_punct("->") {
            Some(params)
        } else {
            self.pos = start;
            None
        }
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.and_expr()?;
        while self.accept_kw("OR") {
            let r = self.and_expr()?;
            e = Expr::Binary(Box::new(e), BinaryOp::Or, Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.not_expr()?;
        while self.accept_kw("AND") {
            let r = self.not_expr()?;
            e = Expr::Binary(Box::new(e), BinaryOp::And, Box::new(r));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.accept_kw("NOT") {
            let e = self.not_expr()?;
            Ok(Expr::Unary(UnaryOp::Not, Box::new(e)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, SqlError> {
        let e = self.additive()?;
        // IS [NOT] NULL
        if self.peek_kw("IS") {
            self.bump();
            let negated = self.accept_kw("NOT");
            self.eat_kw("NULL")?;
            return Ok(Expr::IsNull(Box::new(e), negated));
        }
        // [NOT] BETWEEN / [NOT] IN
        let negated =
            if self.peek_kw("NOT") && (self.peek_kw_at(1, "BETWEEN") || self.peek_kw_at(1, "IN")) {
                self.bump();
                true
            } else {
                false
            };
        if self.accept_kw("BETWEEN") {
            let lo = self.additive()?;
            self.eat_kw("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(e),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.accept_kw("IN") {
            self.eat_punct("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.accept_punct(",") {
                    break;
                }
            }
            self.eat_punct(")")?;
            return Ok(Expr::InList {
                expr: Box::new(e),
                list,
                negated,
            });
        }
        let op = if self.accept_punct("=") {
            BinaryOp::Eq
        } else if self.accept_punct("!=") || self.accept_punct("<>") {
            BinaryOp::Neq
        } else if self.accept_punct("<=") {
            BinaryOp::Lte
        } else if self.accept_punct(">=") {
            BinaryOp::Gte
        } else if self.accept_punct("<") {
            BinaryOp::Lt
        } else if self.accept_punct(">") {
            BinaryOp::Gt
        } else {
            return Ok(e);
        };
        let r = self.additive()?;
        Ok(Expr::Binary(Box::new(e), op, Box::new(r)))
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = if self.accept_punct("+") {
                BinaryOp::Add
            } else if self.accept_punct("-") {
                BinaryOp::Sub
            } else if self.accept_punct("||") {
                BinaryOp::Concat
            } else {
                break;
            };
            let r = self.multiplicative()?;
            e = Expr::Binary(Box::new(e), op, Box::new(r));
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.unary()?;
        loop {
            let op = if self.accept_punct("*") {
                BinaryOp::Mul
            } else if self.accept_punct("/") {
                BinaryOp::Div
            } else if self.accept_punct("%") {
                BinaryOp::Mod
            } else {
                break;
            };
            let r = self.unary()?;
            e = Expr::Binary(Box::new(e), op, Box::new(r));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.accept_punct("-") {
            let e = self.unary()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(e)));
        }
        if self.accept_punct("+") {
            return self.unary();
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.primary()?;
        loop {
            if self.accept_punct(".") {
                let field = self.ident()?;
                // Fold name chains so the resolver can decide binding vs
                // field (a.b.c stays one Name until a non-Name base occurs).
                e = match e {
                    Expr::Name(mut parts) => {
                        parts.push(field);
                        Expr::Name(parts)
                    }
                    other => Expr::Field(Box::new(other), field),
                };
            } else if self.accept_punct("[") {
                // BigQuery a[OFFSET(i)] vs Presto a[i].
                if self.peek_kw("OFFSET") {
                    self.bump();
                    self.eat_punct("(")?;
                    let idx = self.expr()?;
                    self.eat_punct(")")?;
                    self.eat_punct("]")?;
                    e = Expr::OffsetIndex(Box::new(e), Box::new(idx));
                } else {
                    let idx = self.expr()?;
                    self.eat_punct("]")?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    n.parse::<f64>()
                        .map(Expr::Float)
                        .map_err(|_| SqlError::Parse(format!("bad number {n}")))
                } else {
                    n.parse::<i64>()
                        .map(Expr::Int)
                        .map_err(|_| SqlError::Parse(format!("bad integer {n}")))
                }
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Some(Token::Punct("(")) => {
                self.bump();
                // Subquery?
                if self.peek_kw("SELECT") || self.peek_kw("WITH") {
                    let q = self.query()?;
                    self.eat_punct(")")?;
                    return Ok(Expr::Subquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            Some(Token::QuotedIdent(_)) | Some(Token::Ident(_)) => self.ident_led(),
            other => Err(SqlError::Parse(format!("unexpected token {other:?}"))),
        }
    }

    fn ident_led(&mut self) -> Result<Expr, SqlError> {
        let name = self.ident()?;
        let upper = name.to_ascii_uppercase();
        match upper.as_str() {
            "NULL" => Ok(Expr::Null),
            "TRUE" => Ok(Expr::Bool(true)),
            "FALSE" => Ok(Expr::Bool(false)),
            "CASE" => self.case_expr(),
            "CAST" => {
                self.eat_punct("(")?;
                let e = self.expr()?;
                self.eat_kw("AS")?;
                let t = self.type_name()?;
                self.eat_punct(")")?;
                Ok(Expr::Cast(Box::new(e), t))
            }
            "EXISTS" => {
                self.eat_punct("(")?;
                let q = self.query()?;
                self.eat_punct(")")?;
                Ok(Expr::Exists(Box::new(q)))
            }
            "ROW" if self.peek_punct("(") => {
                self.bump();
                let mut es = Vec::new();
                if !self.peek_punct(")") {
                    loop {
                        es.push(self.expr()?);
                        if !self.accept_punct(",") {
                            break;
                        }
                    }
                }
                self.eat_punct(")")?;
                Ok(Expr::RowCtor(es))
            }
            "STRUCT" => self.struct_ctor(),
            "ARRAY" => {
                if self.accept_punct("[") {
                    let mut es = Vec::new();
                    if !self.peek_punct("]") {
                        loop {
                            es.push(self.expr()?);
                            if !self.accept_punct(",") {
                                break;
                            }
                        }
                    }
                    self.eat_punct("]")?;
                    Ok(Expr::ArrayCtor(es))
                } else if self.accept_punct("(") {
                    if self.peek_kw("SELECT") || self.peek_kw("WITH") {
                        let q = self.query()?;
                        self.eat_punct(")")?;
                        Ok(Expr::ArraySubquery(Box::new(q)))
                    } else {
                        // ARRAY(expr, …) is not a form we accept.
                        Err(SqlError::Parse("expected subquery after ARRAY(".into()))
                    }
                } else {
                    Err(SqlError::Parse("expected [ or ( after ARRAY".into()))
                }
            }
            "COUNT" if self.peek_punct("(") && self.peek_at(1).is_some_and(|t| t.is_punct("*")) => {
                self.bump();
                self.bump();
                self.eat_punct(")")?;
                Ok(Expr::CountStar)
            }
            _ if self.peek_punct("(") => {
                // Generic function call.
                self.bump();
                let distinct = self.accept_kw("DISTINCT");
                let mut args = Vec::new();
                if !self.peek_punct(")") && !self.peek_kw("ORDER") && !self.peek_kw("LIMIT") {
                    loop {
                        args.push(self.expr()?);
                        if !self.accept_punct(",") {
                            break;
                        }
                    }
                }
                let mut order_by = Vec::new();
                if self.accept_kw("ORDER") {
                    self.eat_kw("BY")?;
                    order_by = self.order_items()?;
                }
                let mut limit = None;
                if self.accept_kw("LIMIT") {
                    limit = Some(self.number_u64()?);
                }
                self.eat_punct(")")?;
                Ok(Expr::Call {
                    name,
                    args,
                    distinct,
                    order_by,
                    limit,
                })
            }
            _ => Ok(Expr::Name(vec![name])),
        }
    }

    fn case_expr(&mut self) -> Result<Expr, SqlError> {
        let mut whens = Vec::new();
        while self.accept_kw("WHEN") {
            let c = self.expr()?;
            self.eat_kw("THEN")?;
            let r = self.expr()?;
            whens.push((c, r));
        }
        if whens.is_empty() {
            return Err(SqlError::Parse("CASE requires at least one WHEN".into()));
        }
        let else_ = if self.accept_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.eat_kw("END")?;
        Ok(Expr::Case { whens, else_ })
    }

    fn struct_ctor(&mut self) -> Result<Expr, SqlError> {
        // STRUCT<name type, …>(values…)  or  STRUCT(v [AS name], …)
        if self.accept_punct("<") {
            let mut decls = Vec::new();
            loop {
                let fname = self.ident()?;
                let ftype = self.type_name()?;
                decls.push((fname, ftype));
                if !self.accept_punct(",") {
                    break;
                }
            }
            self.eat_punct(">")?;
            self.eat_punct("(")?;
            let mut values = Vec::new();
            if !self.peek_punct(")") {
                loop {
                    values.push(self.expr()?);
                    if !self.accept_punct(",") {
                        break;
                    }
                }
            }
            self.eat_punct(")")?;
            if values.len() != decls.len() {
                return Err(SqlError::Parse(format!(
                    "STRUCT<> declared {} fields but got {} values",
                    decls.len(),
                    values.len()
                )));
            }
            let fields = values.into_iter().map(|v| (None, v)).collect();
            Ok(Expr::StructCtor {
                fields,
                declared: Some(decls),
            })
        } else {
            self.eat_punct("(")?;
            let mut fields = Vec::new();
            if !self.peek_punct(")") {
                loop {
                    let e = self.expr()?;
                    let name = if self.accept_kw("AS") {
                        Some(self.ident()?)
                    } else {
                        implied_name(&e)
                    };
                    fields.push((name, e));
                    if !self.accept_punct(",") {
                        break;
                    }
                }
            }
            self.eat_punct(")")?;
            Ok(Expr::StructCtor {
                fields,
                declared: None,
            })
        }
    }
}

/// The field name a bare expression implies in struct contexts
/// (`STRUCT(a.x)` has field `x`).
fn implied_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Name(parts) => parts.last().cloned(),
        Expr::Field(_, f) => Some(f.clone()),
        _ => None,
    }
}

/// Keywords that terminate an implicit alias position.
fn is_reserved(s: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "LIMIT",
        "AS",
        "ON",
        "AND",
        "OR",
        "NOT",
        "JOIN",
        "CROSS",
        "INNER",
        "UNNEST",
        "WITH",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "BETWEEN",
        "IN",
        "IS",
        "NULL",
        "TRUE",
        "FALSE",
        "CAST",
        "EXISTS",
        "DISTINCT",
        "CREATE",
        "TEMP",
        "TEMPORARY",
        "FUNCTION",
        "RETURNS",
        "RETURN",
        "REPLACE",
        "OFFSET",
        "ORDINALITY",
        "DESC",
        "ASC",
        "STRUCT",
        "ARRAY",
        "ROW",
        "UNION",
        "ALL",
    ];
    RESERVED.iter().any(|r| s.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse_query("SELECT MET.pt AS x FROM events WHERE x > 10").unwrap();
        assert_eq!(q.select.items.len(), 1);
        assert!(q.select.where_clause.is_some());
        match &q.select.from[0] {
            FromItem::Table { name, .. } => assert_eq!(name, "events"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ctes_and_group_by() {
        let q = parse_query(
            "WITH a AS (SELECT 1 AS x), b AS (SELECT x FROM a) \
             SELECT x, COUNT(*) FROM b GROUP BY x HAVING COUNT(*) > 0 ORDER BY x DESC LIMIT 5",
        )
        .unwrap();
        assert_eq!(q.ctes.len(), 2);
        assert_eq!(q.select.group_by.len(), 1);
        assert!(q.select.having.is_some());
        assert_eq!(q.limit, Some(5));
        assert!(q.order_by[0].desc);
    }

    #[test]
    fn unnest_variants() {
        // Presto.
        let q = parse_query(
            "SELECT 1 FROM events CROSS JOIN UNNEST(Jet) WITH ORDINALITY AS t (pt, eta, idx)",
        )
        .unwrap();
        match &q.select.from[0] {
            FromItem::Join { right, kind, .. } => {
                assert_eq!(*kind, JoinKind::Cross);
                match &**right {
                    FromItem::Unnest(u) => {
                        assert!(u.with_ordinality);
                        assert_eq!(u.column_aliases, vec!["pt", "eta", "idx"]);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
        // BigQuery comma-join + WITH OFFSET.
        let q = parse_query("SELECT 1 FROM events e, UNNEST(e.Jet) AS j WITH OFFSET i").unwrap();
        assert_eq!(q.select.from.len(), 2);
        match &q.select.from[1] {
            FromItem::Unnest(u) => {
                assert_eq!(u.alias.as_deref(), Some("j"));
                assert_eq!(u.with_offset.as_deref(), Some("i"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn struct_constructors() {
        let e = parse_expr("STRUCT<x INT64, y FLOAT64>(a.x + b.x, 42.0)").unwrap();
        match e {
            Expr::StructCtor { declared, fields } => {
                assert_eq!(declared.unwrap().len(), 2);
                assert_eq!(fields.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        let e = parse_expr("STRUCT(a.x + b.x AS x, 42.0 AS y)").unwrap();
        match e {
            Expr::StructCtor { fields, .. } => {
                assert_eq!(fields[0].0.as_deref(), Some("x"));
            }
            other => panic!("{other:?}"),
        }
        let e = parse_expr("CAST(ROW(a.x, 42.0) AS ROW(x BIGINT, y DOUBLE))").unwrap();
        assert!(matches!(e, Expr::Cast(_, TypeName::Row(_))));
    }

    #[test]
    fn lambdas_and_array_functions() {
        let e = parse_expr("CARDINALITY(FILTER(Jet, j -> j.pt > 40))").unwrap();
        match e {
            Expr::Call { name, args, .. } => {
                assert_eq!(name, "CARDINALITY");
                match &args[0] {
                    Expr::Call { name, args, .. } => {
                        assert_eq!(name, "FILTER");
                        assert!(matches!(args[1], Expr::Lambda(_, _)));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
        let e = parse_expr("REDUCE(xs, 0.0, (s, x) -> s + x.pt, s -> s)").unwrap();
        match e {
            Expr::Call { args, .. } => {
                assert!(matches!(&args[2], Expr::Lambda(p, _) if p.len() == 2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subqueries() {
        let e = parse_expr("(SELECT COUNT(*) FROM UNNEST(Jet) j WHERE j.pt > 40) > 1").unwrap();
        assert!(matches!(e, Expr::Binary(_, BinaryOp::Gt, _)));
        let e = parse_expr("EXISTS (SELECT 1 FROM t)").unwrap();
        assert!(matches!(e, Expr::Exists(_)));
        let e = parse_expr("ARRAY(SELECT AS STRUCT x, y FROM t)").unwrap();
        assert!(matches!(e, Expr::ArraySubquery(_)));
    }

    #[test]
    fn udf_statements() {
        let s = parse_script(
            "CREATE TEMP FUNCTION f(x FLOAT64) AS (x * 2);\n\
             CREATE FUNCTION g(y DOUBLE) RETURNS DOUBLE RETURN y + 1;\n\
             SELECT f(g(1.0))",
        )
        .unwrap();
        assert_eq!(s.functions.len(), 2);
        assert!(s.functions[0].bigquery_syntax);
        assert!(!s.functions[1].bigquery_syntax);
    }

    #[test]
    fn aggregate_modifiers() {
        let e = parse_expr("ARRAY_AGG(x ORDER BY y DESC LIMIT 1)").unwrap();
        match e {
            Expr::Call {
                order_by, limit, ..
            } => {
                assert_eq!(order_by.len(), 1);
                assert!(order_by[0].desc);
                assert_eq!(limit, Some(1));
            }
            other => panic!("{other:?}"),
        }
        let e = parse_expr("COUNT(*)").unwrap();
        assert_eq!(e, Expr::CountStar);
        let e = parse_expr("COUNT(DISTINCT x)").unwrap();
        assert!(matches!(e, Expr::Call { distinct: true, .. }));
    }

    #[test]
    fn case_between_in() {
        let e = parse_expr("CASE WHEN x < 0 THEN -1 WHEN x BETWEEN 60 AND 120 THEN 1 ELSE 0 END")
            .unwrap();
        assert!(matches!(e, Expr::Case { .. }));
        let e = parse_expr("x NOT IN (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
        let e = parse_expr("m IS NOT NULL").unwrap();
        assert!(matches!(e, Expr::IsNull(_, true)));
    }

    #[test]
    fn name_chains_fold() {
        let e = parse_expr("a.b.c").unwrap();
        assert_eq!(e, Expr::Name(vec!["a".into(), "b".into(), "c".into()]));
        let e = parse_expr("f(x).y").unwrap();
        assert!(matches!(e, Expr::Field(_, _)));
    }

    #[test]
    fn indexing() {
        let e = parse_expr("arr[1]").unwrap();
        assert!(matches!(e, Expr::Index(_, _)));
        let e = parse_expr("arr[OFFSET(0)]").unwrap();
        assert!(matches!(e, Expr::OffsetIndex(_, _)));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("SELECT 1 FROM t garbage !!").is_err());
        assert!(parse_expr("1 + ").is_err());
    }
}
