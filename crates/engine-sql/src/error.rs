//! SQL engine error type.

use std::fmt;

use nf2_columnar::ScanError;

/// Errors from parsing, planning, or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Tokenizer failure (position, message).
    Lex(usize, String),
    /// Parser failure.
    Parse(String),
    /// The query uses a construct the active dialect does not support
    /// (the Table-1 capability matrix in executable form).
    Capability {
        /// Dialect name.
        dialect: &'static str,
        /// Description of the unsupported construct.
        construct: String,
    },
    /// Name resolution failure.
    Unresolved(String),
    /// Semantic/planning error.
    Plan(String),
    /// Runtime evaluation error.
    Eval(String),
    /// Substrate error.
    Columnar(String),
    /// Typed scan fault from the chaos layer (carries row group + leaf).
    Scan(ScanError),
    /// The run observed a tripped [`obs::CancelToken`] and stopped at a
    /// row-group boundary (expired deadline or explicit cancel).
    Cancelled(obs::Cancelled),
}

impl SqlError {
    /// The typed scan fault, when this error is one.
    pub fn scan_error(&self) -> Option<&ScanError> {
        match self {
            SqlError::Scan(e) => Some(e),
            _ => None,
        }
    }

    /// The typed cancellation payload, when this error is one.
    pub fn cancelled(&self) -> Option<&obs::Cancelled> {
        match self {
            SqlError::Cancelled(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(pos, m) => write!(f, "lex error at byte {pos}: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Capability { dialect, construct } => {
                write!(f, "{dialect} does not support {construct}")
            }
            SqlError::Unresolved(m) => write!(f, "cannot resolve {m}"),
            SqlError::Plan(m) => write!(f, "planning error: {m}"),
            SqlError::Eval(m) => write!(f, "evaluation error: {m}"),
            SqlError::Columnar(m) => write!(f, "storage error: {m}"),
            SqlError::Scan(e) => write!(f, "scan fault: {e}"),
            SqlError::Cancelled(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<nested_value::ValueError> for SqlError {
    fn from(e: nested_value::ValueError) -> Self {
        SqlError::Eval(e.to_string())
    }
}

impl From<nf2_columnar::ColumnarError> for SqlError {
    fn from(e: nf2_columnar::ColumnarError) -> Self {
        match e {
            nf2_columnar::ColumnarError::Cancelled(c) => SqlError::Cancelled(c),
            other => match other.into_scan_fault() {
                Ok(s) => SqlError::Scan(s),
                Err(m) => SqlError::Columnar(m),
            },
        }
    }
}

impl From<obs::Cancelled> for SqlError {
    fn from(c: obs::Cancelled) -> Self {
        SqlError::Cancelled(c)
    }
}
