//! Property tests: parser totality and executor/reference agreement on
//! randomized filters.

use std::sync::Arc;

use proptest::prelude::*;

use hep_model::generator::build_dataset;
use hep_model::DatasetSpec;

use crate::dialect::Dialect;
use crate::engine::{SqlEngine, SqlOptions};
use crate::parser;

fn small_table() -> (Vec<hep_model::Event>, Arc<nf2_columnar::Table>) {
    let (events, table) = build_dataset(DatasetSpec {
        n_events: 200,
        row_group_size: 64,
        seed: 5,
    });
    (events, Arc::new(table))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tokenizer/parser never panic on arbitrary input — they return
    /// Ok or Err.
    #[test]
    fn parser_total(input in "\\PC{0,120}") {
        let _ = parser::parse_script(&input);
    }

    /// Randomized MET threshold filters agree with the in-memory reference
    /// across all three dialects and both execution modes.
    #[test]
    fn threshold_filters_agree(threshold in 0.0..80.0f64, parallel in any::<bool>()) {
        let (events, t) = small_table();
        let expect = events.iter().filter(|e| e.met.pt > threshold).count() as i64;
        for d in [Dialect::bigquery(), Dialect::presto(), Dialect::athena()] {
            let mut e = SqlEngine::new(d, SqlOptions {
                n_threads: if parallel { 0 } else { 1 },
                partition_parallel: parallel,
                ..SqlOptions::default()
            });
            e.register(t.clone());
            let out = e
                .execute(&format!("SELECT COUNT(*) FROM events WHERE MET.pt > {threshold}"))
                .unwrap();
            prop_assert_eq!(out.relation.rows[0][0].as_i64().unwrap(), expect);
        }
    }

    /// Randomized jet-pt cuts through three different language constructs
    /// (correlated subquery, lambda FILTER, CROSS JOIN + GROUP BY) agree.
    #[test]
    fn jet_cut_constructs_agree(cut in 15.0..60.0f64, min_n in 1usize..4) {
        let (events, t) = small_table();
        let expect = events
            .iter()
            .filter(|e| e.jets.iter().filter(|j| j.pt > cut).count() >= min_n)
            .count() as i64;

        let mut bq = SqlEngine::new(Dialect::bigquery(), SqlOptions::default());
        bq.register(t.clone());
        let out = bq.execute(&format!(
            "SELECT COUNT(*) FROM events ev WHERE \
             (SELECT COUNT(*) FROM UNNEST(ev.Jet) j WHERE j.pt > {cut}) >= {min_n}"
        )).unwrap();
        prop_assert_eq!(out.relation.rows[0][0].as_i64().unwrap(), expect);

        let mut presto = SqlEngine::new(Dialect::presto(), SqlOptions::default());
        presto.register(t.clone());
        let out = presto.execute(&format!(
            "SELECT COUNT(*) FROM events WHERE \
             CARDINALITY(FILTER(Jet, j -> j.pt > {cut})) >= {min_n}"
        )).unwrap();
        prop_assert_eq!(out.relation.rows[0][0].as_i64().unwrap(), expect);

        let mut athena = SqlEngine::new(Dialect::athena(), SqlOptions {
            n_threads: 1,
            partition_parallel: false,
            ..SqlOptions::default()
        });
        athena.register(t.clone());
        let out = athena.execute(&format!(
            "WITH matched AS (\
               SELECT event AS eid, COUNT(*) AS n FROM events \
               CROSS JOIN UNNEST(Jet) AS j WHERE j.pt > {cut} GROUP BY event \
               HAVING COUNT(*) >= {min_n}) \
             SELECT COUNT(*) FROM matched"
        )).unwrap();
        prop_assert_eq!(out.relation.rows[0][0].as_i64().unwrap(), expect);
    }

    /// The vectorized pre-filter is invisible: identical relations and
    /// identical scan accounting with the knob on and off, across all
    /// dialects and both execution modes.
    #[test]
    fn vectorized_filter_invisible(threshold in 0.0..80.0f64, parallel in any::<bool>()) {
        let (_, t) = small_table();
        let sql = format!(
            "SELECT CAST(FLOOR(MET.pt / 7.0) AS BIGINT) AS bin, COUNT(*) AS n \
             FROM events WHERE MET.pt > {threshold} AND MET.phi < 2 \
             GROUP BY CAST(FLOOR(MET.pt / 7.0) AS BIGINT) ORDER BY bin"
        );
        for d in [
            Dialect::bigquery as fn() -> Dialect,
            Dialect::presto,
            Dialect::athena,
        ] {
            let mut runs = Vec::new();
            for vectorized_filter in [true, false] {
                let mut e = SqlEngine::new(d(), SqlOptions {
                    n_threads: if parallel { 0 } else { 1 },
                    partition_parallel: parallel,
                    vectorized_filter,
                    ..SqlOptions::default()
                });
                e.register(t.clone());
                runs.push(e.execute(&sql).unwrap());
            }
            prop_assert_eq!(&runs[0].relation.cols, &runs[1].relation.cols);
            prop_assert_eq!(&runs[0].relation.rows, &runs[1].relation.rows);
            prop_assert_eq!(
                runs[0].stats.scan.bytes_scanned,
                runs[1].stats.scan.bytes_scanned
            );
            prop_assert_eq!(
                runs[0].stats.scan.logical_bytes,
                runs[1].stats.scan.logical_bytes
            );
        }
    }

    /// Histogram-style GROUP BY conserves total event counts for any bin
    /// width.
    #[test]
    fn group_by_conserves_counts(width in 1.0..40.0f64) {
        let (events, t) = small_table();
        let mut e = SqlEngine::new(Dialect::presto(), SqlOptions::default());
        e.register(t);
        let out = e.execute(&format!(
            "SELECT CAST(FLOOR(MET.pt / {width}) AS BIGINT) AS bin, COUNT(*) AS n \
             FROM events GROUP BY CAST(FLOOR(MET.pt / {width}) AS BIGINT)"
        )).unwrap();
        let total: i64 = out.relation.rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
        prop_assert_eq!(total, events.len() as i64);
    }
}
