//! Static analyses over parsed scripts:
//!
//! * **Projection extraction** — which leaf columns of each base table the
//!   query references, feeding projection pushdown and the scan/pricing
//!   accounting (paper Fig 4b).
//! * **Merge-spec analysis** — whether the root query is a decomposable
//!   aggregation, enabling segment-parallel execution over row groups
//!   (Presto's split model; see [`crate::engine`]).

use std::collections::{BTreeSet, HashMap};

use nf2_columnar::{DataType, LeafInfo, PhysicalType, ScalarPredicate, Schema, SelCmp, SelValue};

use crate::ast::*;

/// Which base-table leaf columns a script references.
pub type TableProjections = HashMap<String, BTreeSet<String>>;

#[derive(Clone, Debug)]
enum Origin {
    /// A base table row (whole struct of the table).
    BaseTable(String),
    /// A value nested under a base table path (e.g. an unnested `Jet`
    /// element: fields resolve to `Jet.<field>`).
    Nested(String, Vec<String>),
    /// Anything we cannot trace (CTE outputs, lambda params, computed
    /// values). References through it add no leaves — the leaves were
    /// counted where the CTE/expression read the base table.
    Opaque,
}

struct Analyzer<'s> {
    schemas: &'s HashMap<String, &'s Schema>,
    out: TableProjections,
}

/// Scope frame: alias → origin; `open` base tables also resolve
/// unqualified field references.
type Frame = Vec<(String, Origin)>;

/// Extracts the leaf projections a script needs from each base table.
pub fn collect_projections(
    script: &Script,
    schemas: &HashMap<String, &Schema>,
) -> TableProjections {
    let mut a = Analyzer {
        schemas,
        out: HashMap::new(),
    };
    // UDF bodies only see parameters — no table references to collect.
    a.query(&script.query, &[]);
    a.out
}

impl<'s> Analyzer<'s> {
    fn query(&mut self, q: &Query, outer: &[Frame]) {
        for (_, cte) in &q.ctes {
            self.query(cte, outer);
        }
        self.select(&q.select, outer, &q.order_by);
    }

    fn select(&mut self, s: &Select, outer: &[Frame], order_by: &[OrderItem]) {
        let mut frame: Frame = Vec::new();
        for item in &s.from {
            self.visit_from_item(item, &mut frame, outer);
        }
        let mut frames: Vec<Frame> = outer.to_vec();
        frames.push(frame);

        for item in &s.items {
            match item {
                SelectItem::Wildcard => self.mark_wildcard(&frames),
                SelectItem::QualifiedWildcard(name) => {
                    if let Some(origin) = lookup(&frames, name) {
                        self.mark_whole(&origin);
                    }
                }
                SelectItem::Expr { expr, .. } => self.expr(expr, &frames),
            }
        }
        for e in s
            .where_clause
            .iter()
            .chain(s.group_by.iter())
            .chain(s.having.iter())
        {
            self.expr(e, &frames);
        }
        for o in order_by {
            self.expr(&o.expr, &frames);
        }
    }

    fn visit_from_item(&mut self, item: &FromItem, frame: &mut Frame, outer: &[Frame]) {
        match item {
            FromItem::Table { name, alias } => {
                let origin = if self.schemas.contains_key(&name.to_ascii_lowercase()) {
                    // Ensure the table appears in the output even when no
                    // column is referenced (e.g. SELECT COUNT(*)).
                    self.out.entry(name.to_ascii_lowercase()).or_default();
                    Origin::BaseTable(name.to_ascii_lowercase())
                } else {
                    Origin::Opaque
                };
                let bind = alias.as_deref().unwrap_or(name);
                frame.push((bind.to_ascii_lowercase(), origin));
            }
            FromItem::Subquery { query, alias } => {
                self.query(query, outer);
                frame.push((alias.to_ascii_lowercase(), Origin::Opaque));
            }
            FromItem::Unnest(u) => {
                // Trace the unnested expression to a base-table path.
                let mut frames: Vec<Frame> = outer.to_vec();
                frames.push(frame.clone());
                let origin = self.trace(&u.expr, &frames);
                if origin.is_none() {
                    // Untraceable: account the referenced expression as-is.
                    self.expr(&u.expr, &frames);
                }
                let element_origin = match origin {
                    Some((t, path)) => Origin::Nested(t, path),
                    None => Origin::Opaque,
                };
                if !u.column_aliases.is_empty() {
                    // Positional field aliases: map to schema field order.
                    let n = if u.with_ordinality {
                        u.column_aliases.len().saturating_sub(1)
                    } else {
                        u.column_aliases.len()
                    };
                    if let Origin::Nested(t, path) = &element_origin {
                        if let Some(fields) = self.struct_fields_at(t, path) {
                            for (i, ca) in u.column_aliases.iter().take(n).enumerate() {
                                if let Some(fname) = fields.get(i) {
                                    let mut p = path.clone();
                                    p.push(fname.clone());
                                    // Positional binding requires the field
                                    // to be materialized whether or not it
                                    // is referenced later (Presto requires
                                    // the full field list — and reads whole
                                    // structs anyway).
                                    self.mark(&t.clone(), &p);
                                    frame.push((
                                        ca.to_ascii_lowercase(),
                                        Origin::Nested(t.clone(), p),
                                    ));
                                } else {
                                    frame.push((ca.to_ascii_lowercase(), Origin::Opaque));
                                }
                            }
                        } else {
                            for ca in u.column_aliases.iter().take(n) {
                                frame.push((ca.to_ascii_lowercase(), Origin::Opaque));
                            }
                        }
                    } else {
                        for ca in u.column_aliases.iter().take(n) {
                            frame.push((ca.to_ascii_lowercase(), Origin::Opaque));
                        }
                    }
                    if u.with_ordinality {
                        if let Some(last) = u.column_aliases.last() {
                            frame.push((last.to_ascii_lowercase(), Origin::Opaque));
                        }
                    }
                } else if let Some(alias) = &u.alias {
                    frame.push((alias.to_ascii_lowercase(), element_origin));
                }
                if let Some(off) = &u.with_offset {
                    frame.push((off.to_ascii_lowercase(), Origin::Opaque));
                }
            }
            FromItem::Join {
                left, right, on, ..
            } => {
                self.visit_from_item(left, frame, outer);
                self.visit_from_item(right, frame, outer);
                if let Some(e) = on {
                    let mut frames: Vec<Frame> = outer.to_vec();
                    frames.push(frame.clone());
                    self.expr(e, &frames);
                }
            }
        }
    }

    /// Field names (in order) of the struct at a table path, descending
    /// through lists.
    fn struct_fields_at(&self, table: &str, path: &[String]) -> Option<Vec<String>> {
        let schema = self.schemas.get(table)?;
        let mut dt: Option<&DataType> = None;
        let mut fields = schema.fields();
        for seg in path {
            let f = fields.iter().find(|f| f.name.eq_ignore_ascii_case(seg))?;
            dt = Some(&f.dtype);
            let mut cur = &f.dtype;
            loop {
                match cur {
                    DataType::List(inner) => cur = inner,
                    DataType::Struct(inner) => {
                        fields = inner;
                        break;
                    }
                    DataType::Scalar(_) => break,
                }
            }
        }
        let mut cur = dt?;
        loop {
            match cur {
                DataType::List(inner) => cur = inner,
                DataType::Struct(inner) => {
                    return Some(inner.iter().map(|f| f.name.to_string()).collect())
                }
                DataType::Scalar(_) => return None,
            }
        }
    }

    /// Traces a name-chain expression to `(table, path)` if possible.
    fn trace(&self, e: &Expr, frames: &[Frame]) -> Option<(String, Vec<String>)> {
        match e {
            Expr::Name(parts) => {
                if let Some(origin) = lookup(frames, &parts[0]) {
                    match origin {
                        Origin::BaseTable(t) => Some((t, parts[1..].to_vec())),
                        Origin::Nested(t, base) => {
                            let mut p = base;
                            p.extend(parts[1..].iter().cloned());
                            Some((t, p))
                        }
                        Origin::Opaque => None,
                    }
                } else {
                    // Unqualified: search open base tables for the field.
                    for frame in frames.iter().rev() {
                        for (_, origin) in frame.iter().rev() {
                            if let Origin::BaseTable(t) = origin {
                                if let Some(schema) = self.schemas.get(t) {
                                    if schema
                                        .fields()
                                        .iter()
                                        .any(|f| f.name.eq_ignore_ascii_case(&parts[0]))
                                    {
                                        return Some((t.clone(), parts.to_vec()));
                                    }
                                }
                            }
                        }
                    }
                    None
                }
            }
            Expr::Field(base, f) => {
                let (t, mut p) = self.trace(base, frames)?;
                p.push(f.clone());
                Some((t, p))
            }
            _ => None,
        }
    }

    fn mark(&mut self, table: &str, path: &[String]) {
        // Trim the path to the longest prefix the schema knows; an empty
        // path marks the whole table.
        let Some(schema) = self.schemas.get(table) else {
            return;
        };
        if path.is_empty() {
            for f in schema.fields() {
                self.out
                    .entry(table.to_string())
                    .or_default()
                    .insert(f.name.to_string());
            }
            return;
        }
        let mut valid = Vec::new();
        let mut fields = schema.fields();
        for seg in path {
            let Some(f) = fields.iter().find(|f| f.name.eq_ignore_ascii_case(seg)) else {
                break;
            };
            valid.push(f.name.clone());
            let mut cur = &f.dtype;
            loop {
                match cur {
                    DataType::List(inner) => cur = inner,
                    DataType::Struct(inner) => {
                        fields = inner;
                        break;
                    }
                    DataType::Scalar(_) => {
                        fields = &[];
                        break;
                    }
                }
            }
        }
        if !valid.is_empty() {
            self.out
                .entry(table.to_string())
                .or_default()
                .insert(valid.join("."));
        }
    }

    fn mark_whole(&mut self, origin: &Origin) {
        match origin {
            Origin::BaseTable(t) => self.mark(&t.clone(), &[]),
            Origin::Nested(t, p) => self.mark(&t.clone(), &p.clone()),
            Origin::Opaque => {}
        }
    }

    fn mark_wildcard(&mut self, frames: &[Frame]) {
        if let Some(frame) = frames.last() {
            for (_, origin) in frame {
                self.mark_whole(origin);
            }
        }
    }

    fn expr(&mut self, e: &Expr, frames: &[Frame]) {
        match e {
            Expr::Name(_) | Expr::Field(_, _) => {
                if let Some((t, p)) = self.trace(e, frames) {
                    self.mark(&t, &p);
                }
                // Field on non-name bases: recurse into the base.
                if let Expr::Field(base, _) = e {
                    if !matches!(**base, Expr::Name(_) | Expr::Field(_, _)) {
                        self.expr(base, frames);
                    }
                }
            }
            Expr::Subquery(q) | Expr::Exists(q) | Expr::ArraySubquery(q) => {
                self.query_with_outer(q, frames);
            }
            Expr::Lambda(params, body) => {
                let mut frames2 = frames.to_vec();
                frames2.push(
                    params
                        .iter()
                        .map(|p| (p.to_ascii_lowercase(), Origin::Opaque))
                        .collect(),
                );
                self.expr(body, &frames2);
            }
            other => {
                // Generic recursion over children (shallow clone of walk,
                // but scope-aware for subquery/lambda cases above).
                match other {
                    Expr::Unary(_, a) | Expr::Cast(a, _) | Expr::IsNull(a, _) => {
                        self.expr(a, frames)
                    }
                    Expr::Index(a, b) | Expr::OffsetIndex(a, b) | Expr::Binary(a, _, b) => {
                        self.expr(a, frames);
                        self.expr(b, frames);
                    }
                    Expr::Between { expr, lo, hi, .. } => {
                        self.expr(expr, frames);
                        self.expr(lo, frames);
                        self.expr(hi, frames);
                    }
                    Expr::InList { expr, list, .. } => {
                        self.expr(expr, frames);
                        for i in list {
                            self.expr(i, frames);
                        }
                    }
                    Expr::Case { whens, else_ } => {
                        for (c, r) in whens {
                            self.expr(c, frames);
                            self.expr(r, frames);
                        }
                        if let Some(e2) = else_ {
                            self.expr(e2, frames);
                        }
                    }
                    Expr::Call { args, order_by, .. } => {
                        for a in args {
                            self.expr(a, frames);
                        }
                        for o in order_by {
                            self.expr(&o.expr, frames);
                        }
                    }
                    Expr::RowCtor(es) | Expr::ArrayCtor(es) => {
                        for e2 in es {
                            self.expr(e2, frames);
                        }
                    }
                    Expr::StructCtor { fields, .. } => {
                        for (_, e2) in fields {
                            self.expr(e2, frames);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    fn query_with_outer(&mut self, q: &Query, outer: &[Frame]) {
        for (_, cte) in &q.ctes {
            self.query_with_outer(cte, outer);
        }
        self.select(&q.select, outer, &q.order_by);
    }
}

fn lookup(frames: &[Frame], name: &str) -> Option<Origin> {
    let lower = name.to_ascii_lowercase();
    for frame in frames.iter().rev() {
        for (n, origin) in frame.iter().rev() {
            if *n == lower {
                return Some(origin.clone());
            }
        }
    }
    None
}

// ---------------------------------------------------------------- merging

/// How one output column of a partitioned execution merges across segments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColMerge {
    /// Grouping key: identical values collapse.
    Key,
    /// Partial sums add (COUNT, SUM).
    Sum,
    /// Keep the minimum.
    Min,
    /// Keep the maximum.
    Max,
}

/// Decides whether the script's root query is a decomposable aggregation
/// that can run per row group and merge. Returns one [`ColMerge`] per
/// output column, or `None` when the query must run serially.
pub fn root_merge_spec(script: &Script) -> Option<Vec<ColMerge>> {
    let q = &script.query;
    if q.limit.is_some() {
        return None;
    }
    let s = &q.select;
    if s.having.is_some() || s.distinct {
        return None;
    }
    let mut spec = Vec::with_capacity(s.items.len());
    let mut any_agg = false;
    for item in &s.items {
        match item {
            SelectItem::Expr { expr, .. } => {
                let m = classify(expr)?;
                if m != ColMerge::Key {
                    any_agg = true;
                }
                spec.push(m);
            }
            _ => return None,
        }
    }
    if !any_agg && s.group_by.is_empty() {
        return None;
    }
    Some(spec)
}

fn classify(e: &Expr) -> Option<ColMerge> {
    match e {
        Expr::CountStar => Some(ColMerge::Sum),
        Expr::Call { name, distinct, .. } => {
            if *distinct {
                return None;
            }
            match name.to_ascii_lowercase().as_str() {
                "count" | "sum" => Some(ColMerge::Sum),
                "min" => Some(ColMerge::Min),
                "max" => Some(ColMerge::Max),
                "avg" | "min_by" | "max_by" | "array_agg" | "any_value" => None,
                _ => {
                    // Non-aggregate call: key column if it contains no
                    // aggregates at all.
                    if crate::exec::contains_aggregate(e) {
                        None
                    } else {
                        Some(ColMerge::Key)
                    }
                }
            }
        }
        other => {
            if crate::exec::contains_aggregate(other) {
                None
            } else {
                Some(ColMerge::Key)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;
    use nf2_columnar::{DataType as DT, Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("event", DT::i64()),
            Field::new(
                "MET",
                DT::Struct(vec![
                    Field::new("pt", DT::f32()),
                    Field::new("phi", DT::f32()),
                ]),
            ),
            Field::new(
                "Jet",
                DT::particle_list(vec![
                    Field::new("pt", DT::f32()),
                    Field::new("eta", DT::f32()),
                    Field::new("mass", DT::f32()),
                ]),
            ),
        ])
        .unwrap()
    }

    fn projections(sql: &str) -> Vec<String> {
        let script = parse_script(sql).unwrap();
        let s = schema();
        let mut schemas = HashMap::new();
        schemas.insert("events".to_string(), &s);
        let out = collect_projections(&script, &schemas);
        out.get("events")
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default()
    }

    #[test]
    fn direct_field_reference() {
        assert_eq!(projections("SELECT MET.pt FROM events"), vec!["MET.pt"]);
        assert_eq!(
            projections("SELECT e.MET.phi FROM events e"),
            vec!["MET.phi"]
        );
    }

    #[test]
    fn unnest_alias_maps_to_leaves() {
        assert_eq!(
            projections("SELECT j.pt FROM events CROSS JOIN UNNEST(Jet) AS j"),
            vec!["Jet.pt"]
        );
        assert_eq!(
            projections("SELECT j.pt FROM events e, UNNEST(e.Jet) AS j WITH OFFSET i"),
            vec!["Jet.pt"]
        );
    }

    #[test]
    fn presto_column_list_maps_positionally() {
        assert_eq!(
            projections(
                "SELECT jpt FROM events CROSS JOIN UNNEST(Jet) WITH ORDINALITY AS t (jpt, jeta, jmass, i) WHERE jeta > 1"
            ),
            // Positional column lists require every listed field to be
            // materialized (and Presto reads whole structs regardless).
            vec!["Jet.eta", "Jet.mass", "Jet.pt"]
        );
    }

    #[test]
    fn whole_struct_when_untraceable() {
        // Whole-table wildcard marks every top-level field.
        let p = projections("SELECT * FROM events");
        assert!(p.contains(&"MET".to_string()));
        assert!(p.contains(&"Jet".to_string()));
        assert!(p.contains(&"event".to_string()));
    }

    #[test]
    fn cte_references_counted_in_cte() {
        let p = projections("WITH base AS (SELECT MET.pt AS met FROM events) SELECT met FROM base");
        assert_eq!(p, vec!["MET.pt"]);
    }

    #[test]
    fn subquery_over_unnest() {
        let p =
            projections("SELECT (SELECT COUNT(*) FROM UNNEST(Jet) j WHERE j.pt > 40) FROM events");
        assert_eq!(p, vec!["Jet.pt"]);
    }

    #[test]
    fn lambda_bodies_are_opaque_params() {
        let p = projections("SELECT CARDINALITY(FILTER(Jet, j -> j.pt > 40)) FROM events");
        // `Jet` itself is referenced; `j.pt` traces nowhere (lambda param).
        assert!(p.contains(&"Jet".to_string()));
    }

    #[test]
    fn merge_spec_for_histogram_query() {
        let s = parse_script(
            "SELECT FLOOR(MET.pt) AS bin, COUNT(*) FROM events GROUP BY FLOOR(MET.pt)",
        )
        .unwrap();
        assert_eq!(
            root_merge_spec(&s),
            Some(vec![ColMerge::Key, ColMerge::Sum])
        );
    }

    #[test]
    fn merge_spec_rejects_non_decomposable() {
        let s = parse_script("SELECT AVG(MET.pt) FROM events").unwrap();
        assert_eq!(root_merge_spec(&s), None);
        let s = parse_script("SELECT x, COUNT(*) FROM t GROUP BY x LIMIT 3").unwrap();
        assert_eq!(root_merge_spec(&s), None);
        let s = parse_script("SELECT x, COUNT(*) FROM t GROUP BY x HAVING COUNT(*) > 1").unwrap();
        assert_eq!(root_merge_spec(&s), None);
        let s = parse_script("SELECT x FROM t").unwrap();
        assert_eq!(root_merge_spec(&s), None);
    }

    #[test]
    fn merge_spec_min_max() {
        let s = parse_script("SELECT x, MIN(y), MAX(z), SUM(w) FROM t GROUP BY x").unwrap();
        assert_eq!(
            root_merge_spec(&s),
            Some(vec![
                ColMerge::Key,
                ColMerge::Min,
                ColMerge::Max,
                ColMerge::Sum
            ])
        );
    }
}

// ------------------------------------------------- filter/prune extraction

/// Extracts WHERE conjuncts usable as a **vectorized pre-filter** (late
/// materialization; see [`nf2_columnar::select`]) and as **zone-map
/// pruning predicates** ([`nf2_columnar::stats`]), keyed by table.
///
/// Sound only when (a) the predicate is a top-level AND-conjunct of the
/// root `WHERE`, (b) it compares a **non-repeated scalar leaf** of a base
/// table against a numeric literal, and (c) that base table is scanned
/// exactly once in the whole script (pruning or pre-filtering a shared
/// materialization would corrupt other readers). Additionally:
///
/// * the literal's source type is preserved ([`SelValue::Int`] vs
///   [`SelValue::Float`]), because integer and float literals compare
///   differently against integer columns;
/// * boolean leaves are excluded — the selection kernels are numeric-only;
/// * the leaf path is canonicalized to the schema's casing, since the
///   kernel looks chunks up by exact path (zone maps tolerate a miss by
///   keeping the group; a filter must not guess).
///
/// The engine still evaluates the full WHERE on surviving rows, so a
/// conjunct this analysis *skips* costs nothing but speed; a conjunct it
/// *emits* must match the evaluator's comparison semantics exactly, which
/// [`nf2_columnar::apply_predicates`] guarantees.
pub fn filterable_predicates(
    script: &Script,
    schemas: &HashMap<String, &Schema>,
) -> HashMap<String, Vec<ScalarPredicate>> {
    let select = &script.query.select;
    let mut scan_counts: HashMap<String, usize> = HashMap::new();
    count_table_scans_query(&script.query, &mut scan_counts);

    let mut frame: Frame = Vec::new();
    let mut a = Analyzer {
        schemas,
        out: HashMap::new(),
    };
    for item in &select.from {
        a.visit_from_item(item, &mut frame, &[]);
    }
    let frames = vec![frame];

    let Some(pred) = &select.where_clause else {
        return HashMap::new();
    };
    let mut conjuncts = Vec::new();
    collect_conjuncts(pred, &mut conjuncts);

    let mut out: HashMap<String, Vec<ScalarPredicate>> = HashMap::new();
    for c in conjuncts {
        let Expr::Binary(l, op, r) = c else { continue };
        let (name_side, lit, flip) = match (literal_sel(l), literal_sel(r)) {
            (None, Some(v)) => (l.as_ref(), v, false),
            (Some(v), None) => (r.as_ref(), v, true),
            _ => continue,
        };
        let Some((table, path)) = a.trace(name_side, &frames) else {
            continue;
        };
        let Some(schema) = schemas.get(&table) else {
            continue;
        };
        let Some((leaf_path, leaf)) = resolve_leaf(schema, &path) else {
            continue;
        };
        if leaf.repeated || leaf.ptype == PhysicalType::Bool {
            continue;
        }
        if scan_counts.get(&table).copied().unwrap_or(0) != 1 {
            continue;
        }
        let cmp = match (op, flip) {
            (BinaryOp::Lt, false) | (BinaryOp::Gt, true) => SelCmp::Lt,
            (BinaryOp::Lte, false) | (BinaryOp::Gte, true) => SelCmp::Le,
            (BinaryOp::Gt, false) | (BinaryOp::Lt, true) => SelCmp::Gt,
            (BinaryOp::Gte, false) | (BinaryOp::Lte, true) => SelCmp::Ge,
            (BinaryOp::Eq, _) => SelCmp::Eq,
            (BinaryOp::Neq, _) => SelCmp::Ne,
            _ => continue,
        };
        out.entry(table).or_default().push(ScalarPredicate {
            leaf: leaf_path,
            cmp,
            value: lit,
        });
    }
    out
}

/// Canonicalizes a (possibly differently-cased) path against the schema and
/// returns it with its leaf description, or `None` when it does not resolve
/// all the way down to a scalar leaf.
fn resolve_leaf<'s>(
    schema: &'s Schema,
    path: &[String],
) -> Option<(nested_value::Path, &'s LeafInfo)> {
    let mut canon: Vec<String> = Vec::with_capacity(path.len());
    let mut fields = schema.fields();
    for seg in path {
        let f = fields.iter().find(|f| f.name.eq_ignore_ascii_case(seg))?;
        canon.push(f.name.to_string());
        let mut cur = &f.dtype;
        loop {
            match cur {
                DataType::List(inner) => cur = inner,
                DataType::Struct(inner) => {
                    fields = inner;
                    break;
                }
                DataType::Scalar(_) => {
                    fields = &[];
                    break;
                }
            }
        }
    }
    let p = nested_value::Path::parse(&canon.join("."));
    schema.leaf(&p).map(|l| (p, l))
}

/// A numeric literal with its source type kept (see [`SelValue`]).
fn literal_sel(e: &Expr) -> Option<SelValue> {
    match e {
        Expr::Int(i) => Some(SelValue::Int(*i)),
        Expr::Float(f) => Some(SelValue::Float(*f)),
        Expr::Unary(crate::ast::UnaryOp::Neg, inner) => match literal_sel(inner)? {
            SelValue::Int(i) => i.checked_neg().map(SelValue::Int),
            SelValue::Float(f) => Some(SelValue::Float(-f)),
        },
        _ => None,
    }
}

fn collect_conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary(l, BinaryOp::And, r) = e {
        collect_conjuncts(l, out);
        collect_conjuncts(r, out);
    } else {
        out.push(e);
    }
}

fn count_table_scans_query(q: &Query, counts: &mut HashMap<String, usize>) {
    for (_, cte) in &q.ctes {
        count_table_scans_query(cte, counts);
    }
    count_table_scans_select(&q.select, counts);
}

fn count_table_scans_select(s: &Select, counts: &mut HashMap<String, usize>) {
    for item in &s.from {
        count_table_scans_from(item, counts);
    }
    let mut exprs: Vec<&Expr> = Vec::new();
    for item in &s.items {
        if let SelectItem::Expr { expr, .. } = item {
            exprs.push(expr);
        }
    }
    exprs.extend(s.where_clause.iter());
    exprs.extend(s.group_by.iter());
    exprs.extend(s.having.iter());
    for e in exprs {
        e.walk(&mut |n| match n {
            Expr::Subquery(q) | Expr::Exists(q) | Expr::ArraySubquery(q) => {
                count_table_scans_query(q, counts)
            }
            _ => {}
        });
    }
}

fn count_table_scans_from(f: &FromItem, counts: &mut HashMap<String, usize>) {
    match f {
        FromItem::Table { name, .. } => {
            *counts.entry(name.to_ascii_lowercase()).or_default() += 1;
        }
        FromItem::Subquery { query, .. } => count_table_scans_query(query, counts),
        FromItem::Unnest(_) => {}
        FromItem::Join { left, right, .. } => {
            count_table_scans_from(left, counts);
            count_table_scans_from(right, counts);
        }
    }
}

#[cfg(test)]
mod prune_tests {
    use super::*;
    use crate::parser::parse_script;
    use nf2_columnar::{DataType as DT, Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("event", DT::i64()),
            Field::new("MET", DT::Struct(vec![Field::new("pt", DT::f32())])),
            Field::new("Jet", DT::particle_list(vec![Field::new("pt", DT::f32())])),
        ])
        .unwrap()
    }

    fn filt(sql: &str) -> Vec<ScalarPredicate> {
        let script = parse_script(sql).unwrap();
        let s = schema();
        let mut schemas = HashMap::new();
        schemas.insert("events".to_string(), &s);
        filterable_predicates(&script, &schemas)
            .remove("events")
            .unwrap_or_default()
    }

    #[test]
    fn filterable_keeps_literal_type_and_casing() {
        let p = filt("SELECT COUNT(*) FROM events WHERE met.pt > 100 AND event <> 5");
        assert_eq!(p.len(), 2);
        // Path canonicalized to schema casing despite lowercase SQL.
        assert_eq!(p[0].leaf.to_string(), "MET.pt");
        assert_eq!(p[0].cmp, SelCmp::Gt);
        // Integer literal stays integral (compares exactly on int columns).
        assert_eq!(p[0].value, SelValue::Int(100));
        assert_eq!(p[1].cmp, SelCmp::Ne);
        assert_eq!(p[1].value, SelValue::Int(5));
    }

    #[test]
    fn filterable_negated_and_flipped_literals() {
        let p = filt("SELECT 1 FROM events WHERE -2.5 <= MET.pt");
        assert_eq!(p[0].cmp, SelCmp::Ge);
        assert_eq!(p[0].value, SelValue::Float(-2.5));
        let p = filt("SELECT 1 FROM events WHERE event >= -3");
        assert_eq!(p[0].value, SelValue::Int(-3));
        let p = filt("SELECT 1 FROM events WHERE 100.0 < MET.pt");
        assert_eq!(p[0].cmp, SelCmp::Gt);
        assert_eq!(p[0].value, SelValue::Float(100.0));
        let p = filt("SELECT 1 FROM events e WHERE -3.5 >= e.MET.pt");
        assert_eq!(p[0].cmp, SelCmp::Le);
        assert_eq!(p[0].value, SelValue::Float(-3.5));
    }

    #[test]
    fn filterable_skips_repeated_and_multiscan() {
        assert!(
            filt("SELECT COUNT(*) FROM events CROSS JOIN UNNEST(Jet) AS j WHERE j.pt > 40.0")
                .is_empty()
        );
        assert!(filt(
            "WITH a AS (SELECT event FROM events) \
             SELECT COUNT(*) FROM events WHERE MET.pt > 10.0"
        )
        .is_empty());
        assert!(filt("SELECT 1 FROM events WHERE MET.pt > 1.0 OR event = 1").is_empty());
    }
}
