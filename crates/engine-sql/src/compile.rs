//! Lowering SQL scripts to the shared vectorized physical IR.
//!
//! Recognition is by **canonical-template equality**, exactly like the
//! JSONiq lowering: the incoming script is probed for the numeric
//! parameters of the benchmark's Q6-class shape (plotted member,
//! histogram edges and bin count, reference top mass), the canonical
//! script is regenerated with those parameters, parsed with this crate's
//! own parser, and the two ASTs must be equal. AST nodes all derive
//! `PartialEq` and float literals compare by value, so formatting is
//! irrelevant while any semantic deviation makes the probe fail and
//! execution fall back to the interpreter — fallback is always sound.
//!
//! The template is the Presto/Athena Q6 text (the two dialects share it
//! verbatim): a three-way `CROSS JOIN UNNEST … WITH ORDINALITY`
//! self-join over `Jet`, a `MIN_BY` per-event argmin on
//! `|mass − top|`, and the standard two-CTE binning tail.

use nested_value::Path;
use physical_ir::{ComputeNode, PhysPlan, TrijetCompute, TrijetPlot};
use physics::HistSpec;

use crate::ast::{BinaryOp, Expr, FromItem, Query, Script, SelectItem, UnaryOp};
use crate::parser;

/// Parameters of the Q6-class template.
#[derive(Debug)]
struct TrijetParams {
    /// Plotted member of the winning system (`pt` or `btag`).
    plot: TrijetPlot,
    /// Histogram spec from the binning tail's `CASE`.
    spec: HistSpec,
    /// Candidate-distance reference mass from the `scored` CTE.
    top: f64,
}

/// Attempts to lower a parsed script to a physical plan. Returns `None`
/// for any script that is not exactly an instance of the supported
/// template — the caller falls back to the interpreter.
pub fn lower(script: &Script) -> Option<PhysPlan> {
    let params = extract_params(script)?;
    let canonical = parser::parse_script(&template_text(&params)).ok()?;
    if &canonical != script {
        return None;
    }
    let plot = params.plot;
    Some(PhysPlan {
        // No row filter: the UNNEST self-join yields no combination for
        // events with fewer than three jets, which the kernel reproduces
        // by producing no fill for them.
        filters: Vec::new(),
        compute: ComputeNode::Trijet(TrijetCompute {
            pt: Path::parse("Jet.pt"),
            eta: Path::parse("Jet.eta"),
            phi: Path::parse("Jet.phi"),
            mass: Path::parse("Jet.mass"),
            btag: Path::parse("Jet.btag"),
            top_mass: params.top,
            plot,
        }),
        spec: params.spec,
    })
}

/// Probes the fixed template positions for the parameters. Lenient on
/// purpose: a wrong guess regenerates a template that fails the equality
/// check, never a wrong plan.
fn extract_params(script: &Script) -> Option<TrijetParams> {
    if !script.functions.is_empty() {
        return None;
    }
    let q = &script.query;
    // Plotted member from the last CTE: `plotted AS (SELECT b.<m> AS x …)`.
    let (plotted_name, plotted) = q.ctes.last()?;
    if !plotted_name.eq_ignore_ascii_case("plotted") {
        return None;
    }
    let SelectItem::Expr { expr, .. } = plotted.select.items.first()? else {
        return None;
    };
    let Expr::Name(parts) = expr else {
        return None;
    };
    let plot = match parts.last()?.as_str() {
        "pt" => TrijetPlot::Pt,
        "btag" => TrijetPlot::MaxBtag,
        _ => return None,
    };
    // Top mass from the `scored` CTE: `ABS(… - <top>)`.
    let scored = cte(q, "scored")?;
    let mut top = None;
    for item in &scored.select.items {
        let SelectItem::Expr { expr, .. } = item else {
            continue;
        };
        expr.walk(&mut |e| {
            if let Expr::Call { name, args, .. } = e {
                if name.eq_ignore_ascii_case("abs") && args.len() == 1 {
                    if let Expr::Binary(_, BinaryOp::Sub, rhs) = &args[0] {
                        if let Some(t) = float_lit(rhs) {
                            top.get_or_insert(t);
                        }
                    }
                }
            }
        });
    }
    let top = top?;
    // Histogram edges from the binning tail's CASE in the outer query's
    // derived table: `CASE WHEN p.x < lo THEN -1 WHEN p.x >= hi THEN n …`.
    let FromItem::Subquery { query: tail, .. } = q.select.from.first()? else {
        return None;
    };
    let mut spec = None;
    for item in &tail.select.items {
        let SelectItem::Expr { expr, .. } = item else {
            continue;
        };
        expr.walk(&mut |e| {
            if let Expr::Case { whens, .. } = e {
                if whens.len() == 2 {
                    let (Expr::Binary(_, BinaryOp::Lt, lo), _) = &whens[0] else {
                        return;
                    };
                    let (Expr::Binary(_, BinaryOp::Gte, hi), Expr::Int(bins)) = &whens[1] else {
                        return;
                    };
                    if let (Some(lo), Some(hi)) = (float_lit(lo), float_lit(hi)) {
                        if *bins > 0 {
                            spec.get_or_insert(HistSpec {
                                bins: *bins as usize,
                                lo,
                                hi,
                            });
                        }
                    }
                }
            }
        });
    }
    Some(TrijetParams {
        plot,
        spec: spec?,
        top,
    })
}

/// CTE lookup by (case-insensitive) name.
fn cte<'a>(q: &'a Query, name: &str) -> Option<&'a Query> {
    q.ctes
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, q)| q)
}

/// Numeric literal as `f64`.
fn float_lit(e: &Expr) -> Option<f64> {
    match e {
        Expr::Float(f) => Some(*f),
        Expr::Int(i) => Some(*i as f64),
        Expr::Unary(UnaryOp::Neg, inner) => float_lit(inner).map(|f| -f),
        _ => None,
    }
}

/// Formats an `f64` so it parses back to the same bits (the equality
/// check compares parsed values, so only round-tripping matters).
fn flit(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// The canonical Q6-class script for a parameter set. Must parse to the
/// exact AST of the benchmark's Presto/Athena Q6a/Q6b texts (kept in the
/// benchmark core); drift between the two copies makes recognition fail,
/// which costs the compiled speedup but never correctness.
fn template_text(p: &TrijetParams) -> String {
    let plot = match p.plot {
        TrijetPlot::Pt => "b.pt",
        TrijetPlot::MaxBtag => "b.btag",
    };
    let lo = flit(p.spec.lo);
    let hi = flit(p.spec.hi);
    let n = p.spec.bins as i64;
    let nf = flit(p.spec.bins as f64);
    let tail = format!(
        "SELECT t.bin AS bin, COUNT(*) AS n\n\
         FROM (\n\
         \x20 SELECT CASE WHEN p.x < {lo} THEN -1\n\
         \x20             WHEN p.x >= {hi} THEN {n}\n\
         \x20             ELSE LEAST(CAST(FLOOR((p.x - {lo}) / (({hi} - {lo}) / {nf})) AS BIGINT), {nm1}) END AS bin\n\
         \x20 FROM plotted p) t\n\
         GROUP BY t.bin",
        nm1 = n - 1
    );
    format!(
        "WITH combos AS (\n\
         \x20 SELECT event AS eid,\n\
         \x20        pt1 * COS(phi1) AS px1, pt1 * SIN(phi1) AS py1, pt1 * SINH(eta1) AS pz1, mass1 AS m1, btag1 AS b1,\n\
         \x20        pt2 * COS(phi2) AS px2, pt2 * SIN(phi2) AS py2, pt2 * SINH(eta2) AS pz2, mass2 AS m2, btag2 AS b2,\n\
         \x20        pt3 * COS(phi3) AS px3, pt3 * SIN(phi3) AS py3, pt3 * SINH(eta3) AS pz3, mass3 AS m3, btag3 AS b3\n\
         \x20 FROM events\n\
         \x20 CROSS JOIN UNNEST(Jet) WITH ORDINALITY AS t1 (pt1, eta1, phi1, mass1, btag1, puid1, i1)\n\
         \x20 CROSS JOIN UNNEST(Jet) WITH ORDINALITY AS t2 (pt2, eta2, phi2, mass2, btag2, puid2, i2)\n\
         \x20 CROSS JOIN UNNEST(Jet) WITH ORDINALITY AS t3 (pt3, eta3, phi3, mass3, btag3, puid3, i3)\n\
         \x20 WHERE i1 < i2 AND i2 < i3),\n\
         systems AS (\n\
         \x20 SELECT c.eid,\n\
         \x20        c.px1 + c.px2 + c.px3 AS px, c.py1 + c.py2 + c.py3 AS py, c.pz1 + c.pz2 + c.pz3 AS pz,\n\
         \x20        SQRT(c.px1 * c.px1 + c.py1 * c.py1 + c.pz1 * c.pz1 + c.m1 * c.m1)\n\
         \x20        + SQRT(c.px2 * c.px2 + c.py2 * c.py2 + c.pz2 * c.pz2 + c.m2 * c.m2)\n\
         \x20        + SQRT(c.px3 * c.px3 + c.py3 * c.py3 + c.pz3 * c.pz3 + c.m3 * c.m3) AS e,\n\
         \x20        GREATEST(c.b1, c.b2, c.b3) AS btag\n\
         \x20 FROM combos c),\n\
         scored AS (\n\
         \x20 SELECT s.eid, SQRT(s.px * s.px + s.py * s.py) AS pt, s.btag,\n\
         \x20        ABS(SQRT(GREATEST(0.0, s.e * s.e - (s.px * s.px + s.py * s.py + s.pz * s.pz))) - {top}) AS dist\n\
         \x20 FROM systems s),\n\
         best AS (\n\
         \x20 SELECT b.eid AS eid, MIN_BY(b.pt, b.dist) AS pt, MIN_BY(b.btag, b.dist) AS btag\n\
         \x20 FROM scored b GROUP BY b.eid),\n\
         plotted AS (SELECT {plot} AS x FROM best b)\n{tail}",
        top = flit(p.top),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q6_text(member: &str) -> String {
        template_text(&TrijetParams {
            plot: if member == "pt" {
                TrijetPlot::Pt
            } else {
                TrijetPlot::MaxBtag
            },
            spec: HistSpec {
                bins: 100,
                lo: 15.0,
                hi: 40.0,
            },
            top: 172.5,
        })
    }

    #[test]
    fn lowers_canonical_q6_both_members() {
        for (member, plot) in [("pt", TrijetPlot::Pt), ("btag", TrijetPlot::MaxBtag)] {
            let script = parser::parse_script(&q6_text(member)).unwrap();
            let plan = lower(&script).expect("canonical Q6 must lower");
            let ComputeNode::Trijet(t) = &plan.compute else {
                panic!("expected trijet compute");
            };
            assert_eq!(t.plot, plot);
            assert_eq!(t.top_mass, 172.5);
            assert_eq!(plan.spec.bins, 100);
            assert_eq!(plan.spec.lo, 15.0);
            assert_eq!(plan.spec.hi, 40.0);
            assert!(plan.filters.is_empty());
        }
    }

    #[test]
    fn different_parameters_still_lower() {
        let text = q6_text("pt")
            .replace("172.5", "91.2")
            .replace("15.0", "0.0")
            .replace("40.0", "200.0");
        let script = parser::parse_script(&text).unwrap();
        let plan = lower(&script).expect("re-parameterized Q6 must lower");
        let ComputeNode::Trijet(t) = &plan.compute else {
            panic!("expected trijet compute");
        };
        assert_eq!(t.top_mass, 91.2);
        assert_eq!(plan.spec.lo, 0.0);
        assert_eq!(plan.spec.hi, 200.0);
    }

    #[test]
    fn semantic_deviation_falls_back() {
        // Pair ordering changed: different combinatorics, not a parameter.
        let text = q6_text("pt").replace("WHERE i1 < i2 AND i2 < i3", "WHERE i1 < i2 AND i2 <= i3");
        let script = parser::parse_script(&text).unwrap();
        assert!(lower(&script).is_none());
        // MAX_BY instead of MIN_BY: opposite argmin.
        let text = q6_text("pt").replace("MIN_BY(b.pt, b.dist)", "MAX_BY(b.pt, b.dist)");
        let script = parser::parse_script(&text).unwrap();
        assert!(lower(&script).is_none());
        // An unrelated query.
        let other =
            parser::parse_script("WITH plotted AS (SELECT MET.pt AS x FROM events)\nSELECT 1 AS n")
                .unwrap();
        assert!(lower(&other).is_none());
    }
}
