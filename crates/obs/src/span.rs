//! Spans: monotonic timers with parent linkage and per-span counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::tree::SpanTree;

/// Typed query stage. Every span is tagged with exactly one stage;
/// free-form detail goes into the span label instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Root span of one query execution (engine entry to histogram).
    Query,
    /// Query-text parsing and validation.
    Parse,
    /// Planning: schema resolution, projection, predicate analysis,
    /// zone-map pruning decisions.
    Plan,
    /// Scan accounting over row groups (bytes touched, cache traffic).
    Scan,
    /// Zone-map evaluation: row groups proven empty by min/max statistics
    /// and skipped before decode.
    Prune,
    /// Decoding chunk bytes into in-memory values.
    Decode,
    /// Predicate evaluation / selection-vector construction.
    Filter,
    /// Row materialization out of columnar storage.
    Materialize,
    /// Per-row evaluation and histogram aggregation.
    Aggregate,
    /// Time spent queued in the serving layer before a worker picked
    /// the query up.
    QueueWait,
    /// One retry attempt after a retryable fault.
    Retry,
    /// Result-cache probe in the serving layer.
    CacheLookup,
    /// Morsel-level fault recovery in the parallel executor: in-place
    /// retries of transient morsels, quarantine after a panic, deque
    /// reassignment from a dead worker, speculative straggler
    /// re-execution, and the serial fallback pass.
    Recovery,
}

impl Stage {
    /// Every stage, in display order.
    pub const ALL: [Stage; 13] = [
        Stage::Query,
        Stage::Parse,
        Stage::Plan,
        Stage::Scan,
        Stage::Prune,
        Stage::Decode,
        Stage::Filter,
        Stage::Materialize,
        Stage::Aggregate,
        Stage::QueueWait,
        Stage::Retry,
        Stage::CacheLookup,
        Stage::Recovery,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Query => "query",
            Stage::Parse => "parse",
            Stage::Plan => "plan",
            Stage::Scan => "scan",
            Stage::Prune => "prune",
            Stage::Decode => "decode",
            Stage::Filter => "filter",
            Stage::Materialize => "materialize",
            Stage::Aggregate => "aggregate",
            Stage::QueueWait => "queue_wait",
            Stage::Retry => "retry",
            Stage::CacheLookup => "cache_lookup",
            Stage::Recovery => "recovery",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifier of one span within a [`TraceCtx`]. Allocation order, so
/// ids are unique per trace but not globally.
pub type SpanId = u64;

/// One completed span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// This span's id (unique within the trace).
    pub id: SpanId,
    /// Parent span, when this span was opened from a [`SpanGuard::ctx`]
    /// child context.
    pub parent: Option<SpanId>,
    /// Typed stage.
    pub stage: Stage,
    /// Free-form detail (query name, group index, dialect, …).
    pub label: String,
    /// Small integer identifying the recording thread (stable within a
    /// process run, first-use order).
    pub tid: u64,
    /// Start offset from the trace epoch, nanoseconds (monotonic clock).
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub duration_ns: u64,
    /// Rows entering the stage (0 when not meaningful).
    pub rows_in: u64,
    /// Rows surviving the stage (0 when not meaningful).
    pub rows_out: u64,
    /// Bytes touched by the stage (0 when not meaningful).
    pub bytes: u64,
}

impl SpanRecord {
    /// End offset from the trace epoch, nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.duration_ns
    }

    /// Fraction of input rows surviving the stage, when both counters
    /// were set.
    pub fn selectivity(&self) -> Option<f64> {
        if self.rows_in > 0 {
            Some(self.rows_out as f64 / self.rows_in as f64)
        } else {
            None
        }
    }
}

/// Shared state of one enabled trace.
struct TraceInner {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

/// Per-query trace context, threaded through `ExecEnv` into the
/// engines and the storage layer.
///
/// `TraceCtx` is cheap to clone (an `Option<Arc>` plus an id). The
/// default value is *disabled*: opening spans on it performs no clock
/// reads, allocations, or locking. [`TraceCtx::enabled`] turns tracing
/// on; [`SpanGuard::ctx`] derives child contexts whose spans link to
/// the guard's span.
#[derive(Clone, Default)]
pub struct TraceCtx {
    inner: Option<Arc<TraceInner>>,
    parent: Option<SpanId>,
}

impl TraceCtx {
    /// The disabled context (same as `TraceCtx::default()`).
    pub fn disabled() -> TraceCtx {
        TraceCtx::default()
    }

    /// An enabled context whose epoch (timestamp zero) is now.
    pub fn enabled() -> TraceCtx {
        TraceCtx::enabled_since(Instant::now())
    }

    /// An enabled context with an explicit epoch — used by the serving
    /// layer so queue-wait spans recorded retroactively (enqueue
    /// happened before the context existed) still start at offset ≥ 0.
    pub fn enabled_since(epoch: Instant) -> TraceCtx {
        TraceCtx {
            inner: Some(Arc::new(TraceInner {
                epoch,
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
            })),
            parent: None,
        }
    }

    /// Whether spans opened on this context are recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span. On a disabled context this is a no-op guard.
    pub fn span(&self, stage: Stage) -> SpanGuard {
        self.span_labeled(stage, String::new())
    }

    /// Opens a span with a label computed only when tracing is enabled
    /// (so disabled traces pay no formatting cost).
    pub fn span_with(&self, stage: Stage, label: impl FnOnce() -> String) -> SpanGuard {
        match &self.inner {
            Some(_) => self.span_labeled(stage, label()),
            None => SpanGuard { active: None },
        }
    }

    fn span_labeled(&self, stage: Stage, label: String) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { active: None };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        SpanGuard {
            active: Some(ActiveSpan {
                inner: inner.clone(),
                id,
                parent: self.parent,
                stage,
                label,
                start,
                rows_in: 0,
                rows_out: 0,
                bytes: 0,
            }),
        }
    }

    /// Records a span retroactively from explicit start/duration — used
    /// for intervals measured before the context existed (queue wait).
    /// A `start` before the trace epoch is clamped to offset 0.
    pub fn record(&self, stage: Stage, label: &str, start: Instant, duration: Duration) {
        let Some(inner) = &self.inner else { return };
        let start_ns = start
            .checked_duration_since(inner.epoch)
            .unwrap_or(Duration::ZERO)
            .as_nanos() as u64;
        let record = SpanRecord {
            id: inner.next_id.fetch_add(1, Ordering::Relaxed),
            parent: self.parent,
            stage,
            label: label.to_string(),
            tid: current_tid(),
            start_ns,
            duration_ns: duration.as_nanos() as u64,
            rows_in: 0,
            rows_out: 0,
            bytes: 0,
        };
        inner.spans.lock().unwrap().push(record);
    }

    /// Drains every span recorded so far into a [`SpanTree`]. Returns
    /// an empty tree on a disabled context. Spans still open (guards
    /// not yet dropped) are not included.
    pub fn take_tree(&self) -> SpanTree {
        match &self.inner {
            Some(inner) => {
                let records = std::mem::take(&mut *inner.spans.lock().unwrap());
                SpanTree::from_records(records)
            }
            None => SpanTree::default(),
        }
    }
}

impl std::fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCtx")
            .field("enabled", &self.is_enabled())
            .field("parent", &self.parent)
            .finish()
    }
}

struct ActiveSpan {
    inner: Arc<TraceInner>,
    id: SpanId,
    parent: Option<SpanId>,
    stage: Stage,
    label: String,
    start: Instant,
    rows_in: u64,
    rows_out: u64,
    bytes: u64,
}

/// RAII guard for an open span: records the span (with its duration)
/// when dropped. On a disabled [`TraceCtx`] every method is a no-op.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// A child context: spans opened on it have this guard's span as
    /// parent. Disabled guards return a disabled context.
    pub fn ctx(&self) -> TraceCtx {
        match &self.active {
            Some(a) => TraceCtx {
                inner: Some(a.inner.clone()),
                parent: Some(a.id),
            },
            None => TraceCtx::disabled(),
        }
    }

    /// Whether this guard records anything (mirrors
    /// [`TraceCtx::is_enabled`]).
    pub fn is_enabled(&self) -> bool {
        self.active.is_some()
    }

    /// Adds to the rows-in counter.
    pub fn add_rows_in(&mut self, n: u64) {
        if let Some(a) = &mut self.active {
            a.rows_in += n;
        }
    }

    /// Adds to the rows-out counter.
    pub fn add_rows_out(&mut self, n: u64) {
        if let Some(a) = &mut self.active {
            a.rows_out += n;
        }
    }

    /// Adds to the bytes counter.
    pub fn add_bytes(&mut self, n: u64) {
        if let Some(a) = &mut self.active {
            a.bytes += n;
        }
    }

    /// Replaces the label.
    pub fn set_label(&mut self, label: impl Into<String>) {
        if let Some(a) = &mut self.active {
            a.label = label.into();
        }
    }

    /// Ends the span now (equivalent to dropping the guard).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let duration_ns = a.start.elapsed().as_nanos() as u64;
        let start_ns = a
            .start
            .checked_duration_since(a.inner.epoch)
            .unwrap_or(Duration::ZERO)
            .as_nanos() as u64;
        let record = SpanRecord {
            id: a.id,
            parent: a.parent,
            stage: a.stage,
            label: a.label,
            tid: current_tid(),
            start_ns,
            duration_ns,
            rows_in: a.rows_in,
            rows_out: a.rows_out,
            bytes: a.bytes,
        };
        a.inner.spans.lock().unwrap().push(record);
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Small per-thread integer (first-use order), used as the chrome-trace
/// `tid`.
pub(crate) fn current_tid() -> u64 {
    TID.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ctx_is_noop() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.is_enabled());
        let mut g = ctx.span(Stage::Scan);
        assert!(!g.is_enabled());
        g.add_rows_in(10);
        let child = g.ctx();
        assert!(!child.is_enabled());
        drop(g);
        assert!(ctx.take_tree().is_empty());
    }

    #[test]
    fn spans_nest_and_time_monotonically() {
        let ctx = TraceCtx::enabled();
        {
            let root = ctx.span_with(Stage::Query, || "Q1".to_string());
            let child_ctx = root.ctx();
            {
                let mut scan = child_ctx.span(Stage::Scan);
                scan.add_rows_in(100);
                scan.add_rows_out(40);
                scan.add_bytes(4096);
            }
            {
                let _agg = child_ctx.span(Stage::Aggregate);
            }
        }
        let tree = ctx.take_tree();
        assert_eq!(tree.roots.len(), 1);
        let root = &tree.roots[0];
        assert_eq!(root.span.stage, Stage::Query);
        assert_eq!(root.span.label, "Q1");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].span.stage, Stage::Scan);
        assert_eq!(root.children[0].span.selectivity(), Some(0.4));
        assert_eq!(root.children[0].span.bytes, 4096);
        assert_eq!(root.children[1].span.stage, Stage::Aggregate);
        // Children start after the root and end before it.
        for c in &root.children {
            assert!(c.span.start_ns >= root.span.start_ns);
            assert!(c.span.end_ns() <= root.span.end_ns());
        }
        // Sibling spans are ordered by start time.
        assert!(root.children[0].span.start_ns <= root.children[1].span.start_ns);
        // Draining consumed everything.
        assert!(ctx.take_tree().is_empty());
    }

    #[test]
    fn retroactive_record_clamps_to_epoch() {
        let before = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        let ctx = TraceCtx::enabled();
        ctx.record(
            Stage::QueueWait,
            "tenant-a",
            before,
            Duration::from_millis(1),
        );
        let tree = ctx.take_tree();
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].span.start_ns, 0);
        assert_eq!(tree.roots[0].span.stage, Stage::QueueWait);
    }

    #[test]
    fn enabled_since_backdates_epoch() {
        let enqueued = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        let ctx = TraceCtx::enabled_since(enqueued);
        let g = ctx.span(Stage::Query);
        drop(g);
        let tree = ctx.take_tree();
        // The span started well after the backdated epoch.
        assert!(tree.roots[0].span.start_ns >= 1_000_000);
    }
}
