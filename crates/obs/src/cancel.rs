//! Cooperative cancellation: a cheap, cloneable token threaded from the
//! serving layer down into the scan loops.
//!
//! Design mirrors [`crate::TraceCtx`]: a disabled token (the default) is
//! an `Option::None` and every check is a single branch — no clock read,
//! no atomic load — so the paper-fairness hot path is untouched. An
//! enabled token is an `Arc` around an `AtomicBool` plus an optional
//! deadline `Instant`; engines call [`CancelToken::check`] once per row
//! group and bubble the typed [`Cancelled`] payload up through their
//! error enums.
//!
//! [`CancelToken::child`] creates a token that trips when *either* its
//! own flag or any ancestor's flag is set. Hedged execution uses this:
//! the service cancels the losing attempt via its child token without
//! affecting the winner, while a job-level `cancel()` on the parent
//! stops both.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::span::Stage;

/// Why a query was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// `CancelToken::cancel()` was called (client abandoned the query,
    /// or a hedged sibling won the race).
    Explicit,
    /// The deadline carried by the token passed.
    DeadlineExceeded,
}

impl CancelReason {
    /// Stable lower-case name for metrics and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            CancelReason::Explicit => "explicit",
            CancelReason::DeadlineExceeded => "deadline",
        }
    }
}

/// Typed payload of a cooperative cancellation: where the query was
/// stopped and how much work it had completed. `rows_processed` counts
/// rows whose processing *finished* before the check fired, so it can
/// exceed the deadline's row count by at most one row group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// The stage that observed the cancellation.
    pub stage: Stage,
    /// Rows fully processed before the query stopped.
    pub rows_processed: u64,
    /// Explicit cancel vs expired deadline.
    pub reason: CancelReason,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cancelled ({}) in {} after {} rows",
            self.reason.name(),
            self.stage.name(),
            self.rows_processed
        )
    }
}

impl std::error::Error for Cancelled {}

struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<Arc<CancelInner>>,
}

impl CancelInner {
    fn tripped(&self) -> Option<CancelReason> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Some(CancelReason::Explicit);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(CancelReason::DeadlineExceeded);
            }
        }
        match &self.parent {
            Some(p) => p.tripped(),
            None => None,
        }
    }
}

/// A cooperative cancellation token. Cloning shares the underlying
/// flag; the default token is disabled and free to check.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<CancelInner>>,
}

impl CancelToken {
    /// A disabled token: never trips, checks are a single branch.
    pub fn none() -> CancelToken {
        CancelToken::default()
    }

    /// An enabled token with no deadline — trips only on [`cancel`].
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            })),
        }
    }

    /// An enabled token that also trips once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
                parent: None,
            })),
        }
    }

    /// A child token: trips when its own flag is set *or* any ancestor
    /// trips. Cancelling the child does not affect the parent. A child
    /// of a disabled token is an independent enabled token.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: self.inner.clone(),
            })),
        }
    }

    /// Whether this token can ever trip.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The deadline carried by this token (not ancestors), if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }

    /// Requests cancellation. No-op on a disabled token.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the token has tripped (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            Some(inner) => inner.tripped().is_some(),
            None => false,
        }
    }

    /// The hot-loop check: returns `Err(Cancelled)` once the token has
    /// tripped, stamping the observing stage and the rows completed so
    /// far. On a disabled token this is a single `None` branch.
    #[inline]
    pub fn check(&self, stage: Stage, rows_processed: u64) -> Result<(), Cancelled> {
        match &self.inner {
            None => Ok(()),
            Some(inner) => match inner.tripped() {
                None => Ok(()),
                Some(reason) => Err(Cancelled {
                    stage,
                    rows_processed,
                    reason,
                }),
            },
        }
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "CancelToken(disabled)"),
            Some(inner) => write!(
                f,
                "CancelToken(cancelled={}, deadline={})",
                inner.cancelled.load(Ordering::Relaxed),
                inner.deadline.is_some()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_token_never_trips() {
        let t = CancelToken::none();
        assert!(!t.is_enabled());
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(t.check(Stage::Scan, 100).is_ok());
    }

    #[test]
    fn explicit_cancel_trips() {
        let t = CancelToken::new();
        assert!(t.check(Stage::Scan, 0).is_ok());
        t.cancel();
        let e = t.check(Stage::Decode, 42).unwrap_err();
        assert_eq!(e.reason, CancelReason::Explicit);
        assert_eq!(e.stage, Stage::Decode);
        assert_eq!(e.rows_processed, 42);
    }

    #[test]
    fn expired_deadline_trips() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let e = t.check(Stage::Scan, 7).unwrap_err();
        assert_eq!(e.reason, CancelReason::DeadlineExceeded);
        assert_eq!(e.rows_processed, 7);
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(t.check(Stage::Scan, 0).is_ok());
        assert!(!t.is_cancelled());
    }

    #[test]
    fn clone_shares_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn child_sees_parent_cancel_but_not_vice_versa() {
        let parent = CancelToken::new();
        let a = parent.child();
        let b = parent.child();
        // Cancelling one child (hedge loser) leaves the sibling alive.
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled());
        assert!(!parent.is_cancelled());
        // Cancelling the parent (job-level cancel) stops every child.
        parent.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn child_inherits_parent_deadline() {
        let parent = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let child = parent.child();
        let e = child.check(Stage::Scan, 3).unwrap_err();
        assert_eq!(e.reason, CancelReason::DeadlineExceeded);
    }

    #[test]
    fn child_of_disabled_token_is_enabled() {
        let child = CancelToken::none().child();
        assert!(child.is_enabled());
        assert!(child.check(Stage::Scan, 0).is_ok());
        child.cancel();
        assert!(child.is_cancelled());
    }

    #[test]
    fn cancelled_displays_context() {
        let c = Cancelled {
            stage: Stage::Scan,
            rows_processed: 512,
            reason: CancelReason::DeadlineExceeded,
        };
        let s = c.to_string();
        assert!(s.contains("deadline"), "{s}");
        assert!(s.contains("scan"), "{s}");
        assert!(s.contains("512"), "{s}");
    }
}
