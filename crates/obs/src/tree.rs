//! Span trees: linked, exportable view of one query's recorded spans.

use std::collections::BTreeMap;

use crate::json_escape;
use crate::span::{SpanId, SpanRecord, Stage};

/// One node of a [`SpanTree`].
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// The completed span.
    pub span: SpanRecord,
    /// Child spans, ordered by start time.
    pub children: Vec<SpanNode>,
}

/// The spans of one query execution, linked parent→child.
///
/// Roots are spans with no parent (or whose parent was never recorded),
/// ordered by start time. A tree drained from a disabled
/// [`crate::TraceCtx`] is empty.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanTree {
    /// Top-level spans, ordered by start time.
    pub roots: Vec<SpanNode>,
}

impl SpanTree {
    /// Links flat records into a tree. Records whose parent id is
    /// missing from the batch become roots.
    pub fn from_records(records: Vec<SpanRecord>) -> SpanTree {
        let ids: std::collections::BTreeSet<SpanId> = records.iter().map(|r| r.id).collect();
        let mut children: BTreeMap<SpanId, Vec<SpanRecord>> = BTreeMap::new();
        let mut roots: Vec<SpanRecord> = Vec::new();
        for r in records {
            match r.parent {
                Some(p) if ids.contains(&p) => children.entry(p).or_default().push(r),
                _ => roots.push(r),
            }
        }
        fn build(r: SpanRecord, children: &mut BTreeMap<SpanId, Vec<SpanRecord>>) -> SpanNode {
            let mut kids: Vec<SpanNode> = children
                .remove(&r.id)
                .unwrap_or_default()
                .into_iter()
                .map(|c| build(c, children))
                .collect();
            kids.sort_by_key(|n| (n.span.start_ns, n.span.id));
            SpanNode {
                span: r,
                children: kids,
            }
        }
        let mut nodes: Vec<SpanNode> = roots.into_iter().map(|r| build(r, &mut children)).collect();
        nodes.sort_by_key(|n| (n.span.start_ns, n.span.id));
        SpanTree { roots: nodes }
    }

    /// Whether no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Every span in the tree, depth-first, pre-order.
    pub fn flatten(&self) -> Vec<&SpanRecord> {
        let mut out = Vec::new();
        fn walk<'a>(n: &'a SpanNode, out: &mut Vec<&'a SpanRecord>) {
            out.push(&n.span);
            for c in &n.children {
                walk(c, out);
            }
        }
        for r in &self.roots {
            walk(r, &mut out);
        }
        out
    }

    /// Total number of spans.
    pub fn len(&self) -> usize {
        self.flatten().len()
    }

    /// Sum of root-span durations, seconds — the traced wall-clock.
    pub fn total_seconds(&self) -> f64 {
        self.roots
            .iter()
            .map(|r| r.span.duration_ns as f64 / 1e9)
            .sum()
    }

    /// Exclusive (self) time per stage, in seconds, descending. A
    /// span's self time is its duration minus the summed durations of
    /// its direct children, floored at zero (parallel children can
    /// overlap the parent's timeline).
    pub fn stage_seconds(&self) -> Vec<(Stage, f64)> {
        let mut totals: BTreeMap<Stage, f64> = BTreeMap::new();
        fn walk(n: &SpanNode, totals: &mut BTreeMap<Stage, f64>) {
            let child_ns: u64 = n.children.iter().map(|c| c.span.duration_ns).sum();
            let self_ns = n.span.duration_ns.saturating_sub(child_ns);
            *totals.entry(n.span.stage).or_default() += self_ns as f64 / 1e9;
            for c in &n.children {
                walk(c, totals);
            }
        }
        for r in &self.roots {
            walk(r, &mut totals);
        }
        let mut out: Vec<(Stage, f64)> = totals.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Fraction of the first root span's duration covered by the
    /// summed durations of its direct children. `None` when the tree
    /// is empty, the root has no children, or the root's duration is
    /// zero. Meaningful for single-threaded runs where children are
    /// sequential; with parallel workers the fraction can exceed 1.
    pub fn root_child_coverage(&self) -> Option<f64> {
        let root = self.roots.first()?;
        if root.children.is_empty() || root.span.duration_ns == 0 {
            return None;
        }
        let child_ns: u64 = root.children.iter().map(|c| c.span.duration_ns).sum();
        Some(child_ns as f64 / root.span.duration_ns as f64)
    }

    /// Plain-text rendering: one line per span, two-space indentation,
    /// stage and label plus counters. With `redact_durations` the
    /// timing columns are omitted — this is the golden-snapshot format
    /// (structure is deterministic, durations are not).
    pub fn render(&self, redact_durations: bool) -> String {
        let mut out = String::new();
        fn walk(n: &SpanNode, depth: usize, redact: bool, out: &mut String) {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(n.span.stage.name());
            if !n.span.label.is_empty() {
                out.push_str(&format!(" [{}]", n.span.label));
            }
            if n.span.rows_in > 0 || n.span.rows_out > 0 {
                out.push_str(&format!(" rows={}→{}", n.span.rows_in, n.span.rows_out));
            }
            if n.span.bytes > 0 {
                out.push_str(&format!(" bytes={}", n.span.bytes));
            }
            if !redact {
                out.push_str(&format!(
                    " start_us={} dur_us={}",
                    n.span.start_ns / 1_000,
                    n.span.duration_ns / 1_000
                ));
            }
            out.push('\n');
            for c in &n.children {
                walk(c, depth + 1, redact, out);
            }
        }
        for r in &self.roots {
            walk(r, 0, redact_durations, &mut out);
        }
        out
    }

    /// Nested JSON export: each span is an object with `stage`,
    /// `label`, timing in microseconds, counters and a `children`
    /// array.
    pub fn to_json(&self) -> String {
        fn node(n: &SpanNode, out: &mut String) {
            out.push_str(&format!(
                "{{\"id\":{},\"stage\":\"{}\",\"label\":\"{}\",\"tid\":{},\"start_us\":{:.3},\"dur_us\":{:.3},\"rows_in\":{},\"rows_out\":{},\"bytes\":{},\"children\":[",
                n.span.id,
                n.span.stage.name(),
                json_escape(&n.span.label),
                n.span.tid,
                n.span.start_ns as f64 / 1e3,
                n.span.duration_ns as f64 / 1e3,
                n.span.rows_in,
                n.span.rows_out,
                n.span.bytes,
            ));
            for (i, c) in n.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                node(c, out);
            }
            out.push_str("]}");
        }
        let mut out = String::from("[");
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            node(r, &mut out);
        }
        out.push(']');
        out
    }

    /// chrome://tracing (and Perfetto) compatible export: a JSON array
    /// of complete (`"ph":"X"`) events with microsecond timestamps,
    /// one event per span, `tid` preserved from the recording thread.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for span in self.flatten() {
            if !first {
                out.push(',');
            }
            first = false;
            let name = if span.label.is_empty() {
                span.stage.name().to_string()
            } else {
                format!("{} {}", span.stage.name(), span.label)
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"rows_in\":{},\"rows_out\":{},\"bytes\":{}}}}}",
                json_escape(&name),
                span.stage.name(),
                span.start_ns as f64 / 1e3,
                span.duration_ns as f64 / 1e3,
                span.tid,
                span.rows_in,
                span.rows_out,
                span.bytes,
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        id: SpanId,
        parent: Option<SpanId>,
        stage: Stage,
        start_ns: u64,
        dur: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            stage,
            label: String::new(),
            tid: 1,
            start_ns,
            duration_ns: dur,
            rows_in: 0,
            rows_out: 0,
            bytes: 0,
        }
    }

    #[test]
    fn links_records_into_tree() {
        // Drop order: children recorded before parents.
        let tree = SpanTree::from_records(vec![
            rec(3, Some(1), Stage::Aggregate, 500, 400),
            rec(2, Some(1), Stage::Scan, 100, 300),
            rec(1, None, Stage::Query, 0, 1000),
        ]);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.len(), 3);
        let root = &tree.roots[0];
        assert_eq!(root.children.len(), 2);
        // Children sorted by start time, not record order.
        assert_eq!(root.children[0].span.stage, Stage::Scan);
        assert_eq!(root.children[1].span.stage, Stage::Aggregate);
        assert_eq!(tree.root_child_coverage(), Some(0.7));
    }

    #[test]
    fn orphan_parent_becomes_root() {
        let tree = SpanTree::from_records(vec![rec(7, Some(99), Stage::Retry, 10, 5)]);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].span.stage, Stage::Retry);
    }

    #[test]
    fn stage_seconds_is_exclusive_time() {
        let tree = SpanTree::from_records(vec![
            rec(1, None, Stage::Query, 0, 1_000_000_000),
            rec(2, Some(1), Stage::Scan, 0, 600_000_000),
        ]);
        let totals: BTreeMap<Stage, f64> = tree.stage_seconds().into_iter().collect();
        assert!((totals[&Stage::Scan] - 0.6).abs() < 1e-9);
        assert!((totals[&Stage::Query] - 0.4).abs() < 1e-9);
    }

    #[test]
    fn render_redacts_durations() {
        let tree = SpanTree::from_records(vec![
            rec(1, None, Stage::Query, 0, 1000),
            rec(2, Some(1), Stage::Scan, 100, 300),
        ]);
        let golden = tree.render(true);
        assert_eq!(golden, "query\n  scan\n");
        let full = tree.render(false);
        assert!(full.contains("dur_us="));
    }

    #[test]
    fn exports_are_valid_shapes() {
        let mut r = rec(1, None, Stage::Query, 0, 1000);
        r.label = "Q5 \"quoted\"".to_string();
        let tree = SpanTree::from_records(vec![r, rec(2, Some(1), Stage::Scan, 100, 300)]);
        let json = tree.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"stage\":\"scan\""));
        let chrome = tree.to_chrome_trace();
        assert!(chrome.starts_with('[') && chrome.ends_with(']'));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"pid\":1"));
    }
}
