//! # obs
//!
//! Zero-dependency, thread-safe tracing and metrics for the hepquery
//! workspace.
//!
//! * [`TraceCtx`] / [`SpanGuard`] — hierarchical spans with monotonic
//!   timing, parent linkage and per-span counters (rows in/out, bytes).
//!   A disabled context (the default) is a near-no-op: no clock reads,
//!   no allocation, no locking.
//! * [`Stage`] — the typed taxonomy of query stages (`Parse`, `Plan`,
//!   `Scan`, `Decode`, `Filter`, `Materialize`, `Aggregate`,
//!   `QueueWait`, `Retry`, `CacheLookup`) plus the `Query` root.
//! * [`SpanTree`] — the recorded spans of one query, exportable as JSON
//!   ([`SpanTree::to_json`]) and as a chrome://tracing-compatible trace
//!   file ([`SpanTree::to_chrome_trace`]).
//! * [`MetricsRegistry`] — a lock-sharded registry of counters, gauges
//!   and log₂-bucketed histograms with point-in-time text and JSON
//!   snapshots.
//! * [`Log2Histogram`] — the mergeable log₂ histogram behind the
//!   registry, exposed for per-thread latency recording with a
//!   deterministic [`Log2Histogram::merge`] afterwards.
//! * [`CancelToken`] / [`Cancelled`] — cooperative cancellation with
//!   deadline propagation, checked at row-group granularity by the
//!   engines. A disabled token (the default) is a single branch.
//!
//! The crate deliberately has no runtime dependencies (not even
//! workspace shims; tests use the vendored `proptest` shim) so every
//! other crate — including the lowest storage layer — can link it
//! without cycles.

mod cancel;
mod metrics;
mod span;
mod tree;

pub use cancel::{CancelReason, CancelToken, Cancelled};
pub use metrics::{HistogramSummary, Log2Histogram, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use span::{SpanGuard, SpanId, SpanRecord, Stage, TraceCtx};
pub use tree::{SpanNode, SpanTree};

/// Escapes a string for embedding in a JSON document. Exposed so
/// downstream crates hand-rolling JSON reports stay consistent with the
/// trace exports.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
