//! Lock-sharded metrics registry: counters, gauges, log₂ histograms.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::json_escape;

const N_SHARDS: usize = 16;
/// Histogram buckets: bucket `i` covers values in `[2^(i-30), 2^(i-29))`
/// — ~1 ns to ~17 min for seconds-valued observations, with under- and
/// overflow clamped to the edge buckets.
const N_BUCKETS: usize = 60;
const BUCKET_BIAS: i32 = 30;

#[derive(Clone, Debug, PartialEq)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Log2Histogram),
}

/// A mergeable log₂-bucketed histogram — the aggregation primitive
/// behind [`MetricsRegistry`] histograms, exposed so load harnesses can
/// record latency distributions per thread and [`Log2Histogram::merge`]
/// them deterministically afterwards.
///
/// Buckets are powers of two (`[2^k, 2^(k+1))`); quantile estimates
/// return the geometric midpoint of the bucket holding the
/// nearest-rank observation, clamped to the observed `[min, max]`. For
/// values inside the bucketed range (`~1e-9 ..= ~1e9`) an estimate is
/// therefore within one bucket — a factor of √2 either way, i.e. at
/// most 2× relative error — of the exact sample quantile (pinned by
/// `tests/histogram_props.rs`).
#[derive(Clone, Debug, PartialEq)]
pub struct Log2Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; N_BUCKETS],
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Folds `other` into `self`: the result has exactly the bucket
    /// counts, count, min and max of a histogram fed both sample sets
    /// (the sum may differ in the last float bits — addition order).
    pub fn merge(&mut self, other: &Log2Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count > 0 {
            self.min
        } else {
            0.0
        }
    }

    /// Largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count > 0 {
            self.max
        } else {
            0.0
        }
    }

    /// Mean of observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count > 0 {
            self.sum / self.count as f64
        } else {
            0.0
        }
    }

    /// The raw per-bucket counts (bucket `i` covers
    /// `[2^(i-30), 2^(i-29))`).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`, nearest-rank): the
    /// geometric midpoint of the bucket containing the target-ranked
    /// observation, clamped to the observed `[min, max]`. 0.0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Summary statistics (count, sum, min/max, p50/p90/p99/p999).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

fn bucket_index(v: f64) -> usize {
    if v <= 0.0 || !v.is_finite() {
        return 0;
    }
    (v.log2().floor() as i32 + BUCKET_BIAS).clamp(0, N_BUCKETS as i32 - 1) as usize
}

/// Geometric midpoint of bucket `i` (for quantile estimates).
fn bucket_mid(i: usize) -> f64 {
    2f64.powi(i as i32 - BUCKET_BIAS) * std::f64::consts::SQRT_2
}

/// A thread-safe registry of named counters, gauges and histograms.
///
/// Names are hashed onto 16 independently locked shards, so concurrent
/// updates to different metrics rarely contend. Updates are exact:
/// totals observed by [`MetricsRegistry::snapshot`] equal the sum of
/// all completed updates regardless of thread interleaving.
pub struct MetricsRegistry {
    shards: Vec<Mutex<HashMap<String, Metric>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            shards: (0..N_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Metric>> {
        // FNV-1a — stable across runs, no dependency on std's hasher.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % N_SHARDS as u64) as usize]
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut shard = self.shard(name).lock().unwrap();
        match shard.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(v) => *v += delta,
            other => *other = Metric::Counter(delta),
        }
    }

    /// Adds 1 to the named counter.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Sets the named gauge to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        let mut shard = self.shard(name).lock().unwrap();
        shard.insert(name.to_string(), Metric::Gauge(v));
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, v: f64) {
        let mut shard = self.shard(name).lock().unwrap();
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Log2Histogram::new()))
        {
            Metric::Histogram(h) => h.observe(v),
            other => {
                let mut h = Log2Histogram::new();
                h.observe(v);
                *other = Metric::Histogram(h);
            }
        }
    }

    /// Folds a pre-aggregated histogram into the named histogram —
    /// equivalent to replaying every observation `hist` has seen.
    pub fn merge_histogram(&self, name: &str, hist: &Log2Histogram) {
        let mut shard = self.shard(name).lock().unwrap();
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Log2Histogram::new()))
        {
            Metric::Histogram(h) => h.merge(hist),
            other => *other = Metric::Histogram(hist.clone()),
        }
    }

    /// The named histogram's current state, when it exists.
    pub fn histogram_state(&self, name: &str) -> Option<Log2Histogram> {
        let shard = self.shard(name).lock().unwrap();
        match shard.get(name) {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// A point-in-time snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<(String, MetricValue)> = Vec::new();
        for shard in &self.shards {
            for (name, metric) in shard.lock().unwrap().iter() {
                let value = match metric {
                    Metric::Counter(v) => MetricValue::Counter(*v),
                    Metric::Gauge(v) => MetricValue::Gauge(*v),
                    Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                };
                entries.push((name.clone(), value));
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { entries }
    }
}

/// Snapshot value of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Last-set gauge.
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistogramSummary),
}

/// Summary statistics of one histogram at snapshot time. Quantiles are
/// estimated from log₂ buckets (within a factor of √2) and clamped to
/// the observed min/max.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Estimated 99.9th percentile.
    pub p999: f64,
}

impl HistogramSummary {
    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count > 0 {
            self.sum / self.count as f64
        } else {
            0.0
        }
    }
}

/// Point-in-time view of a [`MetricsRegistry`].
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Looks up a counter's value (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find_map(|(n, v)| match v {
                MetricValue::Counter(c) if n == name => Some(*c),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Looks up a gauge's value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    /// Looks up a histogram summary.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Histogram(h) if n == name => Some(h),
            _ => None,
        })
    }

    /// One `name value` line per metric (histograms expand to
    /// `_count` / `_sum` / `_p50` / `_p90` / `_p99` / `_p999` lines) —
    /// the text exposition format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => out.push_str(&format!("{name} {v}\n")),
                MetricValue::Gauge(v) => out.push_str(&format!("{name} {v}\n")),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("{name}_count {}\n", h.count));
                    out.push_str(&format!("{name}_sum {:.9}\n", h.sum));
                    out.push_str(&format!("{name}_p50 {:.9}\n", h.p50));
                    out.push_str(&format!("{name}_p90 {:.9}\n", h.p90));
                    out.push_str(&format!("{name}_p99 {:.9}\n", h.p99));
                    out.push_str(&format!("{name}_p999 {:.9}\n", h.p999));
                }
            }
        }
        out
    }

    /// JSON object keyed by metric name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", json_escape(name)));
            match value {
                MetricValue::Counter(v) => out.push_str(&format!("{v}")),
                MetricValue::Gauge(v) => out.push_str(&format!("{v}")),
                MetricValue::Histogram(h) => out.push_str(&format!(
                    "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                    h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99, h.p999
                )),
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.counter_add("queries_total", 3);
        reg.counter_inc("queries_total");
        reg.gauge_set("queue_depth", 7.5);
        for v in [0.001, 0.002, 0.004, 0.1] {
            reg.observe("latency_seconds", v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("queries_total"), 4);
        assert_eq!(snap.gauge("queue_depth"), Some(7.5));
        let h = snap.histogram("latency_seconds").unwrap();
        assert_eq!(h.count, 4);
        assert!((h.sum - 0.107).abs() < 1e-12);
        assert_eq!(h.min, 0.001);
        assert_eq!(h.max, 0.1);
        assert!(h.p50 >= h.min && h.p50 <= h.max);
        assert!(h.p99 >= h.p50);
        assert!(h.p999 >= h.p99);
        let text = snap.to_text();
        assert!(text.contains("queries_total 4"));
        assert!(text.contains("latency_seconds_count 4"));
        assert!(text.contains("latency_seconds_p999"));
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"queries_total\":4"));
        assert!(json.contains("\"p999\":"));
    }

    #[test]
    fn totals_exact_under_8_thread_contention() {
        let reg = Arc::new(MetricsRegistry::new());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        reg.counter_inc("shared_counter");
                        reg.counter_add(&format!("per_thread_{t}"), 2);
                        reg.observe("obs_values", (i % 7) as f64 + 0.5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("shared_counter"), THREADS as u64 * PER_THREAD);
        for t in 0..THREADS {
            assert_eq!(snap.counter(&format!("per_thread_{t}")), PER_THREAD * 2);
        }
        let h = snap.histogram("obs_values").unwrap();
        assert_eq!(h.count, THREADS as u64 * PER_THREAD);
        let expected_sum: f64 =
            (0..PER_THREAD).map(|i| (i % 7) as f64 + 0.5).sum::<f64>() * THREADS as f64;
        assert!((h.sum - expected_sum).abs() < 1e-6 * expected_sum);
    }

    #[test]
    fn bucket_index_handles_edge_values() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), 0);
        assert!(bucket_index(1e-12) < bucket_index(1.0));
        assert!(bucket_index(1.0) < bucket_index(1e6));
        assert_eq!(bucket_index(1e300), N_BUCKETS - 1);
    }

    #[test]
    fn merge_equals_concatenated_observations() {
        let a_samples = [0.001, 0.5, 12.0, 0.004];
        let b_samples = [0.25, 90.0, 0.001];
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut both = Log2Histogram::new();
        for &v in &a_samples {
            a.observe(v);
            both.observe(v);
        }
        for &v in &b_samples {
            b.observe(v);
            both.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.bucket_counts(), both.bucket_counts());
        assert!((a.sum() - both.sum()).abs() < 1e-12);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), both.quantile(q));
        }
    }

    #[test]
    fn merge_histogram_folds_into_registry() {
        let reg = MetricsRegistry::new();
        reg.observe("lat", 0.010);
        let mut local = Log2Histogram::new();
        local.observe(0.020);
        local.observe(0.160);
        reg.merge_histogram("lat", &local);
        let snap = reg.snapshot();
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0.010);
        assert_eq!(h.max, 0.160);
        let state = reg.histogram_state("lat").unwrap();
        assert_eq!(state.count(), 3);
        assert!(reg.histogram_state("absent").is_none());
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        let s = h.summary();
        assert_eq!(
            (s.count, s.min, s.max, s.p50, s.p999),
            (0, 0.0, 0.0, 0.0, 0.0)
        );
    }
}
