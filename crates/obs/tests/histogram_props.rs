//! Property tests for [`obs::Log2Histogram`] (ISSUE 8 satellite):
//!
//! 1. quantile estimates are within one log₂ bucket — at most 2×
//!    relative error — of the exact nearest-rank sample quantile, for
//!    arbitrary positive sample sets inside the bucketed range;
//! 2. merging two histograms is indistinguishable from building one
//!    histogram over the concatenated samples (bucket counts, count,
//!    min, max and every quantile are *exactly* equal; the sum agrees
//!    up to float addition order).

use obs::Log2Histogram;
use proptest::prelude::*;

/// Exact nearest-rank quantile of an unsorted sample set — the
/// definition the histogram estimate is held to.
fn exact_quantile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let target = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[target.clamp(1, sorted.len()) - 1]
}

fn histogram_of(samples: &[f64]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for &v in samples {
        h.observe(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Estimated quantiles stay within one bucket (≤2× relative error)
    /// of the exact nearest-rank quantile, across the whole quantile
    /// range including the deep tail.
    #[test]
    fn quantiles_within_one_bucket_of_exact(
        samples in proptest::collection::vec(1e-6f64..1e6, 1..500),
    ) {
        let h = histogram_of(&samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&samples, q);
            let est = h.quantile(q);
            prop_assert!(
                est >= exact * 0.5 && est <= exact * 2.0,
                "q={} exact={} est={} (n={})",
                q, exact, est, samples.len()
            );
        }
        // The estimate never leaves the observed range.
        prop_assert!(h.quantile(0.0) >= h.min() && h.quantile(1.0) <= h.max());
    }

    /// `merge` of two histograms equals the histogram of the
    /// concatenated samples.
    #[test]
    fn merge_equals_histogram_of_concatenation(
        a in proptest::collection::vec(1e-9f64..1e9, 0..300),
        b in proptest::collection::vec(1e-9f64..1e9, 0..300),
    ) {
        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        let whole = histogram_of(&concat);
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert_eq!(merged.bucket_counts(), whole.bucket_counts());
        let scale = whole.sum().abs().max(1.0);
        prop_assert!((merged.sum() - whole.sum()).abs() <= 1e-9 * scale);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }

    /// Merging is order-insensitive: a ⊕ b and b ⊕ a agree on every
    /// deterministic field, so multi-threaded collectors can merge in
    /// any order.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(1e-6f64..1e6, 0..200),
        b in proptest::collection::vec(1e-6f64..1e6, 0..200),
    ) {
        let (ha, hb) = (histogram_of(&a), histogram_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
        prop_assert_eq!(ab.bucket_counts(), ba.bucket_counts());
    }
}
