//! # chaos
//!
//! Deterministic chaos testing for the benchmark engines: a seeded
//! random-plan generator over the CMS schema, a **differential fuzzing**
//! harness that executes every generated plan on all five systems under
//! test (three SQL dialects, JSONiq, RDataFrame) and compares them
//! bin-for-bin against the interpreter oracle
//! ([`hepbench_core::fuzzplan::FuzzPlan::reference`]), and a
//! **fault-injection sweep** that re-runs plans under every
//! [`FaultClass`] and asserts the only two acceptable outcomes:
//!
//! * the exact oracle histogram (possibly after bounded retries of a
//!   transient fault), or
//! * a typed [`nf2_columnar::ScanError`] carrying table, row group and
//!   leaf context.
//!
//! A wrong histogram, an untyped error, a panic or a hang is a bug by
//! construction. Everything is a pure function of the seed, so any
//! failure replays bit-for-bit.

use std::sync::Arc;
use std::time::Duration;

use hep_model::Event;
use hepbench_core::adapters::{AdapterError, ExecEnv};
use hepbench_core::fuzzplan::{
    CountPred, ElemPred, FillSource, FuzzPlan, ScalarPred, ALL_CMPS, ALL_JET_FIELDS,
    ALL_SCALAR_LEAVES,
};
use nf2_columnar::{FaultClass, FaultConfig, FaultInjector, Table};
use physics::{HistSpec, Histogram};

/// Tiny seeded generator (splitmix64 core) so the crate needs no RNG
/// dependency and streams are reproducible from a single `u64`.
pub struct ChaosRng(u64);

impl ChaosRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform index below `n`.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

/// Rounds to one decimal so every lowering prints the literal exactly
/// (via [`hepbench_core::queries::flit`]) and every parser reads back the
/// identical `f64`.
fn quantize(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// Seeded stream of [`FuzzPlan`]s over the CMS schema.
pub struct PlanGenerator {
    rng: ChaosRng,
    next_id: u64,
}

impl PlanGenerator {
    /// A generator whose whole stream is a function of `seed`.
    pub fn new(seed: u64) -> PlanGenerator {
        PlanGenerator {
            rng: ChaosRng::new(seed),
            next_id: 0,
        }
    }

    fn scalar_pred(&mut self) -> ScalarPred {
        let leaf = *self.rng.pick(ALL_SCALAR_LEAVES);
        let (lo, hi) = leaf.range();
        ScalarPred {
            leaf,
            cmp: *self.rng.pick(ALL_CMPS),
            lit: quantize(self.rng.range(lo, hi)),
        }
    }

    fn elem_pred(&mut self) -> ElemPred {
        let field = *self.rng.pick(ALL_JET_FIELDS);
        let (lo, hi) = field.range();
        ElemPred {
            field,
            cmp: *self.rng.pick(ALL_CMPS),
            lit: quantize(self.rng.range(lo, hi)),
        }
    }

    /// The next plan in the stream.
    pub fn next_plan(&mut self) -> FuzzPlan {
        let id = self.next_id;
        self.next_id += 1;
        let (fill, fill_range) = if self.rng.f64() < 0.5 {
            let leaf = *self.rng.pick(ALL_SCALAR_LEAVES);
            (FillSource::Scalar(leaf), leaf.range())
        } else {
            let field = *self.rng.pick(ALL_JET_FIELDS);
            let elem_pred = (self.rng.f64() < 0.5).then(|| self.elem_pred());
            (FillSource::Jets { field, elem_pred }, field.range())
        };
        let n_scalar = self.rng.index(3);
        let scalar_preds = (0..n_scalar).map(|_| self.scalar_pred()).collect();
        let count_pred = (self.rng.f64() < 0.4).then(|| CountPred {
            elem: self.elem_pred(),
            min_count: 1 + self.rng.index(3) as u32,
        });
        // Jitter the histogram range so under/overflow paths are
        // exercised; keep bounds on the 0.1 grid like the literals.
        let bins = *self.rng.pick(&[20usize, 50, 100]);
        let (lo, hi) = fill_range;
        let lo = quantize(self.rng.range(lo, lo + 0.25 * (hi - lo)));
        let hi = quantize(self.rng.range(lo + 0.25 * (hi - lo), hi.max(lo + 1.0)));
        let spec = HistSpec::new(bins, lo, hi.max(lo + 0.2));
        FuzzPlan {
            id,
            fill,
            scalar_preds,
            count_pred,
            spec,
        }
    }
}

/// Convenience: the first `n` plans of `seed`'s stream.
pub fn generate_plans(seed: u64, n: usize) -> Vec<FuzzPlan> {
    let mut g = PlanGenerator::new(seed);
    (0..n).map(|_| g.next_plan()).collect()
}

/// One system under differential test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineUnderTest {
    /// `engine-sql`, BigQuery dialect.
    BigQuery,
    /// `engine-sql`, Presto dialect.
    Presto,
    /// `engine-sql`, Athena dialect.
    Athena,
    /// `engine-flwor` (JSONiq).
    Jsoniq,
    /// `engine-rdf` (RDataFrame).
    Rdf,
    /// The `physical-ir` compiled executor (direct plan lowering, no
    /// parser in the loop) — the differential oracle check for the fused
    /// batch kernels the engines' compiled paths share.
    Compiled,
    /// The morsel-parallel compiled executor (`exec_par`) — same lowered
    /// plan as [`EngineUnderTest::Compiled`], executed on a multi-worker
    /// pool with a plan-derived steal seed, so the sweeps also hold the
    /// exchange/partial-aggregation merge to bin-exactness under
    /// adversarial steal interleavings.
    CompiledParallel,
}

/// All engines, in reporting order.
pub const ALL_ENGINES: &[EngineUnderTest] = &[
    EngineUnderTest::BigQuery,
    EngineUnderTest::Presto,
    EngineUnderTest::Athena,
    EngineUnderTest::Jsoniq,
    EngineUnderTest::Rdf,
    EngineUnderTest::Compiled,
    EngineUnderTest::CompiledParallel,
];

/// Worker count [`EngineUnderTest::CompiledParallel`] runs with: odd and
/// > 1, so morsels distribute unevenly and stealing actually happens.
pub const PARALLEL_FUZZ_WORKERS: usize = 3;

impl EngineUnderTest {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            EngineUnderTest::BigQuery => "BigQuery SQL",
            EngineUnderTest::Presto => "Presto SQL",
            EngineUnderTest::Athena => "Athena SQL",
            EngineUnderTest::Jsoniq => "JSONiq",
            EngineUnderTest::Rdf => "RDataFrame",
            EngineUnderTest::Compiled => "Compiled IR",
            EngineUnderTest::CompiledParallel => "Compiled IR (parallel)",
        }
    }

    /// Executes `plan` on this engine in `env`.
    pub fn run(
        &self,
        plan: &FuzzPlan,
        table: &Arc<Table>,
        env: &ExecEnv,
    ) -> Result<Histogram, AdapterError> {
        match self {
            EngineUnderTest::BigQuery => plan.run_sql(engine_sql::Dialect::bigquery(), table, env),
            EngineUnderTest::Presto => plan.run_sql(engine_sql::Dialect::presto(), table, env),
            EngineUnderTest::Athena => plan.run_sql(engine_sql::Dialect::athena(), table, env),
            EngineUnderTest::Jsoniq => plan.run_jsoniq(table, env),
            EngineUnderTest::Rdf => plan.run_rdf(table, env),
            EngineUnderTest::Compiled => plan.run_compiled(table, env),
            // Steal order is derived from the plan id: every plan sees a
            // different (but reproducible) interleaving.
            EngineUnderTest::CompiledParallel => plan.run_compiled_parallel(
                table,
                env,
                PARALLEL_FUZZ_WORKERS,
                splitmix64_once(plan.id),
            ),
        }
    }
}

/// One splitmix64 step, for deriving per-plan steal seeds.
fn splitmix64_once(x: u64) -> u64 {
    let mut s = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    s ^ (s >> 31)
}

/// Outcome of a differential fuzzing run.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Plans executed.
    pub plans: usize,
    /// Individual engine-vs-oracle comparisons.
    pub checks: usize,
    /// Human-readable description of every divergence (empty ⇒ pass).
    pub divergences: Vec<String>,
}

impl DiffReport {
    /// Whether the run found no divergence.
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Runs `n_plans` seeded plans on every engine (fault-free) and compares
/// each result bin-for-bin against the interpreter oracle.
pub fn differential_fuzz(
    seed: u64,
    n_plans: usize,
    events: &[Event],
    table: &Arc<Table>,
) -> DiffReport {
    let env = ExecEnv::seed();
    let mut report = DiffReport::default();
    let mut generator = PlanGenerator::new(seed);
    for _ in 0..n_plans {
        let plan = generator.next_plan();
        let oracle = plan.reference(events);
        report.plans += 1;
        for engine in ALL_ENGINES {
            report.checks += 1;
            match engine.run(&plan, table, &env) {
                Ok(h) if h.counts_equal(&oracle) => {}
                Ok(h) => report.divergences.push(format!(
                    "{} {}: histogram diverged from oracle \
                     (engine total {}, oracle total {})\nplan: {:?}",
                    plan.label(),
                    engine.name(),
                    h.total(),
                    oracle.total(),
                    plan
                )),
                Err(e) => report.divergences.push(format!(
                    "{} {}: failed fault-free: {e}\nplan: {:?}",
                    plan.label(),
                    engine.name(),
                    plan
                )),
            }
        }
    }
    report
}

/// Runs `n_plans` seeded plans on every engine twice — zone-map pruning
/// forced off, then forced on — and requires both runs to match the
/// interpreter oracle bin-for-bin. Pruning is a storage-level rewrite
/// (skip row groups whose statistics refute a filter), so *any*
/// divergence between the two runs is a soundness bug: a zone map that
/// pruned a group the filter would not have emptied.
pub fn pruning_differential_fuzz(
    seed: u64,
    n_plans: usize,
    events: &[Event],
    table: &Arc<Table>,
) -> DiffReport {
    let env_off = ExecEnv {
        zone_map_pruning: Some(false),
        ..ExecEnv::seed()
    };
    let env_on = ExecEnv {
        zone_map_pruning: Some(true),
        ..ExecEnv::seed()
    };
    let mut report = DiffReport::default();
    let mut generator = PlanGenerator::new(seed);
    for _ in 0..n_plans {
        let plan = generator.next_plan();
        let oracle = plan.reference(events);
        report.plans += 1;
        for engine in ALL_ENGINES {
            report.checks += 1;
            let off = engine.run(&plan, table, &env_off);
            let on = engine.run(&plan, table, &env_on);
            match (off, on) {
                (Ok(a), Ok(b)) => {
                    if !a.counts_equal(&oracle) {
                        report.divergences.push(format!(
                            "{} {}: pruning-off run diverged from oracle\nplan: {:?}",
                            plan.label(),
                            engine.name(),
                            plan
                        ));
                    } else if !b.counts_equal(&a) {
                        report.divergences.push(format!(
                            "{} {}: pruning changed the histogram \
                             (off total {}, on total {})\nplan: {:?}",
                            plan.label(),
                            engine.name(),
                            a.total(),
                            b.total(),
                            plan
                        ));
                    }
                }
                (Err(e), _) | (_, Err(e)) => report.divergences.push(format!(
                    "{} {}: failed fault-free: {e}\nplan: {:?}",
                    plan.label(),
                    engine.name(),
                    plan
                )),
            }
        }
    }
    report
}

/// Fault classes the sweep injects (every member of the taxonomy that
/// surfaces as an error value or a delay; `Panic` is exercised separately
/// by the service panic-safety tests).
pub const SWEPT_FAULTS: &[FaultClass] = &[
    FaultClass::Io,
    FaultClass::ChecksumMismatch,
    FaultClass::TruncatedRowGroup,
    FaultClass::Latency,
];

/// Outcome of one fault class across the sweep.
#[derive(Debug)]
pub struct FaultReport {
    /// The injected class.
    pub class: FaultClass,
    /// Engine runs performed under this class.
    pub runs: usize,
    /// Runs that returned the exact oracle histogram (directly, or after
    /// transient-fault retries).
    pub clean_results: usize,
    /// Runs that surfaced a typed, context-carrying scan error.
    pub typed_errors: usize,
    /// Retries performed against transient faults.
    pub retries: usize,
    /// Contract violations (wrong histogram, untyped/wrong-class error,
    /// retry budget exhausted). Empty ⇒ pass.
    pub violations: Vec<String>,
}

impl FaultReport {
    /// Whether this class met the fault contract everywhere.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Per-chunk fault probability used by the sweep: high enough that every
/// class fires on multi-group tables, low enough that most runs finish.
pub const SWEEP_FAULT_P: f64 = 0.05;

/// Retry budget of the sweep's transient phase, mirroring the
/// query-service retry loop. Each retry burns exactly one faulting chunk
/// (the scan aborts at the first fault), so the budget must exceed the
/// number of faulted chunks in the widest projection — JSONiq scans every
/// leaf, ~`0.05 × groups × leaves` faults on the default dataset.
pub const SWEEP_MAX_RETRIES: usize = 64;

/// Runs `n_plans` seeded plans on every engine under every fault class,
/// in two phases per class:
///
/// * **persistent** (`transient_attempts = 0`): the engine must return
///   either the exact oracle histogram (no chunk of its projection
///   faulted) or a typed [`nf2_columnar::ScanError`] of the injected
///   class — never a wrong histogram;
/// * **transient** (`transient_attempts = 1`) with bounded retries: the
///   engine must converge to the exact oracle histogram.
///
/// Latency faults must never produce an error in either phase.
pub fn fault_sweep(
    seed: u64,
    n_plans: usize,
    events: &[Event],
    table: &Arc<Table>,
) -> Vec<FaultReport> {
    let plans = generate_plans(seed, n_plans);
    SWEPT_FAULTS
        .iter()
        .map(|&class| {
            let mut report = FaultReport {
                class,
                runs: 0,
                clean_results: 0,
                typed_errors: 0,
                retries: 0,
                violations: Vec::new(),
            };
            for plan in &plans {
                let oracle = plan.reference(events);
                for engine in ALL_ENGINES {
                    persistent_phase(&mut report, class, seed, plan, &oracle, engine, table);
                    transient_phase(&mut report, class, seed, plan, &oracle, engine, table);
                }
            }
            report
        })
        .collect()
}

/// Persistent faults: typed error of the right class, or untouched result.
fn persistent_phase(
    report: &mut FaultReport,
    class: FaultClass,
    seed: u64,
    plan: &FuzzPlan,
    oracle: &Histogram,
    engine: &EngineUnderTest,
    table: &Arc<Table>,
) {
    let env = ExecEnv {
        fault_injector: Some(Arc::new(FaultInjector::new(FaultConfig {
            transient_attempts: 0,
            ..FaultConfig::only(class, SWEEP_FAULT_P, seed)
        }))),
        ..ExecEnv::seed()
    };
    report.runs += 1;
    match engine.run(plan, table, &env) {
        Ok(h) if h.counts_equal(oracle) => report.clean_results += 1,
        Ok(_) => report.violations.push(format!(
            "{} {} persistent {}: WRONG histogram instead of typed error",
            plan.label(),
            engine.name(),
            class.name()
        )),
        Err(e) => match &e.scan {
            Some(s) if s.class == class && !s.leaf.is_empty() => report.typed_errors += 1,
            Some(s) => report.violations.push(format!(
                "{} {} persistent {}: wrong fault class in error: {s}",
                plan.label(),
                engine.name(),
                class.name()
            )),
            None => report.violations.push(format!(
                "{} {} persistent {}: untyped error: {e}",
                plan.label(),
                engine.name(),
                class.name()
            )),
        },
    }
}

/// Transient faults + bounded retry: must converge to the oracle.
fn transient_phase(
    report: &mut FaultReport,
    class: FaultClass,
    seed: u64,
    plan: &FuzzPlan,
    oracle: &Histogram,
    engine: &EngineUnderTest,
    table: &Arc<Table>,
) {
    let env = ExecEnv {
        fault_injector: Some(Arc::new(FaultInjector::new(FaultConfig {
            transient_attempts: 1,
            ..FaultConfig::only(class, SWEEP_FAULT_P, seed)
        }))),
        ..ExecEnv::seed()
    };
    report.runs += 1;
    for attempt in 0..=SWEEP_MAX_RETRIES {
        match engine.run(plan, table, &env) {
            Ok(h) if h.counts_equal(oracle) => {
                report.clean_results += 1;
                return;
            }
            Ok(_) => {
                report.violations.push(format!(
                    "{} {} transient {}: WRONG histogram after {attempt} retries",
                    plan.label(),
                    engine.name(),
                    class.name()
                ));
                return;
            }
            Err(e) if e.retryable() && attempt < SWEEP_MAX_RETRIES => report.retries += 1,
            Err(e) => {
                report.violations.push(format!(
                    "{} {} transient {}: did not converge after {attempt} retries: {e}",
                    plan.label(),
                    engine.name(),
                    class.name()
                ));
                return;
            }
        }
    }
}

/// Outcome of the cancellation sweep.
#[derive(Debug)]
pub struct CancelReport {
    /// Engine runs performed.
    pub runs: usize,
    /// Runs stopped by a tripped token and surfaced as a typed
    /// [`obs::Cancelled`] error.
    pub cancellations: usize,
    /// Runs that finished before their cancel point with the exact
    /// oracle histogram.
    pub clean_results: usize,
    /// Contract violations (wrong histogram, untyped error, retryable
    /// cancellation, inconsistent buffer pool). Empty ⇒ pass.
    pub violations: Vec<String>,
}

impl CancelReport {
    /// Whether every run met the cancellation contract.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Per-chunk injected latency of the cancellation sweep: long enough
/// that a cancel point sampled within a run reliably lands mid-scan.
pub const CANCEL_SWEEP_LATENCY: Duration = Duration::from_micros(300);

/// Plans the sweep additionally probes with a deterministic cancel
/// raised between parallel morsel execution and the exchange merge.
pub const MERGE_CANCEL_PROBES: usize = 3;

/// Runs `n_plans` seeded plans on every engine with a randomized cancel
/// point and asserts the all-or-nothing contract: every run either
/// returns the **byte-identical oracle histogram** (the cancel landed
/// after completion) or a **typed [`obs::Cancelled`] error** — never a
/// partial or corrupt result, and never an untyped failure.
///
/// The cancel points come from two mechanisms, alternating per run:
///
/// * a **deadline** sampled inside the run's latency-stretched duration
///   ([`FaultInjector`] latency faults slow every physical chunk read,
///   so the deadline trips at an effectively random row group);
/// * an **explicit cancel** from a second thread after a sampled delay —
///   the service's `Ticket::cancel()` path.
///
/// A third, deterministic phase targets the parallel executor's merge:
/// each probed plan runs all its morsels to completion on the worker
/// pool, the token is cancelled, and the exchange merge must abort with
/// a typed explicit cancellation instead of assembling a histogram from
/// the finished partials.
///
/// All runs share one [`nf2_columnar::ChunkCache`] buffer pool. After the storm of
/// aborted scans the pool must still honor its budget and serve
/// byte-identical results to a fault-free rerun — a cancelled scan must
/// not leak partially decoded chunks or corrupt resident ones.
pub fn cancellation_sweep(
    seed: u64,
    n_plans: usize,
    events: &[Event],
    table: &Arc<Table>,
) -> CancelReport {
    use std::time::Instant;

    const POOL_BUDGET: usize = 8 << 20;
    let plans = generate_plans(seed, n_plans);
    let mut rng = ChaosRng::new(seed ^ 0xCA9C_E11E);
    let pool = Arc::new(nf2_columnar::ChunkCache::new(POOL_BUDGET));
    let mut report = CancelReport {
        runs: 0,
        cancellations: 0,
        clean_results: 0,
        violations: Vec::new(),
    };
    for plan in &plans {
        let oracle = plan.reference(events);
        for engine in ALL_ENGINES {
            report.runs += 1;
            // The latency storm stretches the run so the sampled cancel
            // point lands at an unpredictable row group.
            let injector = Arc::new(FaultInjector::new(FaultConfig {
                latency: CANCEL_SWEEP_LATENCY,
                ..FaultConfig::only(FaultClass::Latency, 1.0, seed ^ report.runs as u64)
            }));
            let delay = Duration::from_micros(rng.range(0.0, 8_000.0) as u64);
            let explicit = report.runs.is_multiple_of(2);
            let cancel = if explicit {
                obs::CancelToken::new()
            } else {
                obs::CancelToken::with_deadline(Instant::now() + delay)
            };
            let env = ExecEnv {
                fault_injector: Some(injector),
                chunk_cache: Some(pool.clone()),
                cancel: cancel.clone(),
                ..ExecEnv::seed()
            };
            let canceller = explicit.then(|| {
                let cancel = cancel.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(delay);
                    cancel.cancel();
                })
            });
            let outcome = engine.run(plan, table, &env);
            if let Some(h) = canceller {
                h.join().expect("canceller thread");
            }
            match outcome {
                Ok(h) if h.counts_equal(&oracle) => report.clean_results += 1,
                Ok(_) => report.violations.push(format!(
                    "{} {}: PARTIAL/CORRUPT histogram survived cancellation",
                    plan.label(),
                    engine.name()
                )),
                Err(e) => match e.cancelled.as_deref() {
                    Some(c) => {
                        report.cancellations += 1;
                        if c.rows_processed as usize > events.len() {
                            report.violations.push(format!(
                                "{} {}: cancelled after {} rows but the table has {}",
                                plan.label(),
                                engine.name(),
                                c.rows_processed,
                                events.len()
                            ));
                        }
                        if e.retryable() {
                            report.violations.push(format!(
                                "{} {}: cancellation must never be retryable",
                                plan.label(),
                                engine.name()
                            ));
                        }
                    }
                    None => report.violations.push(format!(
                        "{} {}: non-cancellation error under latency faults: {e}",
                        plan.label(),
                        engine.name()
                    )),
                },
            }
        }
    }
    // Deterministic merge-phase cancellation: the parallel executor's
    // exchange re-checks the token while merging partial aggregates, so
    // a cancel raised *between* morsel execution and the merge must
    // surface as a typed cancellation — never as a partial histogram
    // assembled from already-finished workers.
    for plan in plans.iter().take(MERGE_CANCEL_PROBES) {
        report.runs += 1;
        let phys = plan.physical();
        let cancel = obs::CancelToken::new();
        let opts = exec_par::ParOptions {
            workers: PARALLEL_FUZZ_WORKERS,
            steal_seed: splitmix64_once(plan.id),
            recovery: None,
        };
        match exec_par::run_morsels(
            &phys,
            table,
            None,
            &obs::TraceCtx::disabled(),
            &cancel,
            None,
            &opts,
        ) {
            Ok((exchange, _)) => {
                cancel.cancel();
                match exchange.merge(&cancel) {
                    Ok(_) => report.violations.push(format!(
                        "{}: exchange merge ignored a cancel raised before it drained",
                        plan.label()
                    )),
                    Err(c) => {
                        report.cancellations += 1;
                        if !matches!(c.reason, obs::CancelReason::Explicit) {
                            report.violations.push(format!(
                                "{}: merge-phase cancel mislabelled as {:?}",
                                plan.label(),
                                c.reason
                            ));
                        }
                    }
                }
            }
            Err(e) => report.violations.push(format!(
                "{}: fault-free parallel morsel run failed: {e}",
                plan.label()
            )),
        }
    }
    // Buffer-pool consistency after the aborted scans.
    if pool.resident_bytes() > POOL_BUDGET {
        report.violations.push(format!(
            "buffer pool over budget after cancellations: {} > {}",
            pool.resident_bytes(),
            POOL_BUDGET
        ));
    }
    let c = pool.counters();
    if c.insertions < c.evictions {
        report
            .violations
            .push(format!("buffer pool evicted more than it admitted: {c:?}"));
    }
    // A fault-free rerun over the same pool must still match the oracle:
    // cancelled scans must not have left corrupt chunks behind.
    let env = ExecEnv {
        chunk_cache: Some(pool.clone()),
        ..ExecEnv::seed()
    };
    for plan in plans.iter().take(3) {
        let oracle = plan.reference(events);
        for engine in ALL_ENGINES {
            match engine.run(plan, table, &env) {
                Ok(h) if h.counts_equal(&oracle) => {}
                Ok(_) => report.violations.push(format!(
                    "{} {}: post-cancellation rerun diverged (pool corrupt?)",
                    plan.label(),
                    engine.name()
                )),
                Err(e) => report.violations.push(format!(
                    "{} {}: post-cancellation rerun failed: {e}",
                    plan.label(),
                    engine.name()
                )),
            }
        }
    }
    report
}

/// Outcome of the morsel-recovery sweep.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Executor runs performed (plans × schedules × workers × steal seeds,
    /// plus the engine-level conservation probes).
    pub runs: usize,
    /// Runs that converged to the byte-identical serial oracle.
    pub clean_results: usize,
    /// Persistent-fault runs that failed fast with the right typed error.
    pub typed_errors: usize,
    /// Total recovery interventions observed (retries, quarantines,
    /// reassignments, speculations, worker retirements). Zero means the
    /// injector never fired — a dead sweep.
    pub interventions: u64,
    /// Workers retired across the sweep (worker-kill schedules).
    pub workers_lost: u64,
    /// Contract violations. Empty ⇒ pass.
    pub violations: Vec<String>,
}

impl RecoveryReport {
    /// Whether every run met the recovery contract.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Worker counts the recovery sweep exercises (1 covers the
/// recovery-through-the-pool serial case, 8 oversubscribes the default
/// fuzz dataset's row groups).
pub const RECOVERY_SWEEP_WORKERS: &[usize] = &[1, 2, 4, 8];

/// What a recovery schedule must end in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RecoveryOutcome {
    /// Byte-identical oracle bins despite the injected faults.
    Recovers,
    /// A typed scan fault of the injected class after bounded retries.
    FailsTypedFault,
    /// A typed [`physical_ir::PirError::MorselPanic`].
    FailsMorselPanic,
}

/// One adversarial fault schedule of the recovery sweep.
struct RecoverySchedule {
    name: &'static str,
    class: FaultClass,
    p: f64,
    transient_attempts: u32,
    panic_budget: u32,
    expect: RecoveryOutcome,
}

/// The sweep's schedules: every retryable class transient, panics as
/// poison pills (quarantine) and as worker killers (`panic_budget 0` ⇒
/// retire + reassign, degrading to the serial fallback at one worker),
/// and persistent faults that must fail fast with typed errors.
/// Transient probabilities stay below saturation: morsel probes fail
/// fast (one leaf per attempt), so a morsel's faulting-leaf count must
/// not exceed the retry budget.
const RECOVERY_SCHEDULES: &[RecoverySchedule] = &[
    RecoverySchedule {
        name: "transient-io",
        class: FaultClass::Io,
        p: 0.35,
        transient_attempts: 1,
        panic_budget: 1,
        expect: RecoveryOutcome::Recovers,
    },
    RecoverySchedule {
        name: "transient-checksum",
        class: FaultClass::ChecksumMismatch,
        p: 0.35,
        transient_attempts: 1,
        panic_budget: 1,
        expect: RecoveryOutcome::Recovers,
    },
    RecoverySchedule {
        name: "transient-truncated",
        class: FaultClass::TruncatedRowGroup,
        p: 0.35,
        transient_attempts: 1,
        panic_budget: 1,
        expect: RecoveryOutcome::Recovers,
    },
    RecoverySchedule {
        name: "poison-pill",
        class: FaultClass::Panic,
        p: 0.2,
        transient_attempts: 1,
        panic_budget: u32::MAX,
        expect: RecoveryOutcome::Recovers,
    },
    RecoverySchedule {
        name: "worker-kill",
        class: FaultClass::Panic,
        p: 0.2,
        transient_attempts: 1,
        panic_budget: 0,
        expect: RecoveryOutcome::Recovers,
    },
    RecoverySchedule {
        name: "persistent-io",
        class: FaultClass::Io,
        p: 1.0,
        transient_attempts: 0,
        panic_budget: 1,
        expect: RecoveryOutcome::FailsTypedFault,
    },
    RecoverySchedule {
        name: "persistent-panic",
        class: FaultClass::Panic,
        p: 1.0,
        transient_attempts: 0,
        panic_budget: 1,
        expect: RecoveryOutcome::FailsMorselPanic,
    },
];

/// Morsel-level fault-recovery sweep over the parallel compiled
/// executor: every seeded plan runs under every adversarial fault
/// schedule at every [`RECOVERY_SWEEP_WORKERS`] count with two adversarial
/// steal seeds, against a fresh deterministic injector per run.
///
/// Gates, per recovering run:
///
/// * **byte identity** — the merged bin sequence equals the serial
///   interpreter-free oracle ([`physical_ir::execute`]) exactly;
/// * **conservation** — every row and every morsel is accounted exactly
///   once (`rows`/`morsels`/`recovery.ok` match the table), and the
///   exchange dropped zero duplicate partials (no double counting from
///   retries, reassignments or speculation);
/// * **fail-fast typing** — persistent schedules surface the injected
///   class as a typed [`nf2_columnar::ScanError`] (or
///   [`physical_ir::PirError::MorselPanic`] for persistent panics),
///   never a wrong histogram.
///
/// A final engine-level probe runs Q6 through the SQL engine's compiled
/// deployment with morsel recovery on and asserts `ScanStats` — and
/// therefore billing — is byte-identical to the fault-free run: the
/// injector moves to the morsel surface, the billing pre-pass stays
/// fault-free, so no recovered or re-executed morsel can be
/// double-billed.
pub fn recovery_sweep(
    seed: u64,
    n_plans: usize,
    _events: &[Event],
    table: &Arc<Table>,
) -> RecoveryReport {
    let plans = generate_plans(seed, n_plans);
    let mut report = RecoveryReport {
        runs: 0,
        clean_results: 0,
        typed_errors: 0,
        interventions: 0,
        workers_lost: 0,
        violations: Vec::new(),
    };
    let trace = obs::TraceCtx::disabled();
    let cancel = obs::CancelToken::none();
    let n_groups = table.row_groups().len() as u64;
    let total_rows: u64 = table.row_groups().iter().map(|g| g.n_rows() as u64).sum();
    for plan in &plans {
        let phys = plan.physical();
        let oracle = match physical_ir::execute(&phys, table, None, &trace, &cancel) {
            Ok(bins) => bins,
            Err(e) => {
                report.violations.push(format!(
                    "{}: fault-free serial oracle failed: {e}",
                    plan.label()
                ));
                continue;
            }
        };
        for (s_idx, schedule) in RECOVERY_SCHEDULES.iter().enumerate() {
            for &workers in RECOVERY_SWEEP_WORKERS {
                for seed_idx in 0..2u64 {
                    let steal_seed = splitmix64_once(
                        plan.id ^ (s_idx as u64) << 8 ^ (workers as u64) << 16 ^ seed_idx,
                    );
                    report.runs += 1;
                    run_recovery_case(
                        &mut report,
                        schedule,
                        plan,
                        &phys,
                        &oracle,
                        table,
                        workers,
                        steal_seed,
                        n_groups,
                        total_rows,
                        seed,
                    );
                }
            }
        }
    }
    engine_conservation_probe(&mut report, seed, table);
    report
}

/// One (plan × schedule × workers × steal seed) recovery run.
#[allow(clippy::too_many_arguments)]
fn run_recovery_case(
    report: &mut RecoveryReport,
    schedule: &RecoverySchedule,
    plan: &FuzzPlan,
    phys: &physical_ir::PhysPlan,
    oracle: &[i64],
    table: &Arc<Table>,
    workers: usize,
    steal_seed: u64,
    n_groups: u64,
    total_rows: u64,
    seed: u64,
) {
    let ctx = || {
        format!(
            "{} {} x{workers} steal {steal_seed:#x}",
            plan.label(),
            schedule.name
        )
    };
    // A fresh injector per run: transient sites heal statefully, so a
    // shared one would let earlier runs defuse later schedules.
    let injector = FaultInjector::new(FaultConfig {
        transient_attempts: schedule.transient_attempts,
        ..FaultConfig::only(schedule.class, schedule.p, seed ^ steal_seed)
    });
    let faults = nf2_columnar::ScanFaults {
        injector: &injector,
        table_name: table.name(),
        table_fingerprint: table.fingerprint(),
    };
    let opts = exec_par::ParOptions {
        workers,
        steal_seed,
        recovery: Some(exec_par::RecoveryOptions {
            max_retries: 16,
            panic_budget: schedule.panic_budget,
            // Speculation is latency-driven and exercised by the
            // executor's own tests; the sweep keeps it off so every
            // intervention here is provoked by the fault schedule alone.
            // (The *fault* schedule is pure in the seeds; intervention
            // totals still vary with thread timing — only the merged
            // bins are asserted identical.)
            speculate_factor: 0.0,
            ..exec_par::RecoveryOptions::default()
        }),
    };
    let trace = obs::TraceCtx::disabled();
    let cancel = obs::CancelToken::none();
    let outcome = exec_par::run_morsels_with_faults(
        phys,
        table,
        None,
        &trace,
        &cancel,
        None,
        &opts,
        Some(faults),
    );
    match (schedule.expect, outcome) {
        (RecoveryOutcome::Recovers, Ok((exchange, stats))) => {
            report.interventions += stats.recovery.interventions();
            report.workers_lost += stats.recovery.workers_lost;
            if exchange.duplicates_dropped() != 0 {
                report.violations.push(format!(
                    "{}: {} duplicate partials reached the exchange",
                    ctx(),
                    exchange.duplicates_dropped()
                ));
                return;
            }
            let bins = match exchange.merge(&cancel) {
                Ok(b) => b,
                Err(c) => {
                    report
                        .violations
                        .push(format!("{}: merge cancelled without a token: {c}", ctx()));
                    return;
                }
            };
            if bins != oracle {
                report
                    .violations
                    .push(format!("{}: bins diverged from the serial oracle", ctx()));
            } else if stats.rows != total_rows
                || stats.morsels != n_groups
                || stats.recovery.ok != n_groups
            {
                report.violations.push(format!(
                    "{}: conservation broken: rows {}/{total_rows}, morsels {}/{n_groups}, ok {}/{n_groups}",
                    ctx(),
                    stats.rows,
                    stats.morsels,
                    stats.recovery.ok
                ));
            } else {
                report.clean_results += 1;
            }
        }
        (RecoveryOutcome::Recovers, Err(e)) => report.violations.push(format!(
            "{}: did not recover from a transient schedule: {e}",
            ctx()
        )),
        (
            RecoveryOutcome::FailsTypedFault,
            Err(physical_ir::PirError::Columnar(nf2_columnar::ColumnarError::Fault(s))),
        ) if s.class == schedule.class => report.typed_errors += 1,
        (RecoveryOutcome::FailsMorselPanic, Err(physical_ir::PirError::MorselPanic { .. })) => {
            report.typed_errors += 1
        }
        (RecoveryOutcome::FailsTypedFault | RecoveryOutcome::FailsMorselPanic, Err(e)) => {
            report.violations.push(format!(
                "{}: wrong error type for a persistent fault: {e}",
                ctx()
            ))
        }
        (RecoveryOutcome::FailsTypedFault | RecoveryOutcome::FailsMorselPanic, Ok(_)) => report
            .violations
            .push(format!("{}: a persistent fault produced a result", ctx())),
    }
}

/// Engine-level conservation: Q6 on the SQL engine's compiled deployment
/// with morsel recovery on and a transient injector. The served
/// histogram and — critically — the billed `ScanStats` must be
/// byte-identical to the fault-free run, and the recovery counters must
/// show the morsel surface actually fired.
fn engine_conservation_probe(report: &mut RecoveryReport, seed: u64, table: &Arc<Table>) {
    use hepbench_core::adapters::run_sql_env;
    use hepbench_core::QueryId;
    let options = engine_sql::SqlOptions {
        parallel_workers: 4,
        morsel_recovery: true,
        ..engine_sql::SqlOptions::default()
    };
    for q in [QueryId::Q6a, QueryId::Q6b] {
        report.runs += 1;
        let clean = match run_sql_env(
            engine_sql::Dialect::presto(),
            table,
            q,
            options,
            &ExecEnv::seed(),
        ) {
            Ok(run) => run,
            Err(e) => {
                report
                    .violations
                    .push(format!("{} fault-free engine run failed: {e}", q.name()));
                continue;
            }
        };
        let env = ExecEnv {
            fault_injector: Some(Arc::new(FaultInjector::new(FaultConfig {
                transient_attempts: 1,
                ..FaultConfig::only(FaultClass::Io, 0.3, seed ^ 0xB111)
            }))),
            ..ExecEnv::seed()
        };
        match run_sql_env(engine_sql::Dialect::presto(), table, q, options, &env) {
            Ok(run) => {
                if !run.histogram.counts_equal(&clean.histogram) {
                    report.violations.push(format!(
                        "{}: histogram diverged under recovered morsel faults",
                        q.name()
                    ));
                } else if run.stats.scan != clean.stats.scan {
                    report.violations.push(format!(
                        "{}: ScanStats not conserved under morsel recovery (double billing?): \
                         faulted {:?} != clean {:?}",
                        q.name(),
                        run.stats.scan,
                        clean.stats.scan
                    ));
                } else if run.stats.recovery.interventions() == 0 {
                    report.violations.push(format!(
                        "{}: injector attached but no morsel intervention recorded",
                        q.name()
                    ));
                } else {
                    report.clean_results += 1;
                    report.interventions += run.stats.recovery.interventions();
                }
            }
            Err(e) => report.violations.push(format!(
                "{}: compiled engine did not recover from transient faults: {e}",
                q.name()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_model::{generator::build_dataset, DatasetSpec};

    fn dataset() -> (Vec<Event>, Arc<Table>) {
        let (events, table) = build_dataset(DatasetSpec {
            n_events: 500,
            row_group_size: 128,
            seed: 0xC0FFEE,
        });
        (events, Arc::new(table))
    }

    #[test]
    fn plan_stream_is_deterministic_and_diverse() {
        let a = generate_plans(7, 40);
        let b = generate_plans(7, 40);
        assert_eq!(a, b);
        let c = generate_plans(8, 40);
        assert_ne!(a, c);
        assert!(a.iter().any(|p| matches!(p.fill, FillSource::Scalar(_))));
        assert!(a.iter().any(|p| matches!(p.fill, FillSource::Jets { .. })));
        assert!(a.iter().any(|p| p.count_pred.is_some()));
        assert!(a.iter().any(|p| !p.scalar_preds.is_empty()));
    }

    #[test]
    fn small_differential_run_is_clean() {
        let (events, table) = dataset();
        let report = differential_fuzz(0xD1FF, 12, &events, &table);
        assert_eq!(report.plans, 12);
        assert_eq!(report.checks, 12 * ALL_ENGINES.len());
        assert!(report.passed(), "{:#?}", report.divergences);
    }

    #[test]
    fn small_fault_sweep_meets_the_contract() {
        let (events, table) = dataset();
        let reports = fault_sweep(0xFA17, 3, &events, &table);
        assert_eq!(reports.len(), SWEPT_FAULTS.len());
        for r in &reports {
            assert!(r.passed(), "{:?}: {:#?}", r.class, r.violations);
            assert_eq!(r.clean_results + r.typed_errors, r.runs);
        }
        // The error classes must actually have fired somewhere.
        let errors: usize = reports
            .iter()
            .filter(|r| r.class != FaultClass::Latency)
            .map(|r| r.typed_errors + r.retries)
            .sum();
        assert!(errors > 0, "sweep never injected an error fault");
    }

    #[test]
    fn small_recovery_sweep_is_byte_identical_and_conserving() {
        let (events, table) = dataset();
        let report = recovery_sweep(0x09EC_04E9, 2, &events, &table);
        assert!(report.passed(), "{:#?}", report.violations);
        // 2 plans × 7 schedules × 4 worker counts × 2 steal seeds, plus
        // the two engine-level conservation probes.
        assert_eq!(report.runs, 2 * RECOVERY_SCHEDULES.len() * 4 * 2 + 2);
        assert_eq!(report.clean_results + report.typed_errors, report.runs);
        assert!(
            report.interventions > 0,
            "sweep never recovered anything — dead injector?"
        );
        assert!(
            report.workers_lost > 0,
            "worker-kill schedule never retired a worker"
        );
        assert!(report.typed_errors > 0, "persistent schedules never fired");
    }

    #[test]
    fn cancellation_sweep_is_all_or_nothing() {
        let (events, table) = dataset();
        let report = cancellation_sweep(0xCA9CE1, 6, &events, &table);
        // The randomized grid plus the deterministic merge-phase probes.
        assert_eq!(report.runs, 6 * ALL_ENGINES.len() + MERGE_CANCEL_PROBES);
        assert!(report.passed(), "{:#?}", report.violations);
        assert_eq!(
            report.cancellations + report.clean_results,
            report.runs,
            "every run must be a clean result or a typed cancellation"
        );
        // With per-chunk latency storms and cancel points sampled inside
        // the stretched runtime, the sweep must actually cancel some runs
        // mid-flight (and some runs legitimately finish first).
        assert!(
            report.cancellations > 0,
            "sweep never cancelled a running query"
        );
    }
}
