//! The vectorized executor: runs a [`PhysPlan`] one row group at a time
//! over decoded column chunks and selection vectors.

use nf2_columnar::{
    apply_predicates, ColumnarError, RowGroup, ScalarPredicate, SelectionVector, Table,
};
use obs::{CancelToken, Cancelled, Stage, TraceCtx};

use crate::kernel::TrijetScratch;
use crate::plan::{ComputeNode, FilterNode, PhysPlan};

/// Executor failure: a storage error, a cooperative cancellation, or a
/// morsel whose kernel kept panicking past the recovery budget.
#[derive(Debug)]
pub enum PirError {
    /// Columnar substrate error (unknown column, type mismatch).
    Columnar(ColumnarError),
    /// The query was cancelled mid-execution.
    Cancelled(Cancelled),
    /// A morsel's kernel panicked and the panic persisted through the
    /// parallel executor's quarantine/re-execution budget (or recovery
    /// was off, in which case the first panic surfaces here via the
    /// serial fallback path). Carries the poisoned row-group index and
    /// the panic message.
    MorselPanic {
        /// Row group whose kernel panicked.
        group: usize,
        /// Best-effort text of the panic payload.
        message: String,
    },
}

impl PirError {
    /// Whether re-executing the failed morsel can plausibly succeed:
    /// true exactly for retryable injected scan faults
    /// ([`nf2_columnar::ScanError::retryable`]). Cancellations, schema
    /// errors and persistent panics are not retryable.
    pub fn retryable(&self) -> bool {
        match self {
            PirError::Columnar(e) => e.scan_error().is_some_and(|s| s.retryable()),
            PirError::Cancelled(_) | PirError::MorselPanic { .. } => false,
        }
    }
}

impl std::fmt::Display for PirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PirError::Columnar(e) => write!(f, "{e}"),
            PirError::Cancelled(c) => write!(f, "{c}"),
            PirError::MorselPanic { group, message } => {
                write!(f, "morsel (row group {group}) panicked: {message}")
            }
        }
    }
}

impl std::error::Error for PirError {}

impl From<ColumnarError> for PirError {
    fn from(e: ColumnarError) -> PirError {
        PirError::Columnar(e)
    }
}

impl From<Cancelled> for PirError {
    fn from(c: Cancelled) -> PirError {
        PirError::Cancelled(c)
    }
}

/// Reusable per-worker execution state for [`execute_group`]: the plan's
/// scalar predicates extracted once, the trijet enumeration scratch, and
/// the per-event jet component buffers. One instance serves any number of
/// row groups of the same plan; parallel executors keep one per worker so
/// morsel execution allocates nothing per group beyond the output bins.
pub struct GroupScratch {
    scalar_preds: Vec<ScalarPredicate>,
    trijet: TrijetScratch,
    jpt: Vec<f64>,
    jeta: Vec<f64>,
    jphi: Vec<f64>,
    jmass: Vec<f64>,
    jbtag: Vec<f64>,
}

impl GroupScratch {
    /// Scratch for executing `plan`, group at a time.
    pub fn new(plan: &PhysPlan) -> GroupScratch {
        GroupScratch {
            scalar_preds: plan
                .filters
                .iter()
                .filter_map(|f| match f {
                    FilterNode::Scalar(p) => Some(p.clone()),
                    FilterNode::ListCount { .. } => None,
                })
                .collect(),
            trijet: TrijetScratch::new(),
            jpt: Vec::new(),
            jeta: Vec::new(),
            jphi: Vec::new(),
            jmass: Vec::new(),
            jbtag: Vec::new(),
        }
    }
}

/// Executes `plan` over one row group — the morsel-granular primitive
/// behind [`execute`] and the parallel executor: filters build the
/// group's selection vector, then the compute node appends one histogram
/// bin index per fill to `bins`, in row order. Cancellation, tracing and
/// skip masks are the caller's concern; `scratch` must come from
/// [`GroupScratch::new`] on the same plan.
pub fn execute_group(
    plan: &PhysPlan,
    group: &RowGroup,
    scratch: &mut GroupScratch,
    bins: &mut Vec<i64>,
) -> Result<(), ColumnarError> {
    let sel = run_filters(plan, &scratch.scalar_preds, group)?;
    compute_group(
        plan,
        group,
        &sel,
        &mut scratch.trijet,
        &mut scratch.jpt,
        &mut scratch.jeta,
        &mut scratch.jphi,
        &mut scratch.jmass,
        &mut scratch.jbtag,
        bins,
    )
}

/// Executes `plan` over `table`, returning the histogram bin index of
/// every fill in event order.
///
/// `skip` is an optional per-row-group skip mask (from zone-map
/// pruning): `true` means the group is skipped entirely. Scan
/// accounting is the caller's job — this function only decodes and
/// computes. Cancellation is checked once per row group under
/// [`Stage::Aggregate`], preserving the ≤-one-row-group cancellation
/// granularity of the interpreters. When tracing is enabled, the whole
/// compiled run is one `Aggregate` span labeled `compiled` with
/// rows-in/rows-out counters.
pub fn execute(
    plan: &PhysPlan,
    table: &Table,
    skip: Option<&[bool]>,
    trace: &TraceCtx,
    cancel: &CancelToken,
) -> Result<Vec<i64>, PirError> {
    let mut span = trace.span_with(Stage::Aggregate, || "compiled".to_string());
    let mut bins: Vec<i64> = Vec::new();
    let mut rows_done: u64 = 0;
    let mut scratch = GroupScratch::new(plan);

    for (g_idx, group) in table.row_groups().iter().enumerate() {
        if skip.is_some_and(|m| m.get(g_idx).copied().unwrap_or(false)) {
            continue;
        }
        cancel.check(Stage::Aggregate, rows_done)?;
        execute_group(plan, group, &mut scratch, &mut bins)?;
        rows_done += group.n_rows() as u64;
        span.add_rows_in(group.n_rows() as u64);
    }
    span.add_rows_out(bins.len() as u64);
    span.finish();
    Ok(bins)
}

/// Builds the surviving selection of one row group: the typed scalar
/// predicate kernels first, then list-cardinality refinement.
fn run_filters(
    plan: &PhysPlan,
    scalar_preds: &[ScalarPredicate],
    group: &RowGroup,
) -> Result<SelectionVector, ColumnarError> {
    let mut sel = if scalar_preds.is_empty() {
        SelectionVector::full(group.n_rows())
    } else {
        apply_predicates(group, scalar_preds)?
    };
    for f in &plan.filters {
        let FilterNode::ListCount {
            leaf,
            elem,
            cmp,
            count,
        } = f
        else {
            continue;
        };
        let chunk = group.column(leaf)?;
        let elem_chunk = match elem {
            Some(e) if &e.leaf != leaf => Some(group.column(&e.leaf)?),
            _ => None,
        };
        let mut kept: Vec<u32> = Vec::with_capacity(sel.len());
        for &row in sel.rows() {
            let range = chunk.row_range(row as usize);
            let n = match elem {
                None => range.len() as i64,
                Some(e) => {
                    let data = &elem_chunk.unwrap_or(chunk).data;
                    range
                        .clone()
                        .filter(|&i| e.matches(data.get_f64(i)))
                        .count() as i64
                }
            };
            let keep = match cmp {
                nf2_columnar::SelCmp::Lt => n < *count,
                nf2_columnar::SelCmp::Le => n <= *count,
                nf2_columnar::SelCmp::Gt => n > *count,
                nf2_columnar::SelCmp::Ge => n >= *count,
                nf2_columnar::SelCmp::Eq => n == *count,
                nf2_columnar::SelCmp::Ne => n != *count,
            };
            if keep {
                kept.push(row);
            }
        }
        sel = SelectionVector::from_rows(group.n_rows(), kept);
    }
    Ok(sel)
}

/// Runs the compute node over one group's selection, appending bin
/// indices in row order.
#[allow(clippy::too_many_arguments)]
fn compute_group(
    plan: &PhysPlan,
    group: &RowGroup,
    sel: &SelectionVector,
    scratch: &mut TrijetScratch,
    jpt: &mut Vec<f64>,
    jeta: &mut Vec<f64>,
    jphi: &mut Vec<f64>,
    jmass: &mut Vec<f64>,
    jbtag: &mut Vec<f64>,
    bins: &mut Vec<i64>,
) -> Result<(), ColumnarError> {
    match &plan.compute {
        ComputeNode::ScalarFill { leaf } => {
            let chunk = group.column(leaf)?;
            for &row in sel.rows() {
                bins.push(plan.spec.bin_of(chunk.data.get_f64(row as usize)));
            }
        }
        ComputeNode::ListFill { leaf, elem } => {
            let chunk = group.column(leaf)?;
            let elem_chunk = match elem {
                Some(e) if &e.leaf != leaf => Some(group.column(&e.leaf)?),
                _ => None,
            };
            for &row in sel.rows() {
                for i in chunk.row_range(row as usize) {
                    if let Some(e) = elem {
                        let data = &elem_chunk.unwrap_or(chunk).data;
                        if !e.matches(data.get_f64(i)) {
                            continue;
                        }
                    }
                    bins.push(plan.spec.bin_of(chunk.data.get_f64(i)));
                }
            }
        }
        ComputeNode::Trijet(t) => {
            let pt = group.column(&t.pt)?;
            let eta = group.column(&t.eta)?;
            let phi = group.column(&t.phi)?;
            let mass = group.column(&t.mass)?;
            let btag = group.column(&t.btag)?;
            for &row in sel.rows() {
                let range = pt.row_range(row as usize);
                jpt.clear();
                jeta.clear();
                jphi.clear();
                jmass.clear();
                jbtag.clear();
                for i in range {
                    jpt.push(pt.data.get_f64(i));
                    jeta.push(eta.data.get_f64(i));
                    jphi.push(phi.data.get_f64(i));
                    jmass.push(mass.data.get_f64(i));
                    jbtag.push(btag.data.get_f64(i));
                }
                scratch.load(jpt, jeta, jphi, jmass);
                if let Some((ptv, btagv)) = scratch.best(jbtag, t.top_mass) {
                    let x = match t.plot {
                        crate::plan::TrijetPlot::Pt => ptv,
                        crate::plan::TrijetPlot::MaxBtag => btagv,
                    };
                    bins.push(plan.spec.bin_of(x));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ElemPredicate, TrijetCompute, TrijetPlot};
    use hep_model::generator::build_dataset;
    use hep_model::DatasetSpec;
    use nested_value::Path;
    use nf2_columnar::{SelCmp, SelValue};
    use physics::HistSpec;

    fn dataset() -> (Vec<hep_model::Event>, Table) {
        build_dataset(DatasetSpec {
            n_events: 600,
            row_group_size: 128,
            seed: 0xC0FFEE,
        })
    }

    #[test]
    fn scalar_fill_with_filter_matches_per_event_evaluation() {
        let (events, table) = dataset();
        let spec = HistSpec::new(50, 0.0, 150.0);
        let plan = PhysPlan {
            filters: vec![FilterNode::Scalar(ScalarPredicate {
                leaf: Path::parse("MET.pt"),
                cmp: SelCmp::Gt,
                value: SelValue::Float(20.0),
            })],
            compute: ComputeNode::ScalarFill {
                leaf: Path::parse("MET.pt"),
            },
            spec,
        };
        let bins = execute(
            &plan,
            &table,
            None,
            &TraceCtx::disabled(),
            &CancelToken::none(),
        )
        .unwrap();
        let want: Vec<i64> = events
            .iter()
            .filter(|e| e.met.pt > 20.0)
            .map(|e| spec.bin_of(e.met.pt))
            .collect();
        assert_eq!(bins, want);
    }

    #[test]
    fn list_count_and_list_fill_match_per_event_evaluation() {
        let (events, table) = dataset();
        let spec = HistSpec::new(100, 15.0, 60.0);
        let elem = ElemPredicate {
            leaf: Path::parse("Jet.pt"),
            cmp: SelCmp::Gt,
            value: 30.0,
        };
        let plan = PhysPlan {
            filters: vec![FilterNode::ListCount {
                leaf: Path::parse("Jet.pt"),
                elem: Some(elem.clone()),
                cmp: SelCmp::Ge,
                count: 2,
            }],
            compute: ComputeNode::ListFill {
                leaf: Path::parse("Jet.pt"),
                elem: Some(elem),
            },
            spec,
        };
        let bins = execute(
            &plan,
            &table,
            None,
            &TraceCtx::disabled(),
            &CancelToken::none(),
        )
        .unwrap();
        let want: Vec<i64> = events
            .iter()
            .filter(|e| e.jets.iter().filter(|j| j.pt > 30.0).count() >= 2)
            .flat_map(|e| {
                e.jets
                    .iter()
                    .filter(|j| j.pt > 30.0)
                    .map(|j| spec.bin_of(j.pt))
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(bins, want);
    }

    #[test]
    fn skip_mask_drops_whole_groups() {
        let (_, table) = dataset();
        let spec = HistSpec::new(10, 0.0, 1000.0);
        let plan = PhysPlan {
            filters: vec![],
            compute: ComputeNode::ScalarFill {
                leaf: Path::parse("MET.pt"),
            },
            spec,
        };
        let n_groups = table.row_groups().len();
        assert!(n_groups >= 2);
        let mut skip = vec![false; n_groups];
        skip[0] = true;
        let bins = execute(
            &plan,
            &table,
            Some(&skip),
            &TraceCtx::disabled(),
            &CancelToken::none(),
        )
        .unwrap();
        assert_eq!(bins.len(), table.n_rows() - table.row_groups()[0].n_rows());
    }

    #[test]
    fn trijet_matches_reference_kernel_shape() {
        // The full bit-identity proof against the golden fixtures lives
        // in the engine test suites; here: event count and determinism.
        let (events, table) = dataset();
        let spec = HistSpec::new(100, 15.0, 40.0);
        let plan = PhysPlan {
            filters: vec![FilterNode::ListCount {
                leaf: Path::parse("Jet.pt"),
                elem: None,
                cmp: SelCmp::Ge,
                count: 3,
            }],
            compute: ComputeNode::Trijet(TrijetCompute {
                pt: Path::parse("Jet.pt"),
                eta: Path::parse("Jet.eta"),
                phi: Path::parse("Jet.phi"),
                mass: Path::parse("Jet.mass"),
                btag: Path::parse("Jet.btag"),
                top_mass: 172.5,
                plot: TrijetPlot::Pt,
            }),
            spec,
        };
        let bins = execute(
            &plan,
            &table,
            None,
            &TraceCtx::disabled(),
            &CancelToken::none(),
        )
        .unwrap();
        let want = events.iter().filter(|e| e.jets.len() >= 3).count();
        assert_eq!(bins.len(), want);
        let again = execute(
            &plan,
            &table,
            None,
            &TraceCtx::disabled(),
            &CancelToken::none(),
        )
        .unwrap();
        assert_eq!(bins, again);
    }

    #[test]
    fn execute_group_concatenation_matches_execute() {
        let (_, table) = dataset();
        let spec = HistSpec::new(50, 0.0, 150.0);
        let plan = PhysPlan {
            filters: vec![FilterNode::Scalar(ScalarPredicate {
                leaf: Path::parse("MET.pt"),
                cmp: SelCmp::Gt,
                value: SelValue::Float(25.0),
            })],
            compute: ComputeNode::ScalarFill {
                leaf: Path::parse("MET.pt"),
            },
            spec,
        };
        let whole = execute(
            &plan,
            &table,
            None,
            &TraceCtx::disabled(),
            &CancelToken::none(),
        )
        .unwrap();
        let mut scratch = GroupScratch::new(&plan);
        let mut by_group = Vec::new();
        for group in table.row_groups() {
            execute_group(&plan, group, &mut scratch, &mut by_group).unwrap();
        }
        assert_eq!(by_group, whole);
    }

    #[test]
    fn expired_deadline_cancels_within_one_group() {
        let (_, table) = dataset();
        let plan = PhysPlan {
            filters: vec![],
            compute: ComputeNode::ScalarFill {
                leaf: Path::parse("MET.pt"),
            },
            spec: HistSpec::new(10, 0.0, 100.0),
        };
        let cancel = CancelToken::with_deadline(std::time::Instant::now());
        let err = execute(&plan, &table, None, &TraceCtx::disabled(), &cancel).unwrap_err();
        match err {
            PirError::Cancelled(c) => assert_eq!(c.rows_processed, 0),
            other => panic!("expected cancellation, got {other}"),
        }
    }
}
