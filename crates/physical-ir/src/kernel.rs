//! The fused trijet kernel.
//!
//! Replicates the float operation sequence of the reference kernel
//! (`best_trijet` in the benchmark core) **op for op**: per-jet
//! four-momentum components are precomposed once per event
//! (`px = pt·cos φ`, `py = pt·sin φ`, `pz = pt·sinh η`,
//! `e = √(px² + py² + pz² + m²)`), candidate systems are left-associated
//! three-way sums in `i < j < k` enumeration order, the invariant mass is
//! `√(max(0, e² − (px² + py² + pz²)))`, and the winner is the first
//! candidate with strictly smaller `|mass − top|` — the same
//! first-minimum tie-break the interpreters' stable `order by` /
//! `MIN_BY` produce. Bit-identical inputs therefore give bit-identical
//! histograms across compiled and interpreted execution.

use crate::combi::CombiBuffer;

/// Per-event scratch: four-momentum component vectors and the
/// combination index buffer, reused across events so the hot loop
/// allocates nothing after warm-up.
#[derive(Debug, Default)]
pub struct TrijetScratch {
    px: Vec<f64>,
    py: Vec<f64>,
    pz: Vec<f64>,
    e: Vec<f64>,
    combi: CombiBuffer,
}

impl TrijetScratch {
    /// An empty scratch.
    pub fn new() -> TrijetScratch {
        TrijetScratch::default()
    }

    /// Loads one event's jets, decomposing (pt, eta, phi, mass) into
    /// (px, py, pz, e) exactly like the reference four-vector
    /// constructor.
    pub fn load(&mut self, pt: &[f64], eta: &[f64], phi: &[f64], mass: &[f64]) {
        self.px.clear();
        self.py.clear();
        self.pz.clear();
        self.e.clear();
        for i in 0..pt.len() {
            let px = pt[i] * phi[i].cos();
            let py = pt[i] * phi[i].sin();
            let pz = pt[i] * eta[i].sinh();
            let e = (px * px + py * py + pz * pz + mass[i] * mass[i]).sqrt();
            self.px.push(px);
            self.py.push(py);
            self.pz.push(pz);
            self.e.push(e);
        }
    }

    /// Enumerates all jet triples of the loaded event and returns
    /// `(pt, max btag)` of the system whose invariant mass is closest to
    /// `top` (first minimum wins), or `None` for fewer than three jets.
    pub fn best(&mut self, btag: &[f64], top: f64) -> Option<(f64, f64)> {
        let n = self.e.len();
        if n < 3 {
            return None;
        }
        let mut best: Option<(f64, f64, f64)> = None; // (dist, pt, btag)
        for &[i, j, k] in self.combi.triples(n) {
            let (i, j, k) = (i as usize, j as usize, k as usize);
            let e = self.e[i] + self.e[j] + self.e[k];
            let px = self.px[i] + self.px[j] + self.px[k];
            let py = self.py[i] + self.py[j] + self.py[k];
            let pz = self.pz[i] + self.pz[j] + self.pz[k];
            let mass = (e * e - (px * px + py * py + pz * pz)).max(0.0).sqrt();
            let dist = (mass - top).abs();
            let better = match &best {
                None => true,
                Some((d, _, _)) => dist < *d,
            };
            if better {
                let pt = (px * px + py * py).sqrt();
                let b = btag[i].max(btag[j]).max(btag[k]);
                best = Some((dist, pt, b));
            }
        }
        best.map(|(_, pt, b)| (pt, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_three_jets_yields_none() {
        let mut s = TrijetScratch::new();
        s.load(&[50.0, 40.0], &[0.1, -0.2], &[0.3, 1.0], &[5.0, 6.0]);
        assert_eq!(s.best(&[0.5, 0.6], 172.5), None);
    }

    #[test]
    fn matches_naive_nested_loop_oracle() {
        // Deterministic pseudo-jets; compare the scratch kernel against
        // a straightforward re-implementation over FourMomentum-style
        // tuples.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (1u64 << 31) as f64
        };
        for n in 3..9usize {
            let pt: Vec<f64> = (0..n).map(|_| 20.0 + 80.0 * next()).collect();
            let eta: Vec<f64> = (0..n).map(|_| -2.0 + 4.0 * next()).collect();
            let phi: Vec<f64> = (0..n).map(|_| -3.0 + 6.0 * next()).collect();
            let mass: Vec<f64> = (0..n).map(|_| 1.0 + 10.0 * next()).collect();
            let btag: Vec<f64> = (0..n).map(|_| next()).collect();

            let mut s = TrijetScratch::new();
            s.load(&pt, &eta, &phi, &mass);
            let got = s.best(&btag, 172.5).unwrap();

            let px: Vec<f64> = (0..n).map(|i| pt[i] * phi[i].cos()).collect();
            let py: Vec<f64> = (0..n).map(|i| pt[i] * phi[i].sin()).collect();
            let pz: Vec<f64> = (0..n).map(|i| pt[i] * eta[i].sinh()).collect();
            let e: Vec<f64> = (0..n)
                .map(|i| (px[i] * px[i] + py[i] * py[i] + pz[i] * pz[i] + mass[i] * mass[i]).sqrt())
                .collect();
            let mut want: Option<(f64, f64, f64)> = None;
            for i in 0..n {
                for j in (i + 1)..n {
                    for k in (j + 1)..n {
                        let se = e[i] + e[j] + e[k];
                        let sx = px[i] + px[j] + px[k];
                        let sy = py[i] + py[j] + py[k];
                        let sz = pz[i] + pz[j] + pz[k];
                        let m = (se * se - (sx * sx + sy * sy + sz * sz)).max(0.0).sqrt();
                        let dist = (m - 172.5).abs();
                        if want.is_none_or(|(d, _, _)| dist < d) {
                            want = Some((
                                dist,
                                (sx * sx + sy * sy).sqrt(),
                                btag[i].max(btag[j]).max(btag[k]),
                            ));
                        }
                    }
                }
            }
            let (_, wpt, wb) = want.unwrap();
            assert_eq!(got.0.to_bits(), wpt.to_bits(), "pt must be bit-identical");
            assert_eq!(got.1.to_bits(), wb.to_bits(), "btag must be bit-identical");
        }
    }

    #[test]
    fn first_minimum_wins_on_ties() {
        // Two identical jets ⇒ systems (0,1,2) and (0,1,3) tie exactly;
        // the btag of the *first* (lexicographically smaller) triple must
        // win.
        let pt = [50.0, 60.0, 40.0, 40.0];
        let eta = [0.1, -0.4, 0.7, 0.7];
        let phi = [0.2, 1.1, -2.0, -2.0];
        let mass = [4.0, 5.0, 6.0, 6.0];
        let btag = [0.1, 0.2, 0.9, 0.3];
        let mut s = TrijetScratch::new();
        s.load(&pt, &eta, &phi, &mass);
        let (_, b) = s.best(&btag, 172.5).unwrap();
        assert_eq!(b, 0.9, "tie must resolve to the first triple");
    }
}
