//! Exchange + partial aggregation: the operator pair that makes
//! morsel-parallel execution deterministic.
//!
//! A morsel (one row group, the paper's Figure 2 parallelism unit) is
//! executed by whichever worker claims it, producing a [`PartialAgg`] —
//! the morsel's histogram bin indices in row order, tagged with the
//! group's position in the table. The [`Exchange`] collects partials in
//! *completion* order (which depends on worker count, scheduling and
//! steal interleaving) and merges them in *group* order, which does not.
//!
//! Two facts make the merged output byte-identical to single-threaded
//! execution at any worker count:
//!
//! 1. within a morsel, bins are produced by the same per-group kernel
//!    ([`crate::execute_group`]) the serial executor runs, in the same
//!    row order;
//! 2. across morsels, concatenation in ascending group index reproduces
//!    the serial group loop exactly — and since histogram aggregation is
//!    additive over integer bin counts (commutative and associative),
//!    any downstream `(bin, count)` reduction is order-independent on
//!    top of that.
//!
//! The merge itself checks the [`CancelToken`] per partial, so a query
//! cancelled between execution and merge (or mid-merge) still honors the
//! all-or-nothing contract: a typed [`Cancelled`] error, never a partial
//! result.

use std::collections::HashSet;

use obs::{CancelToken, Cancelled, Stage};

/// Which execution attempt produced a [`PartialAgg`] — recovery
/// bookkeeping, not part of the result. Two partials for the same group
/// index are byte-identical regardless of provenance (the per-group
/// kernel is deterministic), so the exchange may keep whichever arrived
/// first; provenance exists so tests and traces can tell a first-try
/// partial from a retried, reassigned, or speculated one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Provenance {
    /// Worker that produced the partial (0 on the serial path).
    pub worker: usize,
    /// 1-based execution attempt of the morsel (1 = first try; retries,
    /// quarantine re-runs and the serial fallback increment it).
    pub attempt: u32,
    /// Whether this partial came from a speculative straggler re-run.
    pub speculative: bool,
}

impl Provenance {
    /// First-try provenance for `worker`.
    pub fn first(worker: usize) -> Provenance {
        Provenance {
            worker,
            attempt: 1,
            speculative: false,
        }
    }
}

/// One morsel's partial aggregate: the bin indices its row group
/// produced, tagged with the group's position for deterministic merging.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartialAgg {
    /// Index of the row group this morsel covered.
    pub group: usize,
    /// Histogram bin indices in row order within the group.
    pub bins: Vec<i64>,
    /// Rows the morsel processed (cancellation progress accounting).
    pub rows: u64,
    /// Which attempt produced this partial (recovery bookkeeping; does
    /// not participate in merging).
    pub provenance: Provenance,
}

/// Collects per-morsel [`PartialAgg`]s in any completion order and
/// merges them in ascending group order (see the module docs for the
/// determinism argument).
#[derive(Clone, Debug, Default)]
pub struct Exchange {
    partials: Vec<PartialAgg>,
    groups_seen: HashSet<usize>,
    duplicates_dropped: u64,
}

impl Exchange {
    /// An empty exchange.
    pub fn new() -> Exchange {
        Exchange::default()
    }

    /// Adds one morsel's partial (any order; merging sorts). **Idempotent
    /// per group index**: the first partial pushed for a group wins and
    /// any later push for the same group is dropped (and counted in
    /// [`Exchange::duplicates_dropped`]). Recovery and speculation can
    /// therefore race a morsel's re-execution against its original
    /// without ever double-counting the group — one partial per row-group
    /// index survives, which, combined with the per-group kernel being
    /// deterministic, keeps the merge byte-identical no matter which
    /// attempt won.
    pub fn push(&mut self, partial: PartialAgg) {
        if self.groups_seen.insert(partial.group) {
            self.partials.push(partial);
        } else {
            self.duplicates_dropped += 1;
        }
    }

    /// Partials dropped because their group index already had a winner —
    /// nonzero only if a caller pushed the same group twice (the parallel
    /// executor's first-result-wins gate normally prevents this; the
    /// exchange is the defense in depth behind it).
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped
    }

    /// Number of partials collected so far.
    pub fn len(&self) -> usize {
        self.partials.len()
    }

    /// Whether no partial has been collected.
    pub fn is_empty(&self) -> bool {
        self.partials.is_empty()
    }

    /// Total rows processed across all collected partials.
    pub fn rows(&self) -> u64 {
        self.partials.iter().map(|p| p.rows).sum()
    }

    /// Merges the partials into one bin-index sequence, byte-identical
    /// to executing every group serially in table order. The token is
    /// checked once per partial, so cancel-during-merge aborts with a
    /// typed [`Cancelled`] (stage [`Stage::Aggregate`], rows counting
    /// the partials merged so far) instead of returning a partial
    /// result.
    pub fn merge(self, cancel: &CancelToken) -> Result<Vec<i64>, Cancelled> {
        let mut partials = self.partials;
        partials.sort_unstable_by_key(|p| p.group);
        let mut out = Vec::with_capacity(partials.iter().map(|p| p.bins.len()).sum());
        let mut rows_merged = 0u64;
        for p in partials {
            cancel.check(Stage::Aggregate, rows_merged)?;
            out.extend_from_slice(&p.bins);
            rows_merged += p.rows;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partial(group: usize, bins: Vec<i64>) -> PartialAgg {
        let rows = bins.len() as u64;
        PartialAgg {
            group,
            bins,
            rows,
            provenance: Provenance::first(0),
        }
    }

    #[test]
    fn duplicate_group_pushes_are_dropped_first_wins() {
        let mut x = Exchange::new();
        x.push(partial(0, vec![1]));
        x.push(PartialAgg {
            provenance: Provenance {
                worker: 3,
                attempt: 2,
                speculative: true,
            },
            ..partial(1, vec![2, 3])
        });
        // A speculative loser for group 1 and a retried duplicate of
        // group 0 both arrive late: neither may change the result.
        x.push(partial(1, vec![2, 3]));
        x.push(PartialAgg {
            provenance: Provenance {
                worker: 0,
                attempt: 3,
                speculative: false,
            },
            ..partial(0, vec![9])
        });
        assert_eq!(x.len(), 2);
        assert_eq!(x.duplicates_dropped(), 2);
        assert_eq!(x.rows(), 3, "losers accrue nothing");
        assert_eq!(x.merge(&CancelToken::none()).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn merge_orders_by_group_regardless_of_push_order() {
        let mut a = Exchange::new();
        a.push(partial(2, vec![5, 6]));
        a.push(partial(0, vec![1]));
        a.push(partial(1, vec![2, 3, 4]));
        let mut b = Exchange::new();
        b.push(partial(0, vec![1]));
        b.push(partial(1, vec![2, 3, 4]));
        b.push(partial(2, vec![5, 6]));
        let merged_a = a.merge(&CancelToken::none()).unwrap();
        let merged_b = b.merge(&CancelToken::none()).unwrap();
        assert_eq!(merged_a, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(merged_a, merged_b);
    }

    #[test]
    fn empty_exchange_merges_to_empty() {
        let x = Exchange::new();
        assert!(x.is_empty());
        assert_eq!(x.merge(&CancelToken::none()).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn cancel_during_merge_aborts_with_typed_error() {
        let mut x = Exchange::new();
        x.push(partial(0, vec![1, 2]));
        x.push(partial(1, vec![3]));
        assert_eq!(x.rows(), 3);
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = x.merge(&cancel).unwrap_err();
        assert_eq!(err.stage, Stage::Aggregate);
        assert_eq!(err.reason, obs::CancelReason::Explicit);
    }
}
