//! Combinatoric index enumeration: the candidate pair/triple sets of one
//! event, materialized as index vectors into reusable buffers so the hot
//! loop performs no per-combination allocation.

/// Calls `f(i, j)` for every `0 ≤ i < j < n`, in lexicographic order.
#[inline]
pub fn for_each_pair(n: usize, mut f: impl FnMut(usize, usize)) {
    for i in 0..n {
        for j in (i + 1)..n {
            f(i, j);
        }
    }
}

/// Calls `f(i, j, k)` for every `0 ≤ i < j < k < n`, in lexicographic
/// order — the enumeration order of the reference kernel, which also
/// fixes the first-minimum tie-break of the fused trijet kernel.
#[inline]
pub fn for_each_triple(n: usize, mut f: impl FnMut(usize, usize, usize)) {
    for i in 0..n {
        for j in (i + 1)..n {
            for k in (j + 1)..n {
                f(i, j, k);
            }
        }
    }
}

/// Reusable buffers for materialized combination index vectors.
#[derive(Debug, Default)]
pub struct CombiBuffer {
    pairs: Vec<[u32; 2]>,
    triples: Vec<[u32; 3]>,
}

impl CombiBuffer {
    /// A buffer with no allocations yet.
    pub fn new() -> CombiBuffer {
        CombiBuffer::default()
    }

    /// All `(i, j)` with `i < j < n`, lexicographic, reusing the buffer.
    pub fn pairs(&mut self, n: usize) -> &[[u32; 2]] {
        self.pairs.clear();
        for_each_pair(n, |i, j| self.pairs.push([i as u32, j as u32]));
        &self.pairs
    }

    /// All `(i, j, k)` with `i < j < k < n`, lexicographic, reusing the
    /// buffer.
    pub fn triples(&mut self, n: usize) -> &[[u32; 3]] {
        self.triples.clear();
        for_each_triple(n, |i, j, k| {
            self.triples.push([i as u32, j as u32, k as u32])
        });
        &self.triples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Independent oracle: filter the full cross product.
    fn brute_pairs(n: usize) -> Vec<[u32; 2]> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i < j {
                    out.push([i as u32, j as u32]);
                }
            }
        }
        out
    }

    fn brute_triples(n: usize) -> Vec<[u32; 3]> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    if i < j && j < k {
                        out.push([i as u32, j as u32, k as u32]);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn empty_and_singleton_lists_yield_no_combinations() {
        let mut b = CombiBuffer::new();
        assert!(b.pairs(0).is_empty());
        assert!(b.pairs(1).is_empty());
        assert!(b.triples(0).is_empty());
        assert!(b.triples(1).is_empty());
        assert!(b.triples(2).is_empty());
        assert_eq!(b.pairs(2), &[[0, 1]]);
        assert_eq!(b.triples(3), &[[0, 1, 2]]);
    }

    #[test]
    fn buffer_reuse_is_clean_across_events() {
        let mut b = CombiBuffer::new();
        assert_eq!(b.triples(5).len(), 10);
        // A smaller follow-up event must not see stale entries.
        assert_eq!(b.triples(3), &[[0, 1, 2]]);
        assert!(b.triples(0).is_empty());
    }

    proptest! {
        #[test]
        fn pairs_match_brute_force_oracle(n in 0usize..30) {
            let mut b = CombiBuffer::new();
            let want = brute_pairs(n);
            prop_assert_eq!(b.pairs(n), want.as_slice());
        }

        #[test]
        fn triples_match_brute_force_oracle(n in 0usize..20) {
            let mut b = CombiBuffer::new();
            let want = brute_triples(n);
            prop_assert_eq!(b.triples(n), want.as_slice());
        }

        #[test]
        fn counts_are_binomial(n in 0usize..40) {
            let mut pairs = 0u64;
            let mut triples = 0u64;
            for_each_pair(n, |_, _| pairs += 1);
            for_each_triple(n, |_, _, _| triples += 1);
            let n = n as u64;
            prop_assert_eq!(pairs, n.saturating_sub(1) * n / 2);
            prop_assert_eq!(
                triples,
                if n < 3 { 0 } else { n * (n - 1) * (n - 2) / 6 }
            );
        }

        /// Selection-vector-masked rows: enumerating per-row lists only
        /// for selected rows matches a brute-force sweep that skips
        /// masked rows.
        #[test]
        fn masked_row_enumeration_matches_oracle(
            counts in proptest::collection::vec(0usize..7, 0..12),
            mask_seed in any::<u64>(),
        ) {
            let mask: Vec<bool> = counts
                .iter()
                .enumerate()
                .map(|(i, _)| (mask_seed >> (i % 64)) & 1 == 1)
                .collect();
            let sel: Vec<u32> = (0..counts.len() as u32)
                .filter(|&r| mask[r as usize])
                .collect();
            let mut b = CombiBuffer::new();
            let mut got: Vec<(u32, [u32; 3])> = Vec::new();
            for &row in &sel {
                for t in b.triples(counts[row as usize]) {
                    got.push((row, *t));
                }
            }
            let mut want: Vec<(u32, [u32; 3])> = Vec::new();
            for (row, &c) in counts.iter().enumerate() {
                if !mask[row] {
                    continue;
                }
                for t in brute_triples(c) {
                    want.push((row as u32, t));
                }
            }
            prop_assert_eq!(got, want);
        }
    }
}
