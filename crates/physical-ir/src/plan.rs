//! The physical plan node set.

use nested_value::Path;
use nf2_columnar::{ScalarPredicate, SelCmp};
use physics::HistSpec;

/// An element-level predicate over one leaf of a repeated column
/// (`Jet.pt > 40.0`). Comparisons are plain IEEE comparisons, matching
/// the per-element semantics of the interpreters and the reference
/// oracle (HEP leaves carry no NaNs).
#[derive(Clone, Debug, PartialEq)]
pub struct ElemPredicate {
    /// The repeated leaf the predicate reads.
    pub leaf: Path,
    /// Comparison operator.
    pub cmp: SelCmp,
    /// Literal to compare against.
    pub value: f64,
}

impl ElemPredicate {
    /// Evaluates the predicate on one element value.
    pub fn matches(&self, x: f64) -> bool {
        match self.cmp {
            SelCmp::Lt => x < self.value,
            SelCmp::Le => x <= self.value,
            SelCmp::Gt => x > self.value,
            SelCmp::Ge => x >= self.value,
            SelCmp::Eq => x == self.value,
            SelCmp::Ne => x != self.value,
        }
    }
}

/// One filter over the event rows of a row group.
#[derive(Clone, Debug, PartialEq)]
pub enum FilterNode {
    /// Scalar-leaf predicate, executed batch-at-a-time by
    /// [`nf2_columnar::apply_predicates`] (the typed selection kernels).
    Scalar(ScalarPredicate),
    /// Keep rows where the number of elements of a repeated column
    /// (optionally restricted to elements passing `elem`) compares to
    /// `count` under `cmp` — e.g. `size(Jet) >= 3`.
    ListCount {
        /// A leaf under the repeated column (its offsets define the
        /// per-row element ranges).
        leaf: Path,
        /// Optional element predicate; `None` counts all elements.
        elem: Option<ElemPredicate>,
        /// Comparison on the count.
        cmp: SelCmp,
        /// Count literal.
        count: i64,
    },
}

/// What the plot member of the best trijet is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrijetPlot {
    /// Transverse momentum of the three-jet system.
    Pt,
    /// Maximum b-tag discriminator among the three jets.
    MaxBtag,
}

/// The fused Q6-class kernel: enumerate all jet triples per event, pick
/// the one whose invariant mass is closest to `top_mass`, and plot one
/// member of the winning system. Events with fewer than three jets
/// produce no fill.
#[derive(Clone, Debug, PartialEq)]
pub struct TrijetCompute {
    /// `Jet.pt` leaf.
    pub pt: Path,
    /// `Jet.eta` leaf.
    pub eta: Path,
    /// `Jet.phi` leaf.
    pub phi: Path,
    /// `Jet.mass` leaf.
    pub mass: Path,
    /// `Jet.btag` leaf.
    pub btag: Path,
    /// The mass the candidate distance is measured from (172.5 GeV).
    pub top_mass: f64,
    /// Plotted member of the best system.
    pub plot: TrijetPlot,
}

/// The compute node: what value(s) each selected event contributes.
#[derive(Clone, Debug, PartialEq)]
pub enum ComputeNode {
    /// Plot a scalar leaf: one fill per selected event.
    ScalarFill {
        /// The plotted leaf.
        leaf: Path,
    },
    /// Plot each element of a repeated leaf (optionally filtered): zero
    /// or more fills per selected event, in element order.
    ListFill {
        /// The plotted repeated leaf.
        leaf: Path,
        /// Optional element predicate.
        elem: Option<ElemPredicate>,
    },
    /// The fused combinatoric trijet kernel: at most one fill per event.
    Trijet(TrijetCompute),
}

/// A complete physical plan: filters, compute, and the histogram spec
/// the computed values are binned into.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysPlan {
    /// Conjunctive row filters.
    pub filters: Vec<FilterNode>,
    /// Value computation per selected row.
    pub compute: ComputeNode,
    /// Histogram the values are binned into ([`HistSpec::bin_of`]).
    pub spec: HistSpec,
}

impl PhysPlan {
    /// Every distinct leaf column the plan reads — the implicit Scan node.
    pub fn columns(&self) -> Vec<Path> {
        let mut cols: Vec<Path> = Vec::new();
        let mut push = |p: &Path| {
            if !cols.contains(p) {
                cols.push(p.clone());
            }
        };
        for f in &self.filters {
            match f {
                FilterNode::Scalar(p) => push(&p.leaf),
                FilterNode::ListCount { leaf, elem, .. } => {
                    push(leaf);
                    if let Some(e) = elem {
                        push(&e.leaf);
                    }
                }
            }
        }
        match &self.compute {
            ComputeNode::ScalarFill { leaf } => push(leaf),
            ComputeNode::ListFill { leaf, elem } => {
                push(leaf);
                if let Some(e) = elem {
                    push(&e.leaf);
                }
            }
            ComputeNode::Trijet(t) => {
                for p in [&t.pt, &t.eta, &t.phi, &t.mass, &t.btag] {
                    push(p);
                }
            }
        }
        cols
    }
}
