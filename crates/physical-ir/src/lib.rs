//! # physical-ir
//!
//! A batch-oriented physical plan shared by the three language engines.
//!
//! The frontends (engine-sql's planned query, engine-flwor's AST,
//! engine-rdf's dataframe ops) each carry a *lowering pass* that maps the
//! queries the IR can express onto one plan shape:
//!
//! ```text
//! Scan → Filter* → Compute → Aggregate(histogram)
//! ```
//!
//! * **Scan** is implicit: [`PhysPlan::columns`] lists the leaf columns the
//!   plan touches; the caller remains responsible for scan accounting
//!   (`ScanStats`, cache, fault injection) so compiled execution is
//!   indistinguishable from interpretation in every ledger.
//! * **Filter** nodes reuse the typed predicate kernels of
//!   [`nf2_columnar::select`] ([`nf2_columnar::apply_predicates`]) to build
//!   a [`nf2_columnar::SelectionVector`] per row group, refined by
//!   list-cardinality predicates evaluated over the offsets array.
//! * **Compute** is either a scalar/list fill or the fused combinatoric
//!   trijet kernel ([`kernel`]): per-event pair/triple index enumeration
//!   ([`combi`]) over pre-decomposed four-momentum component vectors, with
//!   no per-row interpreter re-entry and no per-combination allocation.
//! * **Aggregate** maps each computed value through
//!   [`physics::HistSpec::bin_of`]; the executor returns the bin indices in
//!   event order so each engine can shape its own output (JSONiq item
//!   sequences, SQL `(bin, n)` relations, histograms).
//!
//! Lowering is capability-gated: a frontend lowers a query only when it can
//! prove the plan reproduces the interpreter's exact float operation
//! sequence (the trijet kernel replicates the reference kernel op for op);
//! everything else falls back to the interpreters.

pub mod agg;
pub mod combi;
pub mod exec;
pub mod kernel;
pub mod plan;

pub use agg::{Exchange, PartialAgg, Provenance};
pub use combi::{for_each_pair, for_each_triple, CombiBuffer};
pub use exec::{execute, execute_group, GroupScratch, PirError};
pub use kernel::TrijetScratch;
pub use plan::{ComputeNode, ElemPredicate, FilterNode, PhysPlan, TrijetCompute, TrijetPlot};
