//! The [`Value`] enum and its constructors/accessors.

use std::fmt;
use std::sync::Arc;

use crate::error::ValueError;

/// A dynamically typed, nested value.
///
/// Clones are cheap: arrays, structs, and strings are behind [`Arc`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// SQL `NULL` / JSONiq empty-sequence-as-item placeholder.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float. HEP quantities are physically measured, so
    /// most leaf values are floats.
    Float(f64),
    /// Immutable string.
    Str(Arc<str>),
    /// Variable-length array (the NF² nesting construct).
    Array(Arc<Vec<Value>>),
    /// Struct ("row"/"object") with ordered named fields.
    Struct(Arc<StructValue>),
}

/// A struct value: ordered `(name, value)` pairs.
///
/// Field order is preserved (it matters for anonymous-row coercion in the
/// SQL engine: Presto/BigQuery match struct arguments positionally), lookups
/// by name are linear — structs in HEP schemas have at most a few dozen
/// fields, where a linear scan beats hashing.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct StructValue {
    fields: Vec<(Arc<str>, Value)>,
}

impl StructValue {
    /// Creates a struct from `(name, value)` pairs. Duplicate names are a
    /// programming error and panic in debug builds.
    pub fn new(fields: Vec<(Arc<str>, Value)>) -> Self {
        debug_assert!(
            {
                let mut names: Vec<&str> = fields.iter().map(|(n, _)| n.as_ref()).collect();
                names.sort_unstable();
                names.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate struct field names"
        );
        StructValue { fields }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the struct has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Looks a field up by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find(|(n, _)| n.as_ref() == name)
            .map(|(_, v)| v)
    }

    /// Field by positional index (for anonymous-row access in Presto).
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.fields.get(idx).map(|(_, v)| v)
    }

    /// Name of the field at `idx`.
    pub fn name_at(&self, idx: usize) -> Option<&str> {
        self.fields.get(idx).map(|(n, _)| n.as_ref())
    }

    /// Iterates `(name, value)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(n, v)| (n.as_ref(), v))
    }

    /// Consumes the struct into its field vector.
    pub fn into_fields(self) -> Vec<(Arc<str>, Value)> {
        self.fields
    }

    /// Returns a new struct with `name` set to `value` (replacing an
    /// existing field of the same name, else appending).
    pub fn with_field(&self, name: &str, value: Value) -> StructValue {
        let mut fields = self.fields.clone();
        if let Some(slot) = fields.iter_mut().find(|(n, _)| n.as_ref() == name) {
            slot.1 = value;
        } else {
            fields.push((Arc::from(name), value));
        }
        StructValue { fields }
    }
}

/// Builder used by engines to assemble struct values ergonomically.
#[derive(Default)]
pub struct StructBuilder {
    fields: Vec<(Arc<str>, Value)>,
}

impl StructBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `n` fields.
    pub fn with_capacity(n: usize) -> Self {
        StructBuilder {
            fields: Vec::with_capacity(n),
        }
    }

    /// Appends a field.
    pub fn field(mut self, name: impl Into<Arc<str>>, value: Value) -> Self {
        self.fields.push((name.into(), value));
        self
    }

    /// Appends a field by mutable reference.
    pub fn push(&mut self, name: impl Into<Arc<str>>, value: Value) {
        self.fields.push((name.into(), value));
    }

    /// Finalizes into a [`Value::Struct`].
    pub fn build(self) -> Value {
        Value::Struct(Arc::new(StructValue::new(self.fields)))
    }
}

impl Value {
    /// Constructs a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Constructs an array value.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Array(Arc::new(items))
    }

    /// Constructs an empty array.
    pub fn empty_array() -> Value {
        Value::Array(Arc::new(Vec::new()))
    }

    /// Constructs a struct value from `(name, value)` pairs.
    pub fn struct_from(fields: Vec<(&str, Value)>) -> Value {
        Value::Struct(Arc::new(StructValue::new(
            fields.into_iter().map(|(n, v)| (Arc::from(n), v)).collect(),
        )))
    }

    /// The type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Struct(_) => "struct",
        }
    }

    /// True if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Result<bool, ValueError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ValueError::type_mismatch("boolean", other)),
        }
    }

    /// Integer accessor (floats with integral value are not coerced; use
    /// [`Value::as_f64`] for numeric contexts).
    pub fn as_i64(&self) -> Result<i64, ValueError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(ValueError::type_mismatch("integer", other)),
        }
    }

    /// Numeric accessor with Int→Float coercion.
    pub fn as_f64(&self) -> Result<f64, ValueError> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(ValueError::type_mismatch("number", other)),
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Result<&str, ValueError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(ValueError::type_mismatch("string", other)),
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Result<&[Value], ValueError> {
        match self {
            Value::Array(a) => Ok(a),
            other => Err(ValueError::type_mismatch("array", other)),
        }
    }

    /// Struct accessor.
    pub fn as_struct(&self) -> Result<&StructValue, ValueError> {
        match self {
            Value::Struct(s) => Ok(s),
            other => Err(ValueError::type_mismatch("struct", other)),
        }
    }

    /// Field access `value.name`, erroring on non-structs or missing fields.
    pub fn field(&self, name: &str) -> Result<&Value, ValueError> {
        let s = self.as_struct()?;
        s.get(name)
            .ok_or_else(|| ValueError::NoSuchField(name.to_string()))
    }

    /// True if the value is numeric (Int or Float).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<u64> for Value {
    fn from(i: u64) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Float(f as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Struct(s) => {
                write!(f, "{{")?;
                for (i, (n, v)) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "\"{n}\": {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_lookup_by_name_and_index() {
        let v = Value::struct_from(vec![
            ("pt", Value::Float(31.5)),
            ("eta", Value::Float(-0.4)),
        ]);
        let s = v.as_struct().unwrap();
        assert_eq!(s.get("pt"), Some(&Value::Float(31.5)));
        assert_eq!(s.get_index(1), Some(&Value::Float(-0.4)));
        assert_eq!(s.name_at(0), Some("pt"));
        assert!(s.get("phi").is_none());
    }

    #[test]
    fn field_access_errors() {
        let v = Value::struct_from(vec![("pt", Value::Float(1.0))]);
        assert!(v.field("pt").is_ok());
        assert!(matches!(v.field("nope"), Err(ValueError::NoSuchField(_))));
        assert!(Value::Int(3).field("pt").is_err());
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_f64().unwrap(), 3.0);
        assert_eq!(Value::Float(2.5).as_f64().unwrap(), 2.5);
        assert!(Value::Bool(true).as_f64().is_err());
        assert!(Value::Float(3.0).as_i64().is_err());
    }

    #[test]
    fn with_field_replaces_and_appends() {
        let s = StructValue::new(vec![(Arc::from("a"), Value::Int(1))]);
        let s2 = s.with_field("a", Value::Int(2));
        let s3 = s2.with_field("b", Value::Int(3));
        assert_eq!(s3.get("a"), Some(&Value::Int(2)));
        assert_eq!(s3.get("b"), Some(&Value::Int(3)));
        assert_eq!(s3.len(), 2);
    }

    #[test]
    fn clone_is_shallow() {
        let big = Value::array((0..1000).map(Value::Int).collect());
        let c = big.clone();
        // Same allocation: Arc pointer equality.
        match (&big, &c) {
            (Value::Array(a), Value::Array(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn display_roundtrips_shapes() {
        let v = Value::struct_from(vec![
            ("met", Value::Float(42.0)),
            ("jets", Value::array(vec![Value::Int(1), Value::Int(2)])),
            ("tag", Value::str("mu")),
        ]);
        let s = format!("{v}");
        assert!(s.contains("\"met\": 42.0"));
        assert!(s.contains("[1, 2]"));
        assert!(s.contains("\"mu\""));
    }

    #[test]
    fn builder_constructs_in_order() {
        let v = StructBuilder::new()
            .field("x", Value::Int(1))
            .field("y", Value::Int(2))
            .build();
        let s = v.as_struct().unwrap();
        assert_eq!(s.name_at(0), Some("x"));
        assert_eq!(s.name_at(1), Some("y"));
    }
}
