//! # nested-value
//!
//! The dynamic value model shared by every query engine in the `hepquery`
//! workspace.
//!
//! High-energy-physics events are stored in non-first normal form (NF²): an
//! event is a struct whose fields are scalars, structs, or variable-length
//! arrays of structs. All three engines in this workspace (the SQL engine,
//! the JSONiq/FLWOR engine, and the RDataFrame-style engine) exchange data
//! with the columnar substrate through the [`Value`] type defined here.
//!
//! Design notes:
//!
//! * Arrays and structs are reference counted ([`std::sync::Arc`]) so that a
//!   `Value::clone` is O(1). Query executors clone values freely when rows
//!   flow through operators; deep copies would dominate runtime.
//! * There is no `NULL` in HEP data (the paper, §2.1, makes this explicit),
//!   but SQL semantics need a null (e.g. `MIN` over an empty group), so
//!   [`Value::Null`] exists and propagates through arithmetic like SQL nulls.
//! * Comparison and arithmetic semantics live in [`ops`]; they implement the
//!   numeric tower `Int ⊂ Float` with the coercions all three engines share.

pub mod error;
pub mod json;
pub mod ops;
pub mod path;
pub mod value;

pub use error::ValueError;
pub use path::Path;
pub use value::{StructValue, Value};

#[cfg(test)]
mod proptests;
