//! Shared comparison and arithmetic semantics.
//!
//! All three engines route scalar operations through these functions so
//! that cross-engine result validation (core's ground-truth checks) never
//! fails on coercion differences.

use std::cmp::Ordering;

use crate::error::ValueError;
use crate::value::Value;

/// Three-way comparison of two scalar values.
///
/// * `Null` compares less than everything (SQL `NULLS FIRST` ordering, used
///   only for sorting — predicate comparison with null yields null and is
///   handled by the engines).
/// * Int/Float compare numerically; NaN sorts greater than all numbers
///   (total order, so sorting is well defined).
/// * Arrays compare lexicographically, structs field-wise in declaration
///   order; mixed types are an error.
pub fn compare(a: &Value, b: &Value) -> Result<Ordering, ValueError> {
    use Value::*;
    match (a, b) {
        (Null, Null) => Ok(Ordering::Equal),
        (Null, _) => Ok(Ordering::Less),
        (_, Null) => Ok(Ordering::Greater),
        (Bool(x), Bool(y)) => Ok(x.cmp(y)),
        (Int(x), Int(y)) => Ok(x.cmp(y)),
        (Str(x), Str(y)) => Ok(x.cmp(y)),
        (Int(_) | Float(_), Int(_) | Float(_)) => {
            let x = a.as_f64().expect("numeric");
            let y = b.as_f64().expect("numeric");
            Ok(total_cmp(x, y))
        }
        (Array(xs), Array(ys)) => {
            for (x, y) in xs.iter().zip(ys.iter()) {
                match compare(x, y)? {
                    Ordering::Equal => continue,
                    other => return Ok(other),
                }
            }
            Ok(xs.len().cmp(&ys.len()))
        }
        (Struct(xs), Struct(ys)) => {
            for ((_, x), (_, y)) in xs
                .iter()
                .map(|p| ((), p.1))
                .zip(ys.iter().map(|p| ((), p.1)))
            {
                match compare(x, y)? {
                    Ordering::Equal => continue,
                    other => return Ok(other),
                }
            }
            Ok(xs.len().cmp(&ys.len()))
        }
        _ => Err(ValueError::NotComparable(a.type_name(), b.type_name())),
    }
}

/// IEEE total order with `NaN` greatest, matching `f64::total_cmp` for the
/// values that occur in practice (we never produce negative NaN payloads).
fn total_cmp(x: f64, y: f64) -> Ordering {
    match (x.is_nan(), y.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => x.partial_cmp(&y).expect("non-NaN"),
    }
}

/// Equality test used by predicates. Unlike [`compare`], returns `None`
/// when either side is null (SQL three-valued logic).
pub fn sql_eq(a: &Value, b: &Value) -> Result<Option<bool>, ValueError> {
    if a.is_null() || b.is_null() {
        return Ok(None);
    }
    Ok(Some(compare(a, b)? == Ordering::Equal))
}

/// Binary arithmetic operator identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` — integer division when both operands are integers (SQL
    /// semantics), float division otherwise.
    Div,
    /// `%`
    Mod,
}

impl ArithOp {
    /// Operator symbol for messages and plan printing.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }
}

/// Applies arithmetic with the shared coercion rules.
///
/// * `Int op Int → Int` (with `/` truncating, matching Presto/BigQuery's
///   `DIV`-free integer division only when the dialect asks for it — the SQL
///   engine maps `/` on integers to float division like BigQuery; this
///   function provides the raw building block and the engines choose).
/// * Anything involving a `Float` promotes to `Float`.
/// * `Null op x → Null`.
pub fn arith(op: ArithOp, a: &Value, b: &Value) -> Result<Value, ValueError> {
    use Value::*;
    if a.is_null() || b.is_null() {
        return Ok(Null);
    }
    match (a, b) {
        (Int(x), Int(y)) => int_arith(op, *x, *y),
        (Int(_) | Float(_), Int(_) | Float(_)) => {
            let x = a.as_f64().expect("numeric");
            let y = b.as_f64().expect("numeric");
            Ok(Float(float_arith(op, x, y)))
        }
        _ => Err(ValueError::InvalidArithmetic {
            op: op.symbol(),
            left: a.type_name(),
            right: b.type_name(),
        }),
    }
}

fn int_arith(op: ArithOp, x: i64, y: i64) -> Result<Value, ValueError> {
    let v = match op {
        ArithOp::Add => x.wrapping_add(y),
        ArithOp::Sub => x.wrapping_sub(y),
        ArithOp::Mul => x.wrapping_mul(y),
        ArithOp::Div => {
            if y == 0 {
                return Err(ValueError::DivisionByZero);
            }
            x / y
        }
        ArithOp::Mod => {
            if y == 0 {
                return Err(ValueError::DivisionByZero);
            }
            x % y
        }
    };
    Ok(Value::Int(v))
}

fn float_arith(op: ArithOp, x: f64, y: f64) -> f64 {
    match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => x / y,
        ArithOp::Mod => x % y,
    }
}

/// Unary negation.
pub fn neg(a: &Value) -> Result<Value, ValueError> {
    match a {
        Value::Null => Ok(Value::Null),
        Value::Int(x) => Ok(Value::Int(-x)),
        Value::Float(x) => Ok(Value::Float(-x)),
        other => Err(ValueError::InvalidArithmetic {
            op: "-",
            left: "()",
            right: other.type_name(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_numeric_compare() {
        assert_eq!(
            compare(&Value::Int(2), &Value::Float(2.0)).unwrap(),
            Ordering::Equal
        );
        assert_eq!(
            compare(&Value::Float(1.5), &Value::Int(2)).unwrap(),
            Ordering::Less
        );
    }

    #[test]
    fn nan_sorts_greatest() {
        assert_eq!(
            compare(&Value::Float(f64::NAN), &Value::Float(1e308)).unwrap(),
            Ordering::Greater
        );
        assert_eq!(
            compare(&Value::Float(f64::NAN), &Value::Float(f64::NAN)).unwrap(),
            Ordering::Equal
        );
    }

    #[test]
    fn null_ordering_and_eq() {
        assert_eq!(
            compare(&Value::Null, &Value::Int(0)).unwrap(),
            Ordering::Less
        );
        assert_eq!(sql_eq(&Value::Null, &Value::Int(0)).unwrap(), None);
        assert_eq!(sql_eq(&Value::Int(1), &Value::Int(1)).unwrap(), Some(true));
    }

    #[test]
    fn array_lexicographic() {
        let a = Value::array(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::array(vec![Value::Int(1), Value::Int(3)]);
        let c = Value::array(vec![Value::Int(1)]);
        assert_eq!(compare(&a, &b).unwrap(), Ordering::Less);
        assert_eq!(compare(&c, &a).unwrap(), Ordering::Less);
    }

    #[test]
    fn incomparable_types_error() {
        assert!(compare(&Value::Bool(true), &Value::Int(1)).is_err());
        assert!(compare(&Value::str("a"), &Value::Int(1)).is_err());
    }

    #[test]
    fn arithmetic_coercion() {
        assert_eq!(
            arith(ArithOp::Add, &Value::Int(1), &Value::Float(0.5)).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            arith(ArithOp::Div, &Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            arith(ArithOp::Mul, &Value::Null, &Value::Int(2)).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn division_by_zero() {
        assert_eq!(
            arith(ArithOp::Div, &Value::Int(1), &Value::Int(0)),
            Err(ValueError::DivisionByZero)
        );
        // Float division by zero is IEEE infinity, not an error.
        assert_eq!(
            arith(ArithOp::Div, &Value::Float(1.0), &Value::Float(0.0)).unwrap(),
            Value::Float(f64::INFINITY)
        );
    }

    #[test]
    fn negation() {
        assert_eq!(neg(&Value::Int(3)).unwrap(), Value::Int(-3));
        assert_eq!(neg(&Value::Float(-2.5)).unwrap(), Value::Float(2.5));
        assert!(neg(&Value::str("x")).is_err());
    }
}
