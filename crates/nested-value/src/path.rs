//! Dotted column paths (`Jet.pt`, `MET.sumet`, `event`).
//!
//! Paths name leaf columns in the columnar substrate and are also used by
//! engines for projection-pushdown bookkeeping.

use std::fmt;

/// A dotted path into the nested schema.
///
/// The path does not distinguish list nesting — `Jet.pt` names the `pt`
/// field of the `Jet` struct whether `Jet` is a struct or an array of
/// structs (exactly like Parquet column paths).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path(Vec<String>);

impl Path {
    /// Parses a dotted path.
    pub fn parse(s: &str) -> Path {
        Path(s.split('.').map(|p| p.to_string()).collect())
    }

    /// Creates a single-segment path.
    pub fn root(name: &str) -> Path {
        Path(vec![name.to_string()])
    }

    /// Appends a segment, returning a new path.
    pub fn child(&self, name: &str) -> Path {
        let mut segs = self.0.clone();
        segs.push(name.to_string());
        Path(segs)
    }

    /// Path segments.
    pub fn segments(&self) -> &[String] {
        &self.0
    }

    /// First segment.
    pub fn head(&self) -> &str {
        &self.0[0]
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Paths always have at least one segment.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if `self` is `other` or a descendant of `other`.
    pub fn starts_with(&self, other: &Path) -> bool {
        self.0.len() >= other.0.len() && self.0[..other.0.len()] == other.0[..]
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.join("."))
    }
}

impl From<&str> for Path {
    fn from(s: &str) -> Self {
        Path::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let p = Path::parse("Jet.pt");
        assert_eq!(p.segments(), &["Jet".to_string(), "pt".to_string()]);
        assert_eq!(p.to_string(), "Jet.pt");
        assert_eq!(p.head(), "Jet");
    }

    #[test]
    fn prefix_relation() {
        let jet = Path::root("Jet");
        let pt = jet.child("pt");
        assert!(pt.starts_with(&jet));
        assert!(jet.starts_with(&jet));
        assert!(!jet.starts_with(&pt));
        assert!(!Path::parse("Jets.pt").starts_with(&jet));
    }
}
