//! Minimal JSON serialization for harness output.
//!
//! The benchmark harnesses emit machine-readable result rows; rather than
//! pulling in `serde_json` for a one-way writer, we serialize [`Value`]
//! directly. Only serialization is provided — engines never parse JSON (the
//! data lives in the columnar substrate).

use crate::value::Value;

/// Serializes a value as compact JSON.
pub fn to_json(v: &Value) -> String {
    let mut out = String::new();
    write_json(v, &mut out);
    out
}

fn write_json(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Shortest roundtrip representation; integral floats keep a
                // trailing ".0" so readers preserve the type.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                // JSON has no Inf/NaN; emit null like most JSON writers.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Value::Struct(s) => {
            out.push('{');
            for (i, (name, val)) in s.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(name, out);
                out.push(':');
                write_json(val, out);
            }
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(to_json(&Value::Null), "null");
        assert_eq!(to_json(&Value::Bool(true)), "true");
        assert_eq!(to_json(&Value::Int(-7)), "-7");
        assert_eq!(to_json(&Value::Float(2.5)), "2.5");
        assert_eq!(to_json(&Value::Float(3.0)), "3.0");
        assert_eq!(to_json(&Value::Float(f64::INFINITY)), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(to_json(&Value::str("a\"b\\c\nd")), r#""a\"b\\c\nd""#);
        assert_eq!(to_json(&Value::str("\u{1}")), r#""\u0001""#);
    }

    #[test]
    fn nested() {
        let v = Value::struct_from(vec![
            ("bin", Value::Int(3)),
            (
                "edges",
                Value::array(vec![Value::Float(0.0), Value::Float(2.0)]),
            ),
        ]);
        assert_eq!(to_json(&v), r#"{"bin":3,"edges":[0.0,2.0]}"#);
    }
}
