//! Error type for value operations.

use std::fmt;

use crate::value::Value;

/// Errors raised by dynamic value operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueError {
    /// Expected one type, found another.
    TypeMismatch {
        /// What the operation required.
        expected: &'static str,
        /// What it got (type name).
        found: &'static str,
    },
    /// Struct field does not exist.
    NoSuchField(String),
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// Requested index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// Two values cannot be compared (e.g. struct vs. int).
    NotComparable(&'static str, &'static str),
    /// Arithmetic on non-numeric operands.
    InvalidArithmetic {
        /// Operator symbol.
        op: &'static str,
        /// Left operand type.
        left: &'static str,
        /// Right operand type.
        right: &'static str,
    },
    /// Division (or modulo) by zero on integers.
    DivisionByZero,
    /// Free-form message for engine-specific failures routed through values.
    Custom(String),
}

impl ValueError {
    /// Convenience constructor for [`ValueError::TypeMismatch`].
    pub fn type_mismatch(expected: &'static str, found: &Value) -> Self {
        ValueError::TypeMismatch {
            expected,
            found: found.type_name(),
        }
    }
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ValueError::NoSuchField(name) => write!(f, "no such field: {name}"),
            ValueError::IndexOutOfBounds { index, len } => {
                write!(f, "array index {index} out of bounds (len {len})")
            }
            ValueError::NotComparable(a, b) => write!(f, "cannot compare {a} with {b}"),
            ValueError::InvalidArithmetic { op, left, right } => {
                write!(f, "invalid arithmetic: {left} {op} {right}")
            }
            ValueError::DivisionByZero => write!(f, "division by zero"),
            ValueError::Custom(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ValueError {}
