//! Property-based tests for value semantics.

use proptest::prelude::*;

use crate::ops::{arith, compare, ArithOp};
use crate::value::Value;

/// Strategy for scalar (comparable, numeric) values.
fn numeric() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1.0e6..1.0e6f64).prop_map(Value::Float),
    ]
}

/// Strategy for shallow nested values.
fn nested() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1.0e6..1.0e6f64).prop_map(Value::Float),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::array),
            proptest::collection::vec(inner, 0..4).prop_map(|vs| {
                Value::struct_from(
                    vs.iter()
                        .enumerate()
                        .map(|(i, v)| (["a", "b", "c", "d"][i], v.clone()))
                        .collect(),
                )
            }),
        ]
    })
}

proptest! {
    /// Comparison of numerics is antisymmetric and reflexive.
    #[test]
    fn compare_antisymmetric(a in numeric(), b in numeric()) {
        let ab = compare(&a, &b).unwrap();
        let ba = compare(&b, &a).unwrap();
        prop_assert_eq!(ab, ba.reverse());
        prop_assert_eq!(compare(&a, &a).unwrap(), std::cmp::Ordering::Equal);
    }

    /// Comparison of numerics is transitive.
    #[test]
    fn compare_transitive(a in numeric(), b in numeric(), c in numeric()) {
        use std::cmp::Ordering::*;
        let mut v = [a, b, c];
        v.sort_by(|x, y| compare(x, y).unwrap());
        prop_assert_ne!(compare(&v[0], &v[1]).unwrap(), Greater);
        prop_assert_ne!(compare(&v[1], &v[2]).unwrap(), Greater);
        prop_assert_ne!(compare(&v[0], &v[2]).unwrap(), Greater);
    }

    /// Addition commutes for numeric values (modulo int wrapping).
    #[test]
    fn add_commutes(a in numeric(), b in numeric()) {
        let x = arith(ArithOp::Add, &a, &b).unwrap();
        let y = arith(ArithOp::Add, &b, &a).unwrap();
        prop_assert_eq!(x, y);
    }

    /// `a - a == 0` for finite numerics.
    #[test]
    fn sub_self_is_zero(a in numeric()) {
        let z = arith(ArithOp::Sub, &a, &a).unwrap();
        prop_assert_eq!(z.as_f64().unwrap(), 0.0);
    }

    /// JSON serialization never panics and produces non-empty output.
    #[test]
    fn json_total(v in nested()) {
        let s = crate::json::to_json(&v);
        prop_assert!(!s.is_empty());
    }

    /// Clone equality for arbitrary nested values.
    #[test]
    fn clone_eq(v in nested()) {
        let c = v.clone();
        prop_assert_eq!(v, c);
    }
}
