//! Breaker × morsel-recovery interplay (PR 10 satellite).
//!
//! Morsel-level fault recovery happens *inside* one engine attempt, so it
//! must be invisible to the service's whole-query machinery: a request
//! whose transient scan faults are absorbed by `exec-par`'s retry ladder
//! is one successful attempt — no `retried` tick in the service stats,
//! one *success* recorded by the per-system circuit breaker. These tests
//! pin that boundary from the public API, plus the seeded determinism of
//! the jittered whole-query backoff.

use std::sync::Arc;
use std::time::Duration;

use hep_model::generator::build_dataset;
use hep_model::DatasetSpec;
use hepbench_core::runner::System;
use hepbench_core::QueryId;
use nf2_columnar::{FaultClass, FaultConfig, FaultInjector, Table};
use query_service::breaker::BreakerState;
use query_service::{jittered_backoff, BreakerConfig, QueryRequest, QueryService, ServiceConfig};

fn table() -> Arc<Table> {
    Arc::new(
        build_dataset(DatasetSpec {
            n_events: 2_000,
            row_group_size: 256,
            seed: 41,
        })
        .1,
    )
}

/// A deterministic transient storm: each hit (group, leaf) site faults
/// once, then recovers — the canonical shape the morsel retry ladder is
/// built for. Probability stays below saturation so no single morsel
/// accumulates more faulting leaves than the default per-morsel retry
/// budget (probes fail fast, one leaf per attempt).
fn transient_io_storm(seed: u64) -> Option<Arc<FaultInjector>> {
    Some(Arc::new(FaultInjector::new(FaultConfig {
        transient_attempts: 1,
        ..FaultConfig::only(FaultClass::Io, 0.3, seed)
    })))
}

/// A hair-trigger breaker: a single recorded failure in the window opens
/// it. If morsel-level retries leaked into `breaker_record`, this breaker
/// could not stay closed through a transient storm.
fn hair_trigger() -> Option<BreakerConfig> {
    Some(BreakerConfig {
        window: 8,
        failure_threshold: 0.10,
        min_samples: 1,
        cooldown: Duration::from_secs(3600),
        half_open_probes: 1,
    })
}

// Presto's Q6 text is the canonical lowering template, so this request
// actually reaches the compiled-parallel morsel path (BigQuery's dialect
// text does not lower and would fall back to the interpreter).
fn compiled_parallel_q6(tenant: &str) -> QueryRequest {
    QueryRequest::new(tenant, System::Presto, QueryId::Q6a)
        .via_compiled()
        .with_parallel_workers(2)
}

#[test]
fn morsel_retries_are_invisible_to_breaker_and_retry_counter() {
    let table = table();
    // Fault-free oracle on the same deployment shape.
    let oracle = QueryService::start(
        table.clone(),
        ServiceConfig {
            n_workers: 1,
            result_cache: false,
            ..ServiceConfig::default()
        },
    )
    .execute(compiled_parallel_q6("oracle"))
    .unwrap();

    let service = QueryService::start(
        table,
        ServiceConfig {
            n_workers: 1,
            result_cache: false,
            morsel_recovery: true,
            fault_injector: transient_io_storm(0xB0_1DEA),
            breaker: hair_trigger(),
            ..ServiceConfig::default()
        },
    );
    let resp = service.execute(compiled_parallel_q6("t0")).unwrap();

    // The storm was absorbed below the attempt boundary…
    assert!(
        resp.stats.recovery.retried > 0,
        "transient faults must surface as morsel retries, got {:?}",
        resp.stats.recovery
    );
    assert!(resp.histogram.counts_equal(&oracle.histogram));
    // …so the service saw exactly one clean attempt: no whole-query
    // retries, and the hair-trigger breaker recorded only a success.
    assert_eq!(service.stats().retried, 0);
    assert_eq!(
        service.breaker_state(System::BigQuery),
        Some(BreakerState::Closed)
    );

    // A follow-up query (recovery-then-success again, or already-healed
    // sites) keeps recording successes: the breaker stays closed.
    let again = service.execute(compiled_parallel_q6("t1")).unwrap();
    assert!(again.histogram.counts_equal(&oracle.histogram));
    assert_eq!(service.stats().retried, 0);
    assert_eq!(
        service.breaker_state(System::BigQuery),
        Some(BreakerState::Closed)
    );
}

#[test]
fn without_morsel_recovery_the_same_storm_costs_whole_query_retries() {
    let table = table();
    let oracle = QueryService::start(
        table.clone(),
        ServiceConfig {
            n_workers: 1,
            result_cache: false,
            ..ServiceConfig::default()
        },
    )
    .execute(compiled_parallel_q6("oracle"))
    .unwrap();

    let service = QueryService::start(
        table,
        ServiceConfig {
            n_workers: 1,
            result_cache: false,
            morsel_recovery: false,
            fault_injector: transient_io_storm(0xB0_1DEA),
            // The billing pre-pass fails fast, so each whole-query retry
            // heals one faulting site: budget for all of them.
            max_retries: 64,
            retry_backoff: Duration::from_micros(10),
            ..ServiceConfig::default()
        },
    );
    let resp = service.execute(compiled_parallel_q6("t0")).unwrap();
    // Same answer in the end, but the transient faults escalated all the
    // way to the service retry loop — the cost morsel recovery removes.
    assert!(resp.histogram.counts_equal(&oracle.histogram));
    assert!(
        service.stats().retried > 0,
        "without morsel recovery a transient storm must retry the whole query"
    );
    assert_eq!(resp.stats.recovery.retried, 0);
}

#[test]
fn jittered_backoff_is_seeded_shrink_only_and_exact_at_zero_jitter() {
    let base = Duration::from_millis(1);
    for attempt in 1..=12u32 {
        let exp = base * (1u32 << (attempt - 1).min(8));
        // jitter = 0 reproduces the pure exponential schedule exactly.
        assert_eq!(jittered_backoff(base, attempt, 0.0, 7, 3), exp);
        for nonce in 0..16u64 {
            let a = jittered_backoff(base, attempt, 0.5, 42, nonce);
            let b = jittered_backoff(base, attempt, 0.5, 42, nonce);
            // Pure in its inputs: a fixed seed pins the schedule.
            assert_eq!(a, b);
            // Shrink-only: never above the exponential bound, never
            // below half of it at jitter = 0.5.
            assert!(a <= exp, "attempt {attempt} nonce {nonce}: {a:?} > {exp:?}");
            assert!(a >= exp.mul_f64(0.5));
        }
    }
    // Different seeds decorrelate: across a spread of nonces the two
    // schedules are not identical.
    let spread: Vec<Duration> = (0..32)
        .map(|n| jittered_backoff(base, 3, 0.5, 1, n))
        .collect();
    let other: Vec<Duration> = (0..32)
        .map(|n| jittered_backoff(base, 3, 0.5, 2, n))
        .collect();
    assert_ne!(spread, other);
}
