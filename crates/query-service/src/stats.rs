//! Service-level counters and latency aggregation.
//!
//! Counters are lock-free atomics bumped on every request outcome; latency
//! samples (end-to-end and queue-wait seconds) are appended under a mutex
//! and aggregated into percentiles on [`ServiceStats::snapshot`]. Sample
//! vectors grow with completed requests — fine for benchmark-length runs,
//! which is the service's scope.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// Live counters of a running [`crate::QueryService`].
pub struct ServiceStats {
    started: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    shedded: AtomicU64,
    timed_out: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    retried: AtomicU64,
    total_latencies: Mutex<Vec<f64>>,
    queue_waits: Mutex<Vec<f64>>,
}

/// A point-in-time aggregation of [`ServiceStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Requests offered to [`crate::QueryService::submit`], including ones
    /// admission control rejected.
    pub submitted: u64,
    /// Requests answered with a result (cached or executed).
    pub completed: u64,
    /// Requests refused at submission because the queue was full, or
    /// because the system's circuit breaker was open.
    pub rejected: u64,
    /// Requests refused at submission by load shedding: the estimated
    /// queue wait already exceeded the deadline budget.
    pub shedded: u64,
    /// Requests whose deadline expired while queued.
    pub timed_out: u64,
    /// Requests cancelled while running (explicit cancel or deadline
    /// expiry tripping the request's cancel token mid-execution).
    pub cancelled: u64,
    /// Requests whose engine execution failed.
    pub failed: u64,
    /// Engine re-executions after a retryable scan fault (one request can
    /// contribute several; a request that eventually completes still
    /// counts its retries here).
    pub retried: u64,
    /// Seconds since the service started.
    pub elapsed_seconds: f64,
    /// Completed requests per second of service lifetime.
    pub qps: f64,
    /// Median end-to-end latency (submission → response) in seconds.
    pub p50_seconds: f64,
    /// 95th-percentile end-to-end latency in seconds.
    pub p95_seconds: f64,
    /// Mean seconds completed requests spent queued before a worker
    /// picked them up.
    pub mean_queue_seconds: f64,
}

/// Nearest-rank percentile of an unsorted sample set; 0.0 when empty.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl ServiceStats {
    /// Fresh stats anchored at "now".
    pub fn new() -> ServiceStats {
        ServiceStats {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shedded: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            total_latencies: Mutex::new(Vec::new()),
            queue_waits: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn note_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_shedded(&self) {
        self.shedded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_retried(&self) {
        self.retried.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_completed(&self, total_seconds: f64, queue_seconds: f64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.total_latencies.lock().push(total_seconds);
        self.queue_waits.lock().push(queue_seconds);
    }

    /// Aggregates the counters and latency samples recorded so far.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut latencies = self.total_latencies.lock().clone();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latency is finite"));
        let queue_waits = self.queue_waits.lock();
        let mean_queue_seconds = if queue_waits.is_empty() {
            0.0
        } else {
            queue_waits.iter().sum::<f64>() / queue_waits.len() as f64
        };
        let elapsed_seconds = self.started.elapsed().as_secs_f64();
        let completed = self.completed.load(Ordering::Relaxed);
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            shedded: self.shedded.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            elapsed_seconds,
            qps: if elapsed_seconds > 0.0 {
                completed as f64 / elapsed_seconds
            } else {
                0.0
            },
            p50_seconds: percentile(&latencies, 0.50),
            p95_seconds: percentile(&latencies, 0.95),
            mean_queue_seconds,
        }
    }
}

impl Default for ServiceStats {
    fn default() -> ServiceStats {
        ServiceStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&s, 0.50), 50.0);
        assert_eq!(percentile(&s, 0.95), 95.0);
        assert_eq!(percentile(&s, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.5), 3.0);
        assert_eq!(percentile(&[3.0], 0.95), 3.0);
    }

    #[test]
    fn snapshot_aggregates_counters_and_latencies() {
        let stats = ServiceStats::new();
        stats.note_submitted();
        stats.note_submitted();
        stats.note_submitted();
        stats.note_rejected();
        stats.note_completed(0.2, 0.1);
        stats.note_completed(0.4, 0.3);
        let snap = stats.snapshot();
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.p50_seconds, 0.2);
        assert_eq!(snap.p95_seconds, 0.4);
        assert!((snap.mean_queue_seconds - 0.2).abs() < 1e-12);
        assert!(snap.qps > 0.0);
    }
}
