//! Request/response types and service errors.

use std::time::{Duration, Instant};

use hepbench_core::runner::System;
use hepbench_core::QueryId;
use nf2_columnar::ExecStats;
use physics::Histogram;

/// One query request from one tenant.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// Tenant identity — the unit of fair scheduling. Tenants share the
    /// data and the caches (the table is immutable, so there is no
    /// cross-tenant leakage to isolate), but queue capacity is dequeued
    /// round-robin across tenants so one flood cannot starve the rest.
    pub tenant: String,
    /// Which simulated system executes the query (selects engine and
    /// dialect).
    pub system: System,
    /// The benchmark query to run.
    pub query: QueryId,
    /// Per-query deadline measured from submission; `None` uses the
    /// service default. A request whose deadline passes while it is still
    /// queued is answered with [`ServiceError::QueryTimedOut`] instead of
    /// executing.
    pub deadline: Option<Duration>,
    /// Morsel-parallel workers for this query's compiled execution
    /// (`None` ⇒ serial, the default). Opt-in per request: results are
    /// byte-identical at any value (the exchange merges partials in
    /// deterministic group order), so this only trades worker-pool
    /// threads for single-query latency. Engines that do not compile
    /// the query ignore it.
    pub parallel_workers: Option<usize>,
    /// Execute through the system's *compiled* deployment
    /// (physical-IR batch kernels) instead of the interpreted one.
    /// Results are byte-identical either way (the PR 6 fuzz gate);
    /// this selects the CPU profile a request pays for. Off by
    /// default, and never used by the paper simulation.
    pub compiled: bool,
    /// The request's **intended arrival instant** for open-loop load:
    /// deadlines, queue wait and end-to-end latency are all measured
    /// from it rather than from the moment `submit` ran, so a slow
    /// submitter charges its own lag to the request (no coordinated
    /// omission). `None` — the default, and the closed-loop behaviour —
    /// uses the submission instant.
    pub arrival: Option<Instant>,
}

impl QueryRequest {
    /// A request with the service-default deadline.
    pub fn new(tenant: impl Into<String>, system: System, query: QueryId) -> QueryRequest {
        QueryRequest {
            tenant: tenant.into(),
            system,
            query,
            deadline: None,
            parallel_workers: None,
            compiled: false,
            arrival: None,
        }
    }

    /// Opts this request into morsel-parallel compiled execution with
    /// `workers` threads.
    pub fn with_parallel_workers(mut self, workers: usize) -> QueryRequest {
        self.parallel_workers = Some(workers);
        self
    }

    /// Routes this request through the system's compiled deployment.
    pub fn via_compiled(mut self) -> QueryRequest {
        self.compiled = true;
        self
    }

    /// Timestamps this request with its intended open-loop arrival
    /// instant (see [`QueryRequest::arrival`]).
    pub fn arriving_at(mut self, arrival: Instant) -> QueryRequest {
        self.arrival = Some(arrival);
        self
    }
}

/// A served query result.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The query's histogram.
    pub histogram: Histogram,
    /// Execution statistics. On a result-cache hit this reports **zero
    /// bytes scanned** (all-zero [`nf2_columnar::ScanStats`]): nothing was
    /// read, which is exactly how BigQuery bills cached results.
    pub stats: ExecStats,
    /// Whether the response was served from the result cache.
    pub from_result_cache: bool,
    /// Query cost under the system's pricing model (QaaS: bytes-based,
    /// $0 on a result-cache hit; self-managed: measured wall seconds on
    /// the service's pricing instance).
    pub cost_usd: f64,
    /// Seconds the request waited in the admission queue.
    pub queue_seconds: f64,
    /// End-to-end seconds from submission to completion.
    pub total_seconds: f64,
    /// The request's span tree — queue wait, cache lookup, retries, and
    /// the engine's stage spans — when the service was configured with
    /// `trace: true`; `None` otherwise.
    pub trace: Option<obs::SpanTree>,
}

/// Why the service could not serve a request.
#[derive(Clone, Debug)]
pub enum ServiceError {
    /// Admission control refused the request: the bounded queue is full.
    /// Back off and retry; the alternative is the unbounded pile-up the
    /// paper's QaaS providers avoid the same way.
    QueryRejected {
        /// The configured queue depth that was exhausted.
        queue_depth: usize,
    },
    /// Load shedding refused the request at admission: the estimated
    /// queue wait (EWMA of recent execution times × queue depth ÷
    /// workers) already exceeds the request's deadline budget, so
    /// queueing it would only burn capacity on a query doomed to time
    /// out. Rejection costs microseconds — no scan is touched.
    QueryShedded {
        /// Predicted seconds the request would wait before a worker
        /// reached it.
        estimated_wait_seconds: f64,
        /// The request's deadline budget in seconds.
        deadline_seconds: f64,
    },
    /// The system's circuit breaker is open: recent executions on this
    /// system failed at a rate past the configured threshold, and the
    /// cooldown (or half-open probe budget) has not admitted this
    /// request. Retry later or on another system.
    CircuitOpen {
        /// The system whose breaker rejected the request.
        system: System,
    },
    /// The deadline passed before a worker picked the request up.
    QueryTimedOut {
        /// Seconds the request spent queued before expiring.
        waited_seconds: f64,
    },
    /// The query was cancelled *while running* — an explicit
    /// [`crate::Ticket::cancel`] or an expired deadline tripped the
    /// request's [`obs::CancelToken`] and the engine stopped
    /// cooperatively within one row group. The partial work is discarded
    /// and never billed (no cost is computed on this path).
    Cancelled {
        /// The pipeline stage where the cancellation check fired.
        stage: obs::Stage,
        /// Rows fully processed before the run stopped — bounded by
        /// "rows at the deadline + one row group".
        rows_processed: u64,
        /// Whether the token tripped explicitly or by deadline.
        reason: obs::CancelReason,
    },
    /// The engine failed executing the query (message carries system and
    /// query id).
    Engine(String),
    /// The service shut down with the request still queued.
    Shutdown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueryRejected { queue_depth } => {
                write!(f, "rejected: admission queue full ({queue_depth} deep)")
            }
            ServiceError::QueryShedded {
                estimated_wait_seconds,
                deadline_seconds,
            } => {
                write!(
                    f,
                    "shed: estimated queue wait {estimated_wait_seconds:.3}s exceeds \
                     deadline budget {deadline_seconds:.3}s"
                )
            }
            ServiceError::CircuitOpen { system } => {
                write!(f, "circuit breaker open for {}", system.name())
            }
            ServiceError::QueryTimedOut { waited_seconds } => {
                write!(f, "timed out after {waited_seconds:.3}s in queue")
            }
            ServiceError::Cancelled {
                stage,
                rows_processed,
                reason,
            } => {
                write!(
                    f,
                    "cancelled ({}) in {} after {rows_processed} rows",
                    reason.name(),
                    stage.name()
                )
            }
            ServiceError::Engine(e) => write!(f, "engine error: {e}"),
            ServiceError::Shutdown => write!(f, "service shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}
