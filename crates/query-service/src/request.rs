//! Request/response types and service errors.

use std::time::Duration;

use hepbench_core::runner::System;
use hepbench_core::QueryId;
use nf2_columnar::ExecStats;
use physics::Histogram;

/// One query request from one tenant.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// Tenant identity — the unit of fair scheduling. Tenants share the
    /// data and the caches (the table is immutable, so there is no
    /// cross-tenant leakage to isolate), but queue capacity is dequeued
    /// round-robin across tenants so one flood cannot starve the rest.
    pub tenant: String,
    /// Which simulated system executes the query (selects engine and
    /// dialect).
    pub system: System,
    /// The benchmark query to run.
    pub query: QueryId,
    /// Per-query deadline measured from submission; `None` uses the
    /// service default. A request whose deadline passes while it is still
    /// queued is answered with [`ServiceError::QueryTimedOut`] instead of
    /// executing.
    pub deadline: Option<Duration>,
}

impl QueryRequest {
    /// A request with the service-default deadline.
    pub fn new(tenant: impl Into<String>, system: System, query: QueryId) -> QueryRequest {
        QueryRequest {
            tenant: tenant.into(),
            system,
            query,
            deadline: None,
        }
    }
}

/// A served query result.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The query's histogram.
    pub histogram: Histogram,
    /// Execution statistics. On a result-cache hit this reports **zero
    /// bytes scanned** (all-zero [`nf2_columnar::ScanStats`]): nothing was
    /// read, which is exactly how BigQuery bills cached results.
    pub stats: ExecStats,
    /// Whether the response was served from the result cache.
    pub from_result_cache: bool,
    /// Query cost under the system's pricing model (QaaS: bytes-based,
    /// $0 on a result-cache hit; self-managed: measured wall seconds on
    /// the service's pricing instance).
    pub cost_usd: f64,
    /// Seconds the request waited in the admission queue.
    pub queue_seconds: f64,
    /// End-to-end seconds from submission to completion.
    pub total_seconds: f64,
    /// The request's span tree — queue wait, cache lookup, retries, and
    /// the engine's stage spans — when the service was configured with
    /// `trace: true`; `None` otherwise.
    pub trace: Option<obs::SpanTree>,
}

/// Why the service could not serve a request.
#[derive(Clone, Debug)]
pub enum ServiceError {
    /// Admission control refused the request: the bounded queue is full.
    /// Back off and retry; the alternative is the unbounded pile-up the
    /// paper's QaaS providers avoid the same way.
    QueryRejected {
        /// The configured queue depth that was exhausted.
        queue_depth: usize,
    },
    /// The deadline passed before a worker picked the request up.
    QueryTimedOut {
        /// Seconds the request spent queued before expiring.
        waited_seconds: f64,
    },
    /// The engine failed executing the query (message carries system and
    /// query id).
    Engine(String),
    /// The service shut down with the request still queued.
    Shutdown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueryRejected { queue_depth } => {
                write!(f, "rejected: admission queue full ({queue_depth} deep)")
            }
            ServiceError::QueryTimedOut { waited_seconds } => {
                write!(f, "timed out after {waited_seconds:.3}s in queue")
            }
            ServiceError::Engine(e) => write!(f, "engine error: {e}"),
            ServiceError::Shutdown => write!(f, "service shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}
