//! Property tests for the per-tenant round-robin queue (ISSUE 8
//! satellite): under adversarial arrival orders with thousands of
//! tenants, no tenant is starved and the dequeue order is a fair
//! interleaving — a tenant entering the rotation is served within one
//! rotation length (bounded wait in rounds).
//!
//! The tests drive [`QueueState`] directly (same crate, no service or
//! worker pool involved) so the properties are about the scheduling
//! data structure itself, independent of execution timing.

use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Instant;

use hepbench_core::runner::System;
use hepbench_core::QueryId;
use proptest::prelude::*;

use crate::{Job, QueryRequest, QueueState};

/// A queue-only job: the reply channel's receiver is dropped (nothing
/// executes), and the per-tenant FIFO sequence number rides in the
/// otherwise-unused `parallel_workers` field so pops can be checked for
/// per-tenant order.
fn job(tenant: &str, seq: usize) -> Job {
    let (tx, _rx) = mpsc::channel();
    Job {
        req: QueryRequest::new(tenant, System::BigQuery, QueryId::Q1).with_parallel_workers(seq),
        enqueued: Instant::now(),
        deadline: None,
        cancel: obs::CancelToken::new(),
        reply: tx,
    }
}

fn seq_of(job: &Job) -> usize {
    job.req
        .parallel_workers
        .expect("queue test jobs carry a seq")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batch fairness: push an adversarial arrival order (any tenant
    /// mix, any interleaving), then drain. The pop sequence must be a
    /// round-robin interleaving — every tenant's 1st job before any
    /// tenant's 2nd, and so on — with per-tenant FIFO preserved and
    /// conservation of jobs.
    #[test]
    fn adversarial_batch_drain_is_round_robin(
        pushes in proptest::collection::vec(0u16..2048, 1..3000),
    ) {
        let mut state = QueueState::default();
        let mut next_seq: HashMap<u16, usize> = HashMap::new();
        for &t in &pushes {
            let seq = next_seq.entry(t).or_insert(0);
            state.push(format!("t{t}"), job(&format!("t{t}"), *seq));
            *seq += 1;
        }
        prop_assert_eq!(state.queued, pushes.len());

        let mut served: HashMap<String, usize> = HashMap::new();
        let mut last_round = 1usize;
        let mut popped = 0usize;
        while let Some(j) = state.pop_next() {
            popped += 1;
            let tenant = j.req.tenant.clone();
            let n = served.entry(tenant.clone()).or_insert(0);
            // Per-tenant FIFO: the seq tag is exactly how many of this
            // tenant's jobs were served before.
            prop_assert!(
                seq_of(&j) == *n,
                "tenant {} out of FIFO order: seq {} after {} served",
                tenant, seq_of(&j), *n
            );
            *n += 1;
            // Fair interleaving: the round number (how many times this
            // tenant has now been served) never goes backwards across
            // the pop sequence — round r+1 starts only once every
            // tenant with work has been served r times.
            prop_assert!(
                *n >= last_round,
                "round regressed: tenant {} served its job #{} after round {}",
                tenant, *n, last_round
            );
            last_round = last_round.max(*n);
        }
        prop_assert_eq!(popped, pushes.len());
        prop_assert_eq!(state.queued, 0);
        prop_assert!(state.pop_next().is_none());
    }

    /// Bounded wait under live interleaving of pushes and pops: when a
    /// tenant (re-)enters the rotation, the rotation length at that
    /// instant is `k`, and the tenant must be served within the next
    /// `k` pops — late joiners go to the back but never further, so no
    /// tenant is starved no matter how the others flood the queue.
    #[test]
    fn interleaved_ops_bound_wait_by_rotation_length(
        ops in proptest::collection::vec(0u32..40, 1..800),
    ) {
        let mut state = QueueState::default();
        let mut next_seq: HashMap<u32, usize> = HashMap::new();
        // tenant -> pop count by which it must have been served.
        let mut due: HashMap<String, usize> = HashMap::new();
        let mut pops = 0usize;
        for &op in &ops {
            if op < 8 {
                // Pop (≈20% of ops).
                if let Some(j) = state.pop_next() {
                    pops += 1;
                    due.remove(&j.req.tenant);
                    for (tenant, deadline) in &due {
                        prop_assert!(
                            *deadline >= pops,
                            "tenant {} starved: due by pop {} but {} pops done",
                            tenant, deadline, pops
                        );
                    }
                }
            } else {
                let t = (op - 8) % 24;
                let tenant = format!("t{t}");
                let entering = !state.queues.contains_key(&tenant);
                let seq = next_seq.entry(t).or_insert(0);
                state.push(tenant.clone(), job(&tenant, *seq));
                *seq += 1;
                if entering {
                    // Entered the rotation behind rr.len()-1 others; one
                    // of the next rr.len() pops must serve it.
                    due.insert(tenant, pops + state.rr.len());
                }
            }
        }
    }
}

/// Thousands of tenants, one flooding tenant: the flood pushes 5 000
/// jobs before anyone else arrives, then 3 000 tenants each push one.
/// Round-robin must serve every small tenant within the first rotation
/// (3 001 pops) and only then let the flood drain.
#[test]
fn flood_tenant_cannot_starve_thousands_of_tenants() {
    const SMALL_TENANTS: usize = 3_000;
    const FLOOD_JOBS: usize = 5_000;
    let mut state = QueueState::default();
    for seq in 0..FLOOD_JOBS {
        state.push("flood".to_string(), job("flood", seq));
    }
    for t in 0..SMALL_TENANTS {
        let tenant = format!("t{t}");
        state.push(tenant.clone(), job(&tenant, 0));
    }
    let mut served_small = 0usize;
    let mut popped = 0usize;
    while let Some(j) = state.pop_next() {
        popped += 1;
        if j.req.tenant != "flood" {
            served_small += 1;
        }
        if popped == SMALL_TENANTS + 1 {
            assert_eq!(
                served_small, SMALL_TENANTS,
                "every one-shot tenant is served within one rotation"
            );
        }
        if popped > SMALL_TENANTS + 1 {
            assert_eq!(
                j.req.tenant, "flood",
                "only the flood remains after round one"
            );
        }
    }
    assert_eq!(popped, FLOOD_JOBS + SMALL_TENANTS);
    assert_eq!(state.queued, 0);
}
