//! Plan-keyed result cache — the BigQuery "cached results" model.
//!
//! BigQuery serves a repeated query from a 24-hour result cache when the
//! query text matches byte-for-byte, the referenced tables are unchanged,
//! and the query is deterministic; a hit bills **zero** bytes. The paper
//! explicitly disabled this for its fair comparison (§4.1: "we disabled
//! cached results"), which is why the serving layer exposes a `cache: off`
//! knob reproducing the measured configuration exactly.
//!
//! Our key refines BigQuery's in one paper-relevant way: it is
//! `(language/dialect, whitespace-normalized query text, table
//! fingerprint)`. The language tag keeps the three SQL dialects, JSONiq
//! and RDataFrame apart even where their texts could collide; the
//! fingerprint plays the role of BigQuery's table last-modified check
//! (tables here are immutable, so a fingerprint *is* the version). All
//! benchmark queries are deterministic, satisfying the cacheability
//! condition by construction.
//!
//! The keyspace is bounded by the distinct (language, query) pairs of the
//! workload — there is no eviction, matching the 24-hour-window model at
//! benchmark timescales.

use std::collections::HashMap;

use hepbench_core::queries::{self, Language};
use hepbench_core::runner::System;
use hepbench_core::QueryId;
use nf2_columnar::ScanStats;
use parking_lot::Mutex;
use physics::Histogram;

/// Cache key: dialect, normalized plan text, table version.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// Language/dialect executing the text.
    pub language: Language,
    /// Whitespace-normalized query text.
    pub text: String,
    /// [`nf2_columnar::Table::fingerprint`] of the scanned table.
    pub table_fingerprint: u64,
}

/// The stored outcome of one executed query.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// The result histogram.
    pub histogram: Histogram,
    /// Scan accounting of the run that populated the entry (kept for
    /// introspection; hits are *served* with a zeroed scan).
    pub source_scan: ScanStats,
}

/// Collapses every whitespace run to a single space and trims the ends, so
/// formatting differences (indentation, line breaks) hit the same entry.
/// Case is preserved: JSONiq is case-sensitive, and SQL literals can be.
pub fn normalize_query_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_ws = true; // leading whitespace is dropped
    for c in text.chars() {
        if c.is_whitespace() {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// The language whose query text a system executes.
pub fn language_of(system: System) -> Language {
    match system {
        System::BigQuery | System::BigQueryExternal => Language::BigQuery,
        System::AthenaV2 | System::AthenaV1 => Language::Athena,
        System::Presto => Language::Presto,
        System::Rumble => Language::Jsoniq,
        System::RDataFrame | System::RDataFrameDev => Language::RDataFrame,
    }
}

/// Builds the cache key a (system, query) request resolves to.
pub fn result_key(system: System, q: QueryId, table_fingerprint: u64) -> ResultKey {
    let language = language_of(system);
    ResultKey {
        language,
        text: normalize_query_text(&queries::text(language, q)),
        table_fingerprint,
    }
}

/// A shared, thread-safe result cache with hit/miss counters.
#[derive(Default)]
pub struct ResultCache {
    map: Mutex<HashMap<ResultKey, CachedResult>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl ResultCache {
    /// Creates an empty cache.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Looks up a result, counting the hit or miss.
    pub fn get(&self, key: &ResultKey) -> Option<CachedResult> {
        use std::sync::atomic::Ordering;
        let got = self.map.lock().get(key).cloned();
        match &got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Stores a result (last write wins; entries are deterministic, so
    /// concurrent writers store identical values).
    pub fn put(&self, key: ResultKey, value: CachedResult) {
        self.map.lock().insert(key, value);
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction.
    pub fn counters(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_collapses_whitespace_only() {
        assert_eq!(
            normalize_query_text("  SELECT\n\t x ,  y\nFROM t  "),
            "SELECT x , y FROM t"
        );
        // Case and literal spelling are preserved.
        assert_eq!(normalize_query_text("Select 'A  B'"), "Select 'A B'");
        assert_ne!(normalize_query_text("select x"), "SELECT x");
    }

    #[test]
    fn keys_separate_dialects_and_table_versions() {
        let a = result_key(System::BigQuery, QueryId::Q1, 1);
        let b = result_key(System::Presto, QueryId::Q1, 1);
        let c = result_key(System::BigQuery, QueryId::Q1, 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // The two BigQuery deployments share one plan key.
        assert_eq!(a, result_key(System::BigQueryExternal, QueryId::Q1, 1));
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let cache = ResultCache::new();
        let k = result_key(System::Rumble, QueryId::Q2, 7);
        assert!(cache.get(&k).is_none());
        cache.put(
            k.clone(),
            CachedResult {
                histogram: Histogram::new(QueryId::Q2.hist_spec()),
                source_scan: ScanStats::default(),
            },
        );
        assert!(cache.get(&k).is_some());
        assert_eq!(cache.counters(), (1, 1));
        assert_eq!(cache.len(), 1);
    }
}
