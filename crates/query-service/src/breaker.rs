//! Per-system circuit breakers over the serving layer's fault stats.
//!
//! A breaker watches the recent success/failure outcomes of one system's
//! engine executions (the same outcomes the retry path and
//! `ServiceStats` already observe) in a sliding window. When the failure
//! rate crosses a threshold the breaker **opens**: admission rejects the
//! system's requests in O(µs) instead of queueing work that will almost
//! certainly fail, exactly the pattern a real serving tier puts in front
//! of a flaky storage backend. After a cooldown the breaker goes
//! **half-open** and admits a bounded number of probe requests; enough
//! probe successes close it again, any probe failure re-opens it.
//!
//! The state machine is deliberately classical:
//!
//! ```text
//!            failure rate ≥ threshold
//!   Closed ───────────────────────────▶ Open
//!     ▲                                  │ cooldown elapsed
//!     │  half_open_probes successes      ▼
//!     └──────────────────────────── HalfOpen
//!                                        │ any probe failure
//!                                        └─────────▶ Open (cooldown restarts)
//! ```
//!
//! Cancellations never feed a breaker: a client hanging up (or a
//! deadline expiring) says nothing about the backend's health.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning for one [`CircuitBreaker`]. The service builds one breaker per
/// servable system from a single shared config.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Sliding window: how many recent outcomes the failure rate is
    /// computed over.
    pub window: usize,
    /// Open when `failures / outcomes ≥ failure_threshold` (with at
    /// least `min_samples` outcomes in the window).
    pub failure_threshold: f64,
    /// Outcomes required in the window before the threshold is
    /// evaluated — a single early failure must not trip the breaker.
    pub min_samples: usize,
    /// How long an open breaker rejects before probing (half-open).
    pub cooldown: Duration,
    /// Probes admitted in half-open; this many consecutive successes
    /// close the breaker.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            window: 32,
            failure_threshold: 0.5,
            min_samples: 8,
            cooldown: Duration::from_millis(100),
            half_open_probes: 2,
        }
    }
}

/// Where a breaker currently is in its state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all requests admitted, outcomes tracked.
    Closed,
    /// Tripped: requests rejected until the cooldown elapses.
    Open,
    /// Probing: a bounded number of requests admitted to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (metric/gauge label).
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Numeric encoding for gauges: closed=0, half-open=1, open=2.
    pub fn as_gauge(&self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

struct Inner {
    state: BreakerState,
    /// Recent outcomes, `true` = failure; bounded by `config.window`.
    window: VecDeque<bool>,
    failures: usize,
    opened_at: Option<Instant>,
    probes_in_flight: u32,
    probe_successes: u32,
}

/// One system's breaker. All methods are O(1) under a short mutex, so an
/// open breaker rejects in microseconds without touching the scan layer.
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with an empty window.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                window: VecDeque::new(),
                failures: 0,
                opened_at: None,
                probes_in_flight: 0,
                probe_successes: 0,
            }),
        }
    }

    /// The current state. Open→half-open is a lazy transition made by
    /// [`CircuitBreaker::try_admit`], so an idle open breaker reports
    /// `Open` even after its cooldown elapsed.
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Admission check: `true` admits the request (and, in half-open,
    /// reserves one probe slot). `false` means reject without executing.
    pub fn try_admit(&self) -> bool {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .is_some_and(|t| t.elapsed() >= self.config.cooldown);
                if !cooled {
                    return false;
                }
                inner.state = BreakerState::HalfOpen;
                inner.probes_in_flight = 1;
                inner.probe_successes = 0;
                true
            }
            BreakerState::HalfOpen => {
                if inner.probes_in_flight >= self.config.half_open_probes {
                    return false;
                }
                inner.probes_in_flight += 1;
                true
            }
        }
    }

    /// Records one execution outcome. Call once per engine attempt that
    /// actually ran (never for cancellations or admission rejections).
    pub fn record(&self, success: bool) {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.window.push_back(!success);
                inner.failures += usize::from(!success);
                while inner.window.len() > self.config.window {
                    let evicted = inner.window.pop_front().expect("window non-empty");
                    inner.failures -= usize::from(evicted);
                }
                let n = inner.window.len();
                if n >= self.config.min_samples.max(1)
                    && inner.failures as f64 / n as f64 >= self.config.failure_threshold
                {
                    Self::trip(&mut inner);
                }
            }
            BreakerState::HalfOpen => {
                inner.probes_in_flight = inner.probes_in_flight.saturating_sub(1);
                if success {
                    inner.probe_successes += 1;
                    if inner.probe_successes >= self.config.half_open_probes {
                        inner.state = BreakerState::Closed;
                        inner.window.clear();
                        inner.failures = 0;
                        inner.opened_at = None;
                    }
                } else {
                    Self::trip(&mut inner);
                }
            }
            // A request admitted while closed can finish after the
            // breaker opened; its outcome is stale — ignore it.
            BreakerState::Open => {}
        }
    }

    fn trip(inner: &mut Inner) {
        inner.state = BreakerState::Open;
        inner.opened_at = Some(Instant::now());
        inner.window.clear();
        inner.failures = 0;
        inner.probes_in_flight = 0;
        inner.probe_successes = 0;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            failure_threshold: 0.5,
            min_samples: 4,
            cooldown: Duration::from_millis(10),
            half_open_probes: 2,
        }
    }

    #[test]
    fn closed_breaker_admits_and_stays_closed_on_success() {
        let b = CircuitBreaker::new(config());
        for _ in 0..20 {
            assert!(b.try_admit());
            b.record(true);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn min_samples_guards_against_early_failures() {
        let b = CircuitBreaker::new(config());
        b.record(false);
        b.record(false);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Closed, "below min_samples");
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open, "4 samples, 100% failure");
    }

    #[test]
    fn failure_rate_over_window_opens_breaker() {
        let b = CircuitBreaker::new(config());
        // Alternate: 50% failure rate meets the threshold exactly at the
        // fourth sample (min_samples).
        b.record(true);
        b.record(false);
        b.record(true);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_admit(), "open breaker rejects before cooldown");
    }

    #[test]
    fn window_slides_old_failures_out() {
        let b = CircuitBreaker::new(config());
        // One early failure, flushed out by a window's worth of
        // successes...
        b.record(false);
        for _ in 0..8 {
            b.record(true);
        }
        // ...no longer counts: three fresh failures are 3/8, under the
        // threshold.
        for _ in 0..3 {
            b.record(false);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // The fourth makes 4/8 in the window — exactly the threshold.
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_to_half_open_to_closed_with_probe_accounting() {
        let b = CircuitBreaker::new(config());
        for _ in 0..4 {
            b.record(false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(15));
        // First admit after cooldown is the first probe.
        assert!(b.try_admit());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Second probe slot is available; a third concurrent probe is not.
        assert!(b.try_admit());
        assert!(
            !b.try_admit(),
            "probe slots are bounded by half_open_probes"
        );
        b.record(true);
        assert_eq!(
            b.state(),
            BreakerState::HalfOpen,
            "one success is not enough"
        );
        // The finished probe freed its slot.
        assert!(b.try_admit());
        b.record(true);
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "enough probe successes close"
        );
        assert!(b.try_admit());
    }

    #[test]
    fn probe_failure_reopens_and_cooldown_restarts() {
        let b = CircuitBreaker::new(config());
        for _ in 0..4 {
            b.record(false);
        }
        std::thread::sleep(Duration::from_millis(15));
        assert!(b.try_admit());
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open, "probe failure re-opens");
        assert!(!b.try_admit(), "cooldown restarted at the probe failure");
        std::thread::sleep(Duration::from_millis(15));
        assert!(b.try_admit(), "probes again after the second cooldown");
        b.record(true);
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn stale_outcomes_while_open_are_ignored() {
        let b = CircuitBreaker::new(config());
        for _ in 0..4 {
            b.record(false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // A request admitted before the trip reports late.
        b.record(true);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_admit());
    }
}
