//! Concurrent multi-tenant query serving over the benchmark engines.
//!
//! The paper measures one query at a time, but the systems it measures —
//! BigQuery, Athena, a Presto cluster — are *servers*: many tenants, a
//! bounded admission queue, and (for BigQuery) a results cache that the
//! authors explicitly disabled for fairness. This crate supplies that
//! serving layer for the simulated systems so concurrent behavior
//! (queueing, admission control, cache economics) can be studied on the
//! same engines the single-query benchmarks exercise.
//!
//! A [`QueryService`] owns an immutable [`Table`] behind an `Arc` and a
//! pool of worker threads. Requests name a tenant, a
//! [`System`] and a
//! [`QueryId`](hepbench_core::QueryId); they pass admission control (a
//! bounded queue — full ⇒ [`ServiceError::QueryRejected`]), wait in
//! per-tenant FIFO queues drained round-robin across tenants (one noisy
//! tenant cannot starve the rest), and execute through
//! [`hepbench_core::runner::execute_engine`] — exactly the primitive the
//! single-query benchmark uses, so a served result is the benchmark
//! result.
//!
//! Two caches, both optional:
//!
//! * a **buffer pool** ([`nf2_columnar::ChunkCache`]) shared by all
//!   workers, fronting physical chunk reads. Accounting-only: billed
//!   bytes and results never change, hits show up as
//!   `ScanStats::bytes_from_cache`.
//! * a **result cache** ([`result_cache::ResultCache`]) keyed on
//!   (dialect, normalized query text, table fingerprint) — BigQuery's
//!   "cached results". A hit returns the stored histogram with **zero
//!   bytes scanned** and zero QaaS cost.
//!
//! [`ServiceConfig::paper_fairness`] turns both off, reproducing the
//! paper's measured configuration byte-for-byte (verified by
//! `tests/service_cache.rs`).
//!
//! The serving layer also carries the overload-protection machinery a
//! real multi-tenant deployment needs, all off by default and off under
//! [`ServiceConfig::paper_fairness`]:
//!
//! * **cooperative cancellation** — every request gets an
//!   [`obs::CancelToken`] (deadline-armed when the request has one);
//!   [`Ticket::cancel`] or deadline expiry stops a *running* query
//!   within one row group, surfacing as [`ServiceError::Cancelled`]
//!   with the stage and rows processed, never billed;
//! * **load shedding** ([`ServiceConfig::load_shedding`]) — admission
//!   rejects requests whose estimated queue wait already exceeds their
//!   deadline;
//! * **circuit breakers** ([`ServiceConfig::breaker`]) — per-system
//!   sliding-window breakers reject requests to a failing system in
//!   O(µs), with half-open probing after a cooldown;
//! * **hedged execution** ([`ServiceConfig::hedge`]) — a straggling
//!   query gets a second attempt after a percentile-based delay; the
//!   first result wins and the loser is cancelled through its token.

pub mod breaker;
#[cfg(test)]
mod queue_proptests;
pub mod request;
pub mod result_cache;
pub mod stats;

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cloud_sim::InstanceType;
use hepbench_core::adapters::{AdapterError, EngineRun, ExecEnv};
use hepbench_core::engine_api::{engine_for, engine_for_compiled, QueryEngine, QuerySpec};
use hepbench_core::runner::{System, ALL_SYSTEMS};
use nf2_columnar::{CacheCounters, ChunkCache, ExecStats, FaultInjector, ScanStats, Table};

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use request::{QueryRequest, QueryResponse, ServiceError};
pub use result_cache::{normalize_query_text, result_key, CachedResult, ResultCache, ResultKey};
pub use stats::{ServiceStats, StatsSnapshot};

/// Serving configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads executing queries; `0` ⇒ one per available core.
    pub n_workers: usize,
    /// Admission-control bound: total requests allowed in the queue
    /// (across all tenants). Submissions beyond it are rejected.
    pub queue_depth: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Serve repeated identical queries from the result cache (the knob
    /// the paper turned *off* for its fair comparison).
    pub result_cache: bool,
    /// Buffer-pool budget in bytes; `0` disables the chunk cache.
    pub chunk_cache_bytes: usize,
    /// Threads *within* one query; `0` ⇒ engine default (all cores). A
    /// serving deployment typically pins this to 1 and gets its
    /// parallelism across concurrent queries instead.
    pub intra_query_threads: usize,
    /// Zone-map row-group pruning in every engine's scan (on by
    /// default). Results are byte-identical either way; pruned bytes are
    /// billed separately (`ScanStats::bytes_pruned`) and surface as the
    /// `row_groups_pruned` / `bytes_pruned` metrics. Off under
    /// [`ServiceConfig::paper_fairness`]: the paper's systems read every
    /// row group, and fairness mode reproduces that byte-for-byte.
    pub zone_map_pruning: bool,
    /// Instance whose hourly price converts measured wall seconds into
    /// self-managed serving cost.
    pub pricing_instance: &'static str,
    /// Chaos-layer fault injector applied to every worker's physical
    /// chunk reads (`None`, the default, serves the fault-free path —
    /// [`ServiceConfig::paper_fairness`] keeps it off).
    pub fault_injector: Option<Arc<FaultInjector>>,
    /// How many times a worker re-runs a query that failed with a
    /// *retryable* scan fault (transient I/O, checksum mismatch,
    /// truncated row group) before surfacing the error.
    pub max_retries: u32,
    /// Base backoff between retries; attempt `k` sleeps
    /// `retry_backoff × 2^(k−1)`, shrunk by seeded jitter (see
    /// [`ServiceConfig::retry_jitter`]).
    pub retry_backoff: Duration,
    /// Fraction of each backoff that deterministic jitter may subtract
    /// (decorrelates retry storms across concurrent jobs without an RNG
    /// dependency). Attempt `k` of job `j` sleeps
    /// `retry_backoff × 2^(k−1) × (1 − retry_jitter × u(j, k))` with
    /// `u ∈ [0, 1)` a splitmix64 hash of
    /// `(retry_jitter_seed, job sequence number, k)` — fully
    /// reproducible under a fixed seed, shrink-only so a jittered sleep
    /// never exceeds the exponential bound. `0` disables jitter;
    /// clamped to `[0, 1]`.
    pub retry_jitter: f64,
    /// Seed of the deterministic retry jitter stream (see
    /// [`ServiceConfig::retry_jitter`]).
    pub retry_jitter_seed: u64,
    /// Morsel-level fault recovery on the compiled-parallel path
    /// (default off, and off under
    /// [`ServiceConfig::paper_fairness`]). When on, a compiled request's
    /// transient scan faults are retried per morsel inside `exec_par` —
    /// quarantine, deque reassignment and serial fallback included —
    /// instead of failing the attempt and re-running the *whole query*
    /// through this service's retry loop. Morsel-level recoveries are
    /// invisible to the whole-query retry counter and the per-system
    /// circuit breakers: the attempt simply succeeds, and the recovery
    /// counters surface in [`QueryResponse::stats`].
    pub morsel_recovery: bool,
    /// Record a span tree per served query (queue wait, cache lookup,
    /// retries, engine stages) and return it in
    /// [`QueryResponse::trace`]. Off by default — and off under
    /// [`ServiceConfig::paper_fairness`] — so the serving path stays a
    /// near-no-op when untraced.
    pub trace: bool,
    /// Admission-time load shedding: reject a request with
    /// [`ServiceError::QueryShedded`] when the estimated queue wait
    /// (EWMA of recent execution times × queue depth ÷ workers) already
    /// exceeds its deadline budget. Requests without a deadline are
    /// never shed. Off by default and under
    /// [`ServiceConfig::paper_fairness`].
    pub load_shedding: bool,
    /// Per-system circuit breakers over engine execution outcomes;
    /// `None` (the default, and under
    /// [`ServiceConfig::paper_fairness`]) disables them. When set, an
    /// open breaker rejects the system's requests at admission with
    /// [`ServiceError::CircuitOpen`]; states are visible as
    /// `breaker_state_<system>` gauges in
    /// [`QueryService::metrics_snapshot`].
    pub breaker: Option<BreakerConfig>,
    /// Opt-in hedged execution; `None` (the default, and under
    /// [`ServiceConfig::paper_fairness`]) disables it. When set, an
    /// engine attempt that outlives the hedge delay gets a second
    /// identical attempt; the first reply wins and the loser is
    /// cancelled through a child of the request's cancel token.
    pub hedge: Option<HedgeConfig>,
}

/// Tuning for hedged execution (see [`ServiceConfig::hedge`]).
#[derive(Clone, Debug)]
pub struct HedgeConfig {
    /// Launch the hedge once the primary attempt has run longer than
    /// this percentile of recent execution times (nearest-rank over the
    /// service's completed-execution samples).
    pub percentile: f64,
    /// Lower bound on the hedge delay; also the delay used before any
    /// execution samples exist.
    pub min_delay: Duration,
}

impl Default for HedgeConfig {
    fn default() -> HedgeConfig {
        HedgeConfig {
            percentile: 0.95,
            min_delay: Duration::from_millis(10),
        }
    }
}

impl Default for ServiceConfig {
    /// A serving deployment: both caches on, one thread per query.
    fn default() -> ServiceConfig {
        ServiceConfig {
            n_workers: 0,
            queue_depth: 64,
            default_deadline: None,
            result_cache: true,
            chunk_cache_bytes: 64 << 20,
            intra_query_threads: 1,
            zone_map_pruning: true,
            pricing_instance: "m5d.4xlarge",
            fault_injector: None,
            max_retries: 3,
            retry_backoff: Duration::from_millis(1),
            retry_jitter: 0.5,
            retry_jitter_seed: 0x5EED_0FF5,
            morsel_recovery: false,
            trace: false,
            load_shedding: false,
            breaker: None,
            hedge: None,
        }
    }
}

impl ServiceConfig {
    /// The paper's measured configuration: **both caches off** (§4.1
    /// disabled BigQuery's cached results for fairness), engine-default
    /// intra-query parallelism. With this config a served query is
    /// byte-for-byte identical — histogram and `ScanStats` — to the
    /// single-query benchmark path. The overload knobs (shedding,
    /// breakers, hedging) inherit their off-defaults, so none of them
    /// can perturb the measured configuration.
    pub fn paper_fairness() -> ServiceConfig {
        ServiceConfig {
            result_cache: false,
            chunk_cache_bytes: 0,
            intra_query_threads: 0,
            zone_map_pruning: false,
            ..ServiceConfig::default()
        }
    }
}

/// One queued request plus its reply channel.
struct Job {
    req: QueryRequest,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// The request's cancellation token, deadline-armed when the request
    /// has one and shared with the caller's [`Ticket`]. Threaded through
    /// [`ExecEnv`] so the engines check it once per row group.
    cancel: obs::CancelToken,
    reply: mpsc::Sender<Result<QueryResponse, ServiceError>>,
}

/// Per-tenant FIFO queues with a round-robin rotation of non-empty
/// tenants. `queued` is the admission-control total across tenants.
#[derive(Default)]
struct QueueState {
    queues: HashMap<String, VecDeque<Job>>,
    rr: VecDeque<String>,
    queued: usize,
    shutdown: bool,
}

impl QueueState {
    fn push(&mut self, tenant: String, job: Job) {
        let queue = self.queues.entry(tenant.clone()).or_default();
        if queue.is_empty() {
            self.rr.push_back(tenant);
        }
        queue.push_back(job);
        self.queued += 1;
    }

    /// Fair dequeue: next job of the tenant at the front of the rotation;
    /// the tenant goes to the back of the rotation if it has more work.
    fn pop_next(&mut self) -> Option<Job> {
        while let Some(tenant) = self.rr.pop_front() {
            let Some(queue) = self.queues.get_mut(&tenant) else {
                continue;
            };
            let Some(job) = queue.pop_front() else {
                self.queues.remove(&tenant);
                continue;
            };
            self.queued -= 1;
            if queue.is_empty() {
                self.queues.remove(&tenant);
            } else {
                self.rr.push_back(tenant);
            }
            return Some(job);
        }
        None
    }

    fn drain_all(&mut self) -> Vec<Job> {
        let mut jobs = Vec::with_capacity(self.queued);
        for (_, queue) in self.queues.drain() {
            jobs.extend(queue);
        }
        self.rr.clear();
        self.queued = 0;
        jobs
    }
}

/// State shared between the handle and the workers.
struct Shared {
    table_fingerprint: u64,
    config: ServiceConfig,
    pricing_instance: &'static InstanceType,
    queue: Mutex<QueueState>,
    available: Condvar,
    result_cache: Option<ResultCache>,
    chunk_cache: Option<Arc<ChunkCache>>,
    stats: ServiceStats,
    /// One engine per servable system, built once at startup and shared
    /// by every worker — the service's only execution path.
    engines: HashMap<System, Box<dyn QueryEngine>>,
    /// The compiled deployments ([`engine_for_compiled`]), used only by
    /// requests that set [`QueryRequest::compiled`]. Default requests —
    /// and everything [`ServiceConfig::paper_fairness`] measures — never
    /// touch these.
    engines_compiled: HashMap<System, Box<dyn QueryEngine>>,
    /// Service-wide counters and latency histograms; see
    /// [`QueryService::metrics_snapshot`].
    metrics: obs::MetricsRegistry,
    /// Resolved worker count (the `n_workers == 0` default expanded),
    /// the divisor in the load-shedding wait estimate.
    n_workers: usize,
    /// EWMA of recent engine execution seconds, stored as `f64` bits so
    /// readers never lock. Zero until the first completed execution;
    /// the read-modify-write race between workers is benign (the
    /// estimate is approximate by construction).
    exec_ewma_bits: std::sync::atomic::AtomicU64,
    /// Completed-execution wall-time samples feeding the hedge-delay
    /// percentile. Grows with completed requests, like the stats
    /// latency vectors — fine for benchmark-length runs.
    exec_samples: Mutex<Vec<f64>>,
    /// One breaker per servable system when breakers are configured.
    breakers: Option<HashMap<System, CircuitBreaker>>,
    /// Monotone per-job sequence feeding the retry-jitter nonce, so two
    /// jobs retrying the same attempt number draw different (but still
    /// seed-pinned) jitter and don't re-collide on every backoff.
    jitter_seq: std::sync::atomic::AtomicU64,
}

impl Shared {
    /// Locks the queue, recovering from poisoning (a worker can only
    /// panic outside the lock, but stay robust anyway).
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A pending response; [`Ticket::wait`] blocks until the worker replies.
/// Also the request's cancellation handle: [`Ticket::cancel`] trips the
/// token a running query checks once per row group.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<QueryResponse, ServiceError>>,
    cancel: obs::CancelToken,
}

/// The handle a caller keeps for an in-flight query — wait on it or
/// cancel it.
pub type QueryHandle = Ticket;

impl Ticket {
    /// Blocks until the request is answered. A disconnected channel means
    /// the service dropped the job during shutdown.
    pub fn wait(self) -> Result<QueryResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Shutdown))
    }

    /// Cooperatively cancels the request. A queued job is answered with
    /// [`ServiceError::Cancelled`] at dequeue; a running query stops
    /// within one row group and answers the same way. Idempotent, and a
    /// no-op once the request has been answered.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The request's cancellation token (e.g. to link it into a larger
    /// cancellation scope).
    pub fn cancel_token(&self) -> &obs::CancelToken {
        &self.cancel
    }
}

/// An embedded multi-tenant query server over one immutable table.
///
/// Dropping the service shuts it down: queued requests are answered with
/// [`ServiceError::Shutdown`], in-flight queries finish, workers join.
pub struct QueryService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Starts the worker pool and returns the serving handle.
    pub fn start(table: Arc<Table>, config: ServiceConfig) -> QueryService {
        let pricing_instance = cloud_sim::instances::by_name(config.pricing_instance)
            .unwrap_or_else(|| panic!("unknown pricing instance {:?}", config.pricing_instance));
        let n_workers = if config.n_workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            config.n_workers
        };
        let engines = ALL_SYSTEMS
            .iter()
            .map(|s| (*s, engine_for(*s, table.clone())))
            .collect();
        let engines_compiled = ALL_SYSTEMS
            .iter()
            .map(|s| (*s, engine_for_compiled(*s, table.clone())))
            .collect();
        let shared = Arc::new(Shared {
            table_fingerprint: table.fingerprint(),
            pricing_instance,
            queue: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            result_cache: config.result_cache.then(ResultCache::new),
            chunk_cache: (config.chunk_cache_bytes > 0)
                .then(|| Arc::new(ChunkCache::new(config.chunk_cache_bytes))),
            stats: ServiceStats::new(),
            engines,
            engines_compiled,
            metrics: obs::MetricsRegistry::new(),
            n_workers,
            exec_ewma_bits: std::sync::atomic::AtomicU64::new(0),
            exec_samples: Mutex::new(Vec::new()),
            breakers: config.breaker.as_ref().map(|cfg| {
                ALL_SYSTEMS
                    .iter()
                    .map(|s| (*s, CircuitBreaker::new(cfg.clone())))
                    .collect()
            }),
            jitter_seq: std::sync::atomic::AtomicU64::new(0),
            config,
        });
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("query-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn query worker")
            })
            .collect();
        QueryService { shared, workers }
    }

    /// Submits a request through admission control; returns a [`Ticket`]
    /// to wait on, or rejects immediately when the queue is full.
    ///
    /// An open-loop request carrying [`QueryRequest::arrival`] is
    /// charged from that intended instant: its deadline is armed at
    /// `arrival + budget` and its queue wait / end-to-end latency
    /// include any lag between intended arrival and this call, so a
    /// saturated submitter cannot hide queue delay (no coordinated
    /// omission).
    pub fn submit(&self, req: QueryRequest) -> Result<Ticket, ServiceError> {
        self.shared.stats.note_submitted();
        self.shared.metrics.counter_inc("queries_submitted");
        let arrived = req.arrival.unwrap_or_else(Instant::now);
        // Breaker admission: an open breaker answers in microseconds
        // without taking the queue lock or touching any scan state.
        if let Some(breakers) = &self.shared.breakers {
            let b = breakers
                .get(&req.system)
                .expect("a breaker per system is built at startup");
            if !b.try_admit() {
                self.shared.stats.note_rejected();
                self.shared.metrics.counter_inc("breaker_rejected");
                observe_outcome(&self.shared, "breaker", arrived);
                return Err(ServiceError::CircuitOpen { system: req.system });
            }
        }
        let (tx, rx) = mpsc::channel();
        let cancel;
        {
            let mut state = self.shared.lock_queue();
            if state.shutdown {
                return Err(ServiceError::Shutdown);
            }
            if state.queued >= self.shared.config.queue_depth {
                self.shared.stats.note_rejected();
                observe_outcome(&self.shared, "rejected", arrived);
                return Err(ServiceError::QueryRejected {
                    queue_depth: self.shared.config.queue_depth,
                });
            }
            let now = Instant::now();
            let budget = req.deadline.or(self.shared.config.default_deadline);
            let deadline = budget.map(|d| arrived + d);
            // Load shedding: if the backlog alone is predicted to outlast
            // the *remaining* deadline budget (which an open-loop arrival
            // timestamp may already have eaten into), refuse now instead
            // of queueing doomed work.
            if self.shared.config.load_shedding {
                if let Some(deadline) = deadline {
                    let ewma = f64::from_bits(self.shared.exec_ewma_bits.load(Ordering::Relaxed));
                    if ewma > 0.0 {
                        let remaining = deadline.saturating_duration_since(now);
                        let estimated_wait =
                            ewma * state.queued as f64 / self.shared.n_workers as f64;
                        if estimated_wait > remaining.as_secs_f64() {
                            self.shared.stats.note_shedded();
                            self.shared.metrics.counter_inc("queries_shedded");
                            observe_outcome(&self.shared, "shedded", arrived);
                            return Err(ServiceError::QueryShedded {
                                estimated_wait_seconds: estimated_wait,
                                deadline_seconds: remaining.as_secs_f64(),
                            });
                        }
                    }
                }
            }
            cancel = match deadline {
                Some(d) => obs::CancelToken::with_deadline(d),
                None => obs::CancelToken::new(),
            };
            let tenant = req.tenant.clone();
            state.push(
                tenant,
                Job {
                    req,
                    enqueued: arrived,
                    deadline,
                    cancel: cancel.clone(),
                    reply: tx,
                },
            );
        }
        self.shared.available.notify_one();
        Ok(Ticket { rx, cancel })
    }

    /// Submits and blocks for the response.
    pub fn execute(&self, req: QueryRequest) -> Result<QueryResponse, ServiceError> {
        self.submit(req)?.wait()
    }

    /// Aggregated service counters and latency percentiles.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Point-in-time view of the service's [`obs::MetricsRegistry`]:
    /// submission/completion counters, cache hit/miss counters, retry
    /// counts, and queue-wait / execution-latency histograms. Render
    /// with [`obs::MetricsSnapshot::to_text`] or
    /// [`obs::MetricsSnapshot::to_json`]. When circuit breakers are
    /// configured the snapshot carries one `breaker_state_<system>`
    /// gauge per system (0 = closed, 1 = half-open, 2 = open).
    pub fn metrics_snapshot(&self) -> obs::MetricsSnapshot {
        if let Some(breakers) = &self.shared.breakers {
            for (system, b) in breakers {
                self.shared.metrics.gauge_set(
                    &format!("breaker_state_{}", system.name()),
                    b.state().as_gauge(),
                );
            }
        }
        self.shared.metrics.snapshot()
    }

    /// The mergeable per-outcome end-to-end latency histogram —
    /// `outcome` is one of `completed`, `cancelled`, `timed_out`,
    /// `failed`, `rejected`, `shedded`, `breaker` — measured from each
    /// request's intended arrival. `None` until a request reached that
    /// outcome. Load harnesses fold these into offered-load curves with
    /// [`obs::Log2Histogram::merge`] and quantile them for SLO gates.
    pub fn latency_histogram(&self, outcome: &str) -> Option<obs::Log2Histogram> {
        self.shared
            .metrics
            .histogram_state(&format!("latency_seconds_{outcome}"))
    }

    /// The current breaker state for one system, when breakers are
    /// configured.
    pub fn breaker_state(&self, system: System) -> Option<BreakerState> {
        self.shared
            .breakers
            .as_ref()
            .and_then(|b| b.get(&system))
            .map(|b| b.state())
    }

    /// Result-cache `(hits, misses)`, when the result cache is enabled.
    pub fn result_cache_counters(&self) -> Option<(u64, u64)> {
        self.shared.result_cache.as_ref().map(|c| c.counters())
    }

    /// Buffer-pool counters, when the chunk cache is enabled.
    pub fn chunk_cache_counters(&self) -> Option<CacheCounters> {
        self.shared.chunk_cache.as_ref().map(|c| c.counters())
    }

    /// Fingerprint of the served table (the result cache's version tag).
    pub fn table_fingerprint(&self) -> u64 {
        self.shared.table_fingerprint
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        let drained = {
            let mut state = self.shared.lock_queue();
            state.shutdown = true;
            state.drain_all()
        };
        self.shared.available.notify_all();
        for job in drained {
            let _ = job.reply.send(Err(ServiceError::Shutdown));
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Records a request's end-to-end latency — measured from its intended
/// arrival — into the per-outcome `latency_seconds_<outcome>` histogram.
/// Keyed by outcome so an SLO gate can quantile *completed* latency
/// without cancelled or shed requests polluting the tail.
fn observe_outcome(shared: &Shared, outcome: &str, arrived: Instant) {
    shared.metrics.observe(
        &format!("latency_seconds_{outcome}"),
        arrived.elapsed().as_secs_f64(),
    );
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.lock_queue();
            loop {
                if let Some(job) = state.pop_next() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .available
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let now = Instant::now();
        // A request whose token tripped while it sat in the queue never
        // executes: a queue-expired deadline keeps its classic timeout
        // answer, an explicit cancel is reported as such.
        if let Err(c) = job.cancel.check(obs::Stage::QueueWait, 0) {
            match c.reason {
                obs::CancelReason::DeadlineExceeded => {
                    shared.stats.note_timed_out();
                    observe_outcome(shared, "timed_out", job.enqueued);
                    let _ = job.reply.send(Err(ServiceError::QueryTimedOut {
                        waited_seconds: (now - job.enqueued).as_secs_f64(),
                    }));
                }
                obs::CancelReason::Explicit => {
                    shared.stats.note_cancelled();
                    shared.metrics.counter_inc("queries_cancelled");
                    observe_outcome(shared, "cancelled", job.enqueued);
                    let _ = job.reply.send(Err(ServiceError::Cancelled {
                        stage: obs::Stage::QueueWait,
                        rows_processed: 0,
                        reason: c.reason,
                    }));
                }
            }
            continue;
        }
        if let Some(deadline) = job.deadline {
            if now > deadline {
                shared.stats.note_timed_out();
                observe_outcome(shared, "timed_out", job.enqueued);
                let _ = job.reply.send(Err(ServiceError::QueryTimedOut {
                    waited_seconds: (now - job.enqueued).as_secs_f64(),
                }));
                continue;
            }
        }
        let queue_seconds = (now - job.enqueued).as_secs_f64();
        // Panic isolation: a query that panics (e.g. an injected panic
        // fault, or an engine bug) must not take the worker thread — and
        // with it a slice of the pool's capacity — down with it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve(shared, &job, queue_seconds)
        }))
        .unwrap_or_else(|payload| {
            Err(ServiceError::Engine(format!(
                "query worker panicked serving {} on {}: {}",
                job.req.query.name(),
                job.req.system.name(),
                panic_message(&payload)
            )))
        });
        match &result {
            Ok(resp) => {
                shared
                    .stats
                    .note_completed(resp.total_seconds, resp.queue_seconds);
                shared.metrics.counter_inc("queries_completed");
                shared
                    .metrics
                    .counter_add("row_groups_pruned", resp.stats.scan.groups_pruned);
                shared
                    .metrics
                    .counter_add("bytes_pruned", resp.stats.scan.bytes_pruned);
                observe_outcome(shared, "completed", job.enqueued);
            }
            Err(ServiceError::Cancelled { .. }) => {
                shared.stats.note_cancelled();
                shared.metrics.counter_inc("queries_cancelled");
                observe_outcome(shared, "cancelled", job.enqueued);
            }
            Err(ServiceError::QueryTimedOut { .. }) => {
                shared.stats.note_timed_out();
                shared.metrics.counter_inc("queries_timed_out");
                observe_outcome(shared, "timed_out", job.enqueued);
            }
            Err(_) => {
                shared.stats.note_failed();
                shared.metrics.counter_inc("queries_failed");
                observe_outcome(shared, "failed", job.enqueued);
            }
        }
        let _ = job.reply.send(result);
    }
}

/// Serves one admitted request: result-cache lookup, engine execution on
/// miss (cancellable, deadline-clamped retries, optional hedging), cache
/// fill, pricing.
fn serve(shared: &Shared, job: &Job, queue_seconds: f64) -> Result<QueryResponse, ServiceError> {
    let req = &job.req;
    let enqueued = job.enqueued;
    // The per-request trace epoch is the *submission* instant, so the
    // queue wait — which happened before any worker touched the job —
    // can be recorded retroactively as a span starting at 0.
    let trace = if shared.config.trace {
        obs::TraceCtx::enabled_since(enqueued)
    } else {
        obs::TraceCtx::disabled()
    };
    trace.record(
        obs::Stage::QueueWait,
        &req.tenant,
        enqueued,
        Duration::from_secs_f64(queue_seconds),
    );
    shared.metrics.observe("queue_wait_seconds", queue_seconds);
    let key = shared
        .result_cache
        .as_ref()
        .map(|_| result_key(req.system, req.query, shared.table_fingerprint));
    if let (Some(cache), Some(key)) = (shared.result_cache.as_ref(), key.as_ref()) {
        let lookup = trace.span_with(obs::Stage::CacheLookup, || "result cache".to_string());
        let hit = cache.get(key);
        drop(lookup);
        if let Some(hit) = hit {
            shared.metrics.counter_inc("result_cache_hits");
            // Cached result: nothing is read, nothing is billed. The
            // all-zero scan is the response's contract, not an accident.
            let stats = ExecStats {
                scan: ScanStats::default(),
                ..ExecStats::default()
            };
            return Ok(QueryResponse {
                histogram: hit.histogram,
                stats,
                from_result_cache: true,
                cost_usd: cost_usd(shared, req.system, &stats, true),
                queue_seconds,
                total_seconds: enqueued.elapsed().as_secs_f64(),
                trace: shared.config.trace.then(|| trace.take_tree()),
            });
        }
        shared.metrics.counter_inc("result_cache_misses");
    }
    // A cache miss on an already-expired job must not start a full scan:
    // recheck the deadline between the lookup and engine dispatch. (The
    // dequeue check ran before the lookup; the lookup itself can be the
    // moment the deadline passes.)
    if let Some(deadline) = job.deadline {
        if Instant::now() > deadline {
            return Err(ServiceError::QueryTimedOut {
                waited_seconds: enqueued.elapsed().as_secs_f64(),
            });
        }
    }
    let env = ExecEnv {
        chunk_cache: shared.chunk_cache.clone(),
        intra_query_threads: (shared.config.intra_query_threads > 0)
            .then_some(shared.config.intra_query_threads),
        parallel_workers: req.parallel_workers,
        zone_map_pruning: Some(shared.config.zone_map_pruning),
        morsel_recovery: Some(shared.config.morsel_recovery),
        fault_injector: shared.config.fault_injector.clone(),
        trace: trace.clone(),
        cancel: job.cancel.clone(),
    };
    let deployments = if req.compiled {
        &shared.engines_compiled
    } else {
        &shared.engines
    };
    let engine = deployments
        .get(&req.system)
        .expect("an engine per system is built at startup");
    let spec = QuerySpec::benchmark(req.query);
    // Bounded retry with exponential backoff on *retryable* scan faults
    // (transient I/O, checksum mismatch, truncated row group). Anything
    // else — or a fault that outlives the retry budget — surfaces as a
    // typed engine error carrying system, query and scan context. A
    // failed attempt leaves its partial span tree in the trace context,
    // so the final drained tree shows every attempt's stages plus a
    // `Retry` span per backoff.
    let mut attempt: u32 = 0;
    let jitter_nonce = shared
        .jitter_seq
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let run = loop {
        match execute_attempt(shared, engine.as_ref(), &spec, &env) {
            Ok(run) => {
                breaker_record(shared, req.system, true);
                break run;
            }
            Err(e) => {
                // A cancelled run is neither a failure (the backend is
                // healthy — the client or its deadline stopped the work)
                // nor retryable, and it is never billed: no response, no
                // cost computation. Record a zero-length span so the
                // trace shows where the run stopped.
                if let Some(c) = e.cancelled.as_deref() {
                    trace.span_with(c.stage, || format!("{c}"));
                    return Err(ServiceError::Cancelled {
                        stage: c.stage,
                        rows_processed: c.rows_processed,
                        reason: c.reason,
                    });
                }
                breaker_record(shared, req.system, false);
                if !e.retryable() || attempt >= shared.config.max_retries {
                    return Err(ServiceError::Engine(e.to_string()));
                }
                attempt += 1;
                shared.stats.note_retried();
                shared.metrics.counter_inc("retries");
                // Deadline-clamped backoff: check the budget before the
                // sleep, never sleep past the deadline, and check again
                // after waking — a retry must not overshoot an expired
                // deadline by a backoff period.
                let backoff = jittered_backoff(
                    shared.config.retry_backoff,
                    attempt,
                    shared.config.retry_jitter,
                    shared.config.retry_jitter_seed,
                    jitter_nonce,
                );
                let sleep = match job.deadline {
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(ServiceError::Cancelled {
                                stage: obs::Stage::Retry,
                                rows_processed: 0,
                                reason: obs::CancelReason::DeadlineExceeded,
                            });
                        }
                        backoff.min(deadline - now)
                    }
                    None => backoff,
                };
                let span =
                    trace.span_with(obs::Stage::Retry, || format!("attempt {attempt} backoff"));
                std::thread::sleep(sleep);
                drop(span);
                if let Err(c) = job.cancel.check(obs::Stage::Retry, 0) {
                    return Err(ServiceError::Cancelled {
                        stage: c.stage,
                        rows_processed: c.rows_processed,
                        reason: c.reason,
                    });
                }
            }
        }
    };
    // Feed the load-shedding EWMA and the hedge-delay percentile with
    // the completed execution's wall time.
    let sample = run.stats.wall_seconds;
    let old = f64::from_bits(shared.exec_ewma_bits.load(Ordering::Relaxed));
    let ewma = if old == 0.0 {
        sample
    } else {
        0.8 * old + 0.2 * sample
    };
    shared
        .exec_ewma_bits
        .store(ewma.to_bits(), Ordering::Relaxed);
    shared
        .exec_samples
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(sample);
    if let (Some(cache), Some(key)) = (shared.result_cache.as_ref(), key) {
        cache.put(
            key,
            CachedResult {
                histogram: run.histogram.clone(),
                source_scan: run.stats.scan,
            },
        );
    }
    shared
        .metrics
        .observe("exec_seconds", run.stats.wall_seconds);
    let mut response_trace = shared.config.trace.then_some(run.trace);
    if let Some(tree) = &mut response_trace {
        // The engine drained the context at the end of the *successful*
        // attempt; merge in anything recorded since (none today, but the
        // drain below keeps the context empty for the next request on
        // this worker either way).
        let leftover = trace.take_tree();
        tree.roots.extend(leftover.roots);
    }
    Ok(QueryResponse {
        cost_usd: cost_usd(shared, req.system, &run.stats, false),
        histogram: run.histogram,
        stats: run.stats,
        from_result_cache: false,
        queue_seconds,
        total_seconds: enqueued.elapsed().as_secs_f64(),
        trace: response_trace,
    })
}

/// One engine attempt — hedged when configured. The primary attempt runs
/// with a child of the request's cancel token; if it has not replied
/// within the hedge delay (a percentile of recent execution times,
/// floored at `min_delay`), a second identical attempt launches with a
/// sibling child token. The first reply wins and the loser is cancelled
/// through its own token, so it stops within one row group instead of
/// running to completion. Child tokens still see the request token, so
/// an explicit cancel or the deadline stops both attempts.
fn execute_attempt(
    shared: &Shared,
    engine: &dyn QueryEngine,
    spec: &QuerySpec,
    env: &ExecEnv,
) -> Result<EngineRun, AdapterError> {
    let Some(hedge) = &shared.config.hedge else {
        return engine.execute(spec, env);
    };
    let delay = hedge_delay(shared, hedge);
    let primary_cancel = env.cancel.child();
    let hedge_cancel = env.cancel.child();
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel();
        {
            let tx = tx.clone();
            let penv = ExecEnv {
                cancel: primary_cancel.clone(),
                ..env.clone()
            };
            s.spawn(move || {
                let _ = tx.send((0u8, engine.execute(spec, &penv)));
            });
        }
        let (winner, result) = match rx.recv_timeout(delay) {
            Ok(reply) => reply,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                shared.metrics.counter_inc("hedges_launched");
                let henv = ExecEnv {
                    cancel: hedge_cancel.clone(),
                    ..env.clone()
                };
                s.spawn(move || {
                    let _ = tx.send((1u8, engine.execute(spec, &henv)));
                });
                rx.recv().expect("a spawned attempt always replies")
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                unreachable!("primary sender is alive until it replies")
            }
        };
        // First reply wins; cancel the other attempt (no-op if it never
        // launched or already finished). The scope joins the loser, which
        // stops within one row group of its token tripping.
        if winner == 0 {
            hedge_cancel.cancel();
        } else {
            shared.metrics.counter_inc("hedge_wins");
            primary_cancel.cancel();
        }
        result
    })
}

/// The hedge launch delay: the configured percentile of completed
/// execution times (nearest-rank), floored at `min_delay`; `min_delay`
/// alone before any executions completed.
fn hedge_delay(shared: &Shared, hedge: &HedgeConfig) -> Duration {
    let mut samples = shared
        .exec_samples
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    if samples.is_empty() {
        return hedge.min_delay;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("wall seconds are finite"));
    let rank = (hedge.percentile * samples.len() as f64).ceil() as usize;
    let p = samples[rank.clamp(1, samples.len()) - 1];
    Duration::from_secs_f64(p.max(0.0)).max(hedge.min_delay)
}

/// Deterministic, shrink-only jittered exponential backoff.
///
/// Attempt `k ≥ 1` starts from the exponential bound
/// `base × 2^(k−1)` (exponent capped at 8) and is shrunk by
/// `jitter × u`, where `u ∈ [0, 1)` is a splitmix64 hash of
/// `(seed, nonce, k)`. The function is pure in its inputs, so a fixed
/// seed pins the whole schedule — the decorrelation of concurrent
/// retry storms is reproducible run to run — and because jitter only
/// ever *shrinks* the sleep, the deadline-clamping math at the call
/// site stays conservative. `jitter` is clamped to `[0, 1]`; `0`
/// reproduces the pure exponential schedule exactly.
pub fn jittered_backoff(
    base: Duration,
    attempt: u32,
    jitter: f64,
    seed: u64,
    nonce: u64,
) -> Duration {
    let exp = base * (1u32 << attempt.saturating_sub(1).min(8));
    let jitter = jitter.clamp(0.0, 1.0);
    if jitter == 0.0 {
        return exp;
    }
    // splitmix64 over a mix of (seed, nonce, attempt); same finalizer
    // constants as the chaos schedule generator and exec-par's victim
    // shuffler.
    let mut z =
        seed ^ nonce.rotate_left(32) ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
    exp.mul_f64(1.0 - jitter * u)
}

/// Feeds one execution outcome into the system's breaker, when breakers
/// are configured. Cancellations must not be recorded — call sites skip
/// them.
fn breaker_record(shared: &Shared, system: System, success: bool) {
    if let Some(b) = shared.breakers.as_ref().and_then(|m| m.get(&system)) {
        b.record(success);
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Cost of one served query. QaaS systems bill scanned bytes (zero on a
/// result-cache hit); self-managed systems bill measured wall seconds on
/// the service's pricing instance (a hit has zero wall, hence zero cost).
fn cost_usd(shared: &Shared, system: System, stats: &ExecStats, from_result_cache: bool) -> f64 {
    match system {
        System::BigQuery | System::BigQueryExternal => {
            cloud_sim::bigquery_cost_usd_cached(&stats.scan, from_result_cache)
        }
        System::AthenaV2 | System::AthenaV1 => {
            cloud_sim::athena_cost_usd_cached(&stats.scan, from_result_cache)
        }
        System::Presto | System::Rumble | System::RDataFrame | System::RDataFrameDev => {
            cloud_sim::self_managed_cost_usd(stats.wall_seconds, shared.pricing_instance)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_model::generator::build_dataset;
    use hep_model::DatasetSpec;
    use hepbench_core::QueryId;

    fn table() -> Arc<Table> {
        Arc::new(
            build_dataset(DatasetSpec {
                n_events: 1_000,
                row_group_size: 256,
                seed: 11,
            })
            .1,
        )
    }

    /// A queue-only job; `n` is recoverable from the deadline so the pop
    /// order is observable.
    fn dummy_job(tenant: &str, n: u64) -> Job {
        let (tx, _rx) = mpsc::channel();
        let enqueued = Instant::now();
        Job {
            req: QueryRequest::new(tenant, System::BigQuery, QueryId::Q1),
            enqueued,
            deadline: Some(enqueued + Duration::from_secs(n)),
            cancel: obs::CancelToken::none(),
            reply: tx,
        }
    }

    #[test]
    fn dequeue_is_round_robin_across_tenants() {
        let mut state = QueueState::default();
        for (tenant, n) in [("a", 1), ("a", 2), ("a", 3), ("b", 4), ("a", 5)] {
            state.push(tenant.to_string(), dummy_job(tenant, n));
        }
        let order: Vec<(String, u64)> = std::iter::from_fn(|| state.pop_next())
            .map(|j| {
                let n = (j.deadline.unwrap() - j.enqueued).as_secs();
                (j.req.tenant.clone(), n)
            })
            .collect();
        // Tenant "a" flooded the queue; "b" is served after one "a" job,
        // not after four.
        assert_eq!(
            order,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 4),
                ("a".to_string(), 2),
                ("a".to_string(), 3),
                ("a".to_string(), 5),
            ]
        );
        assert_eq!(state.queued, 0);
    }

    #[test]
    fn serves_and_caches_results() {
        let service = QueryService::start(
            table(),
            ServiceConfig {
                n_workers: 2,
                ..ServiceConfig::default()
            },
        );
        let first = service
            .execute(QueryRequest::new("t0", System::BigQuery, QueryId::Q1))
            .unwrap();
        assert!(!first.from_result_cache);
        assert!(first.stats.scan.bytes_scanned > 0);
        assert!(first.cost_usd > 0.0);
        let second = service
            .execute(QueryRequest::new("t1", System::BigQuery, QueryId::Q1))
            .unwrap();
        assert!(second.from_result_cache, "repeat must hit the result cache");
        assert_eq!(second.stats.scan, ScanStats::default());
        assert_eq!(second.cost_usd, 0.0);
        assert_eq!(second.histogram, first.histogram);
        let (hits, misses) = service.result_cache_counters().unwrap();
        assert_eq!((hits, misses), (1, 1));
        let snap = service.stats();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.failed, 0);
    }

    #[test]
    fn zero_depth_queue_rejects_everything() {
        let service = QueryService::start(
            table(),
            ServiceConfig {
                n_workers: 1,
                queue_depth: 0,
                ..ServiceConfig::default()
            },
        );
        let err = service
            .execute(QueryRequest::new("t0", System::Presto, QueryId::Q1))
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::QueryRejected { queue_depth: 0 }
        ));
        assert_eq!(service.stats().rejected, 1);
    }

    #[test]
    fn expired_deadline_times_out_in_queue() {
        let service = QueryService::start(
            table(),
            ServiceConfig {
                n_workers: 1,
                result_cache: false,
                ..ServiceConfig::default()
            },
        );
        // Occupy the single worker, then enqueue a request whose deadline
        // has already passed by the time the worker reaches it.
        let busy = service
            .submit(QueryRequest::new("t0", System::Rumble, QueryId::Q6a))
            .unwrap();
        let doomed = service
            .submit(QueryRequest {
                deadline: Some(Duration::ZERO),
                ..QueryRequest::new("t0", System::BigQuery, QueryId::Q1)
            })
            .unwrap();
        busy.wait().unwrap();
        let err = doomed.wait().unwrap_err();
        assert!(matches!(err, ServiceError::QueryTimedOut { .. }));
        assert_eq!(service.stats().timed_out, 1);
    }

    /// A latency-storm injector: every physical chunk read sleeps, so a
    /// query is reliably still running when the test cancels it.
    fn latency_storm(ms: u64) -> Option<Arc<FaultInjector>> {
        Some(Arc::new(FaultInjector::new(nf2_columnar::FaultConfig {
            latency: Duration::from_millis(ms),
            ..nf2_columnar::FaultConfig::only(nf2_columnar::FaultClass::Latency, 1.0, 7)
        })))
    }

    #[test]
    fn explicit_cancel_stops_running_query_and_is_never_billed() {
        let service = QueryService::start(
            table(),
            ServiceConfig {
                n_workers: 1,
                result_cache: false,
                chunk_cache_bytes: 0,
                fault_injector: latency_storm(10),
                ..ServiceConfig::default()
            },
        );
        let ticket = service
            .submit(QueryRequest::new("t0", System::BigQuery, QueryId::Q1))
            .unwrap();
        // Let the worker get well into the (artificially slow) scan,
        // then hang up.
        std::thread::sleep(Duration::from_millis(5));
        ticket.cancel();
        let err = match service.submit(QueryRequest::new("t0", System::BigQuery, QueryId::Q1)) {
            Ok(t2) => {
                // Unrelated request still serves fine afterwards.
                let _ = t2;
                ticket.wait().unwrap_err()
            }
            Err(e) => panic!("follow-up submit rejected: {e}"),
        };
        let ServiceError::Cancelled {
            rows_processed,
            reason,
            ..
        } = err
        else {
            panic!("expected Cancelled, got {err}");
        };
        assert_eq!(reason, obs::CancelReason::Explicit);
        assert!(rows_processed < 1_000, "the full scan must not complete");
        let snap = service.stats();
        assert_eq!(snap.cancelled, 1);
        assert_eq!(snap.failed, 0, "a cancel is not an engine failure");
        let metrics = service.metrics_snapshot();
        assert_eq!(metrics.counter("queries_cancelled"), 1);
        // Never billed: the cancelled attempt contributed no completed
        // execution — no exec-time observation, no completion count.
        assert!(metrics.histogram("exec_seconds").is_none());
        assert_eq!(metrics.counter("queries_completed"), 0);
    }

    #[test]
    fn mid_run_deadline_cancels_within_one_row_group() {
        let service = QueryService::start(
            table(),
            ServiceConfig {
                n_workers: 1,
                result_cache: false,
                chunk_cache_bytes: 0,
                fault_injector: latency_storm(20),
                ..ServiceConfig::default()
            },
        );
        // Four 256-row groups at ≥20 ms of injected latency each: a
        // 30 ms deadline expires mid-scan, well before the last group.
        let err = service
            .execute(QueryRequest {
                deadline: Some(Duration::from_millis(30)),
                ..QueryRequest::new("t0", System::BigQuery, QueryId::Q1)
            })
            .unwrap_err();
        let ServiceError::Cancelled {
            rows_processed,
            reason,
            ..
        } = err
        else {
            panic!("expected Cancelled, got {err}");
        };
        assert_eq!(reason, obs::CancelReason::DeadlineExceeded);
        assert!(
            rows_processed < 1_000,
            "deadline must stop the scan before the last group ({rows_processed} rows)"
        );
        assert_eq!(service.stats().cancelled, 1);
    }

    #[test]
    fn shedding_rejects_when_backlog_outlasts_deadline() {
        let service = QueryService::start(
            table(),
            ServiceConfig {
                n_workers: 1,
                result_cache: false,
                load_shedding: true,
                ..ServiceConfig::default()
            },
        );
        // Prime the execution-time EWMA with one completed query.
        service
            .execute(QueryRequest::new("t0", System::BigQuery, QueryId::Q1))
            .unwrap();
        // Pile up work on the single worker so the backlog estimate is
        // non-zero when the doomed request arrives.
        let backlog: Vec<Ticket> = (0..6)
            .map(|_| {
                service
                    .submit(QueryRequest::new("t0", System::Rumble, QueryId::Q5))
                    .unwrap()
            })
            .collect();
        let err = service
            .submit(QueryRequest {
                deadline: Some(Duration::from_nanos(1)),
                ..QueryRequest::new("t1", System::BigQuery, QueryId::Q1)
            })
            .unwrap_err();
        assert!(
            matches!(err, ServiceError::QueryShedded { .. }),
            "expected QueryShedded, got {err}"
        );
        assert_eq!(service.stats().shedded, 1);
        assert_eq!(service.metrics_snapshot().counter("queries_shedded"), 1);
        for t in backlog {
            t.wait().unwrap();
        }
    }

    #[test]
    fn breaker_opens_after_failure_storm_and_rejects_at_admission() {
        let service = QueryService::start(
            table(),
            ServiceConfig {
                n_workers: 1,
                result_cache: false,
                chunk_cache_bytes: 0,
                max_retries: 0,
                fault_injector: Some(Arc::new(FaultInjector::new(nf2_columnar::FaultConfig {
                    transient_attempts: 0,
                    ..nf2_columnar::FaultConfig::only(nf2_columnar::FaultClass::Io, 1.0, 3)
                }))),
                breaker: Some(BreakerConfig {
                    window: 8,
                    failure_threshold: 0.5,
                    min_samples: 4,
                    cooldown: Duration::from_secs(60),
                    half_open_probes: 1,
                }),
                ..ServiceConfig::default()
            },
        );
        for _ in 0..4 {
            let err = service
                .execute(QueryRequest::new("t0", System::BigQuery, QueryId::Q1))
                .unwrap_err();
            assert!(matches!(err, ServiceError::Engine(_)), "got {err}");
        }
        assert_eq!(
            service.breaker_state(System::BigQuery),
            Some(BreakerState::Open)
        );
        let err = service
            .submit(QueryRequest::new("t0", System::BigQuery, QueryId::Q1))
            .unwrap_err();
        assert!(
            matches!(
                err,
                ServiceError::CircuitOpen {
                    system: System::BigQuery
                }
            ),
            "expected CircuitOpen, got {err}"
        );
        // Other systems' breakers are independent: Rumble is still
        // admitted (its execution hits the same injected faults, but
        // that is an engine error, not an admission rejection — and one
        // sample is below min_samples, so its breaker stays closed).
        let err = service
            .execute(QueryRequest::new("t0", System::Rumble, QueryId::Q1))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Engine(_)), "got {err}");
        assert_eq!(
            service.breaker_state(System::Rumble),
            Some(BreakerState::Closed)
        );
        let metrics = service.metrics_snapshot();
        assert_eq!(metrics.gauge("breaker_state_BigQuery"), Some(2.0));
        assert!(metrics.counter("breaker_rejected") >= 1);
    }

    #[test]
    fn hedged_execution_matches_unhedged_result() {
        let hedged = QueryService::start(
            table(),
            ServiceConfig {
                n_workers: 1,
                result_cache: false,
                hedge: Some(HedgeConfig {
                    percentile: 0.95,
                    min_delay: Duration::ZERO,
                }),
                ..ServiceConfig::default()
            },
        );
        let plain = QueryService::start(
            table(),
            ServiceConfig {
                n_workers: 1,
                result_cache: false,
                ..ServiceConfig::default()
            },
        );
        let a = hedged
            .execute(QueryRequest::new("t0", System::Presto, QueryId::Q2))
            .unwrap();
        let b = plain
            .execute(QueryRequest::new("t0", System::Presto, QueryId::Q2))
            .unwrap();
        assert_eq!(a.histogram, b.histogram, "hedging must not change results");
        assert!(
            hedged.metrics_snapshot().counter("hedges_launched") >= 1,
            "a zero hedge delay always launches the hedge"
        );
    }

    #[test]
    fn shutdown_answers_queued_requests() {
        let service = QueryService::start(
            table(),
            ServiceConfig {
                n_workers: 1,
                result_cache: false,
                ..ServiceConfig::default()
            },
        );
        // One served request proves the pool runs; the pile-up submitted
        // right before the drop may be served or drained, but every
        // ticket must get an answer — no request hangs forever.
        service
            .execute(QueryRequest::new("t0", System::BigQuery, QueryId::Q1))
            .unwrap();
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| {
                service
                    .submit(QueryRequest::new(
                        format!("t{}", i % 3),
                        System::Rumble,
                        QueryId::Q6b,
                    ))
                    .unwrap()
            })
            .collect();
        drop(service);
        let mut answered = 0;
        for t in tickets {
            match t.wait() {
                Ok(_) | Err(ServiceError::Shutdown) => answered += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(answered, 6);
    }
}
