//! Concurrent multi-tenant query serving over the benchmark engines.
//!
//! The paper measures one query at a time, but the systems it measures —
//! BigQuery, Athena, a Presto cluster — are *servers*: many tenants, a
//! bounded admission queue, and (for BigQuery) a results cache that the
//! authors explicitly disabled for fairness. This crate supplies that
//! serving layer for the simulated systems so concurrent behavior
//! (queueing, admission control, cache economics) can be studied on the
//! same engines the single-query benchmarks exercise.
//!
//! A [`QueryService`] owns an immutable [`Table`] behind an `Arc` and a
//! pool of worker threads. Requests name a tenant, a
//! [`System`] and a
//! [`QueryId`](hepbench_core::QueryId); they pass admission control (a
//! bounded queue — full ⇒ [`ServiceError::QueryRejected`]), wait in
//! per-tenant FIFO queues drained round-robin across tenants (one noisy
//! tenant cannot starve the rest), and execute through
//! [`hepbench_core::runner::execute_engine`] — exactly the primitive the
//! single-query benchmark uses, so a served result is the benchmark
//! result.
//!
//! Two caches, both optional:
//!
//! * a **buffer pool** ([`nf2_columnar::ChunkCache`]) shared by all
//!   workers, fronting physical chunk reads. Accounting-only: billed
//!   bytes and results never change, hits show up as
//!   `ScanStats::bytes_from_cache`.
//! * a **result cache** ([`result_cache::ResultCache`]) keyed on
//!   (dialect, normalized query text, table fingerprint) — BigQuery's
//!   "cached results". A hit returns the stored histogram with **zero
//!   bytes scanned** and zero QaaS cost.
//!
//! [`ServiceConfig::paper_fairness`] turns both off, reproducing the
//! paper's measured configuration byte-for-byte (verified by
//! `tests/service_cache.rs`).

pub mod request;
pub mod result_cache;
pub mod stats;

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cloud_sim::InstanceType;
use hepbench_core::adapters::ExecEnv;
use hepbench_core::engine_api::{engine_for, QueryEngine, QuerySpec};
use hepbench_core::runner::{System, ALL_SYSTEMS};
use nf2_columnar::{CacheCounters, ChunkCache, ExecStats, FaultInjector, ScanStats, Table};

pub use request::{QueryRequest, QueryResponse, ServiceError};
pub use result_cache::{normalize_query_text, result_key, CachedResult, ResultCache, ResultKey};
pub use stats::{ServiceStats, StatsSnapshot};

/// Serving configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads executing queries; `0` ⇒ one per available core.
    pub n_workers: usize,
    /// Admission-control bound: total requests allowed in the queue
    /// (across all tenants). Submissions beyond it are rejected.
    pub queue_depth: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Serve repeated identical queries from the result cache (the knob
    /// the paper turned *off* for its fair comparison).
    pub result_cache: bool,
    /// Buffer-pool budget in bytes; `0` disables the chunk cache.
    pub chunk_cache_bytes: usize,
    /// Threads *within* one query; `0` ⇒ engine default (all cores). A
    /// serving deployment typically pins this to 1 and gets its
    /// parallelism across concurrent queries instead.
    pub intra_query_threads: usize,
    /// Instance whose hourly price converts measured wall seconds into
    /// self-managed serving cost.
    pub pricing_instance: &'static str,
    /// Chaos-layer fault injector applied to every worker's physical
    /// chunk reads (`None`, the default, serves the fault-free path —
    /// [`ServiceConfig::paper_fairness`] keeps it off).
    pub fault_injector: Option<Arc<FaultInjector>>,
    /// How many times a worker re-runs a query that failed with a
    /// *retryable* scan fault (transient I/O, checksum mismatch,
    /// truncated row group) before surfacing the error.
    pub max_retries: u32,
    /// Base backoff between retries; attempt `k` sleeps
    /// `retry_backoff × 2^(k−1)`.
    pub retry_backoff: Duration,
    /// Record a span tree per served query (queue wait, cache lookup,
    /// retries, engine stages) and return it in
    /// [`QueryResponse::trace`]. Off by default — and off under
    /// [`ServiceConfig::paper_fairness`] — so the serving path stays a
    /// near-no-op when untraced.
    pub trace: bool,
}

impl Default for ServiceConfig {
    /// A serving deployment: both caches on, one thread per query.
    fn default() -> ServiceConfig {
        ServiceConfig {
            n_workers: 0,
            queue_depth: 64,
            default_deadline: None,
            result_cache: true,
            chunk_cache_bytes: 64 << 20,
            intra_query_threads: 1,
            pricing_instance: "m5d.4xlarge",
            fault_injector: None,
            max_retries: 3,
            retry_backoff: Duration::from_millis(1),
            trace: false,
        }
    }
}

impl ServiceConfig {
    /// The paper's measured configuration: **both caches off** (§4.1
    /// disabled BigQuery's cached results for fairness), engine-default
    /// intra-query parallelism. With this config a served query is
    /// byte-for-byte identical — histogram and `ScanStats` — to the
    /// single-query benchmark path.
    pub fn paper_fairness() -> ServiceConfig {
        ServiceConfig {
            result_cache: false,
            chunk_cache_bytes: 0,
            intra_query_threads: 0,
            ..ServiceConfig::default()
        }
    }
}

/// One queued request plus its reply channel.
struct Job {
    req: QueryRequest,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<QueryResponse, ServiceError>>,
}

/// Per-tenant FIFO queues with a round-robin rotation of non-empty
/// tenants. `queued` is the admission-control total across tenants.
#[derive(Default)]
struct QueueState {
    queues: HashMap<String, VecDeque<Job>>,
    rr: VecDeque<String>,
    queued: usize,
    shutdown: bool,
}

impl QueueState {
    fn push(&mut self, tenant: String, job: Job) {
        let queue = self.queues.entry(tenant.clone()).or_default();
        if queue.is_empty() {
            self.rr.push_back(tenant);
        }
        queue.push_back(job);
        self.queued += 1;
    }

    /// Fair dequeue: next job of the tenant at the front of the rotation;
    /// the tenant goes to the back of the rotation if it has more work.
    fn pop_next(&mut self) -> Option<Job> {
        while let Some(tenant) = self.rr.pop_front() {
            let Some(queue) = self.queues.get_mut(&tenant) else {
                continue;
            };
            let Some(job) = queue.pop_front() else {
                self.queues.remove(&tenant);
                continue;
            };
            self.queued -= 1;
            if queue.is_empty() {
                self.queues.remove(&tenant);
            } else {
                self.rr.push_back(tenant);
            }
            return Some(job);
        }
        None
    }

    fn drain_all(&mut self) -> Vec<Job> {
        let mut jobs = Vec::with_capacity(self.queued);
        for (_, queue) in self.queues.drain() {
            jobs.extend(queue);
        }
        self.rr.clear();
        self.queued = 0;
        jobs
    }
}

/// State shared between the handle and the workers.
struct Shared {
    table_fingerprint: u64,
    config: ServiceConfig,
    pricing_instance: &'static InstanceType,
    queue: Mutex<QueueState>,
    available: Condvar,
    result_cache: Option<ResultCache>,
    chunk_cache: Option<Arc<ChunkCache>>,
    stats: ServiceStats,
    /// One engine per servable system, built once at startup and shared
    /// by every worker — the service's only execution path.
    engines: HashMap<System, Box<dyn QueryEngine>>,
    /// Service-wide counters and latency histograms; see
    /// [`QueryService::metrics_snapshot`].
    metrics: obs::MetricsRegistry,
}

impl Shared {
    /// Locks the queue, recovering from poisoning (a worker can only
    /// panic outside the lock, but stay robust anyway).
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A pending response; [`Ticket::wait`] blocks until the worker replies.
pub struct Ticket {
    rx: mpsc::Receiver<Result<QueryResponse, ServiceError>>,
}

impl Ticket {
    /// Blocks until the request is answered. A disconnected channel means
    /// the service dropped the job during shutdown.
    pub fn wait(self) -> Result<QueryResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Shutdown))
    }
}

/// An embedded multi-tenant query server over one immutable table.
///
/// Dropping the service shuts it down: queued requests are answered with
/// [`ServiceError::Shutdown`], in-flight queries finish, workers join.
pub struct QueryService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Starts the worker pool and returns the serving handle.
    pub fn start(table: Arc<Table>, config: ServiceConfig) -> QueryService {
        let pricing_instance = cloud_sim::instances::by_name(config.pricing_instance)
            .unwrap_or_else(|| panic!("unknown pricing instance {:?}", config.pricing_instance));
        let n_workers = if config.n_workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            config.n_workers
        };
        let engines = ALL_SYSTEMS
            .iter()
            .map(|s| (*s, engine_for(*s, table.clone())))
            .collect();
        let shared = Arc::new(Shared {
            table_fingerprint: table.fingerprint(),
            pricing_instance,
            queue: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            result_cache: config.result_cache.then(ResultCache::new),
            chunk_cache: (config.chunk_cache_bytes > 0)
                .then(|| Arc::new(ChunkCache::new(config.chunk_cache_bytes))),
            stats: ServiceStats::new(),
            engines,
            metrics: obs::MetricsRegistry::new(),
            config,
        });
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("query-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn query worker")
            })
            .collect();
        QueryService { shared, workers }
    }

    /// Submits a request through admission control; returns a [`Ticket`]
    /// to wait on, or rejects immediately when the queue is full.
    pub fn submit(&self, req: QueryRequest) -> Result<Ticket, ServiceError> {
        self.shared.stats.note_submitted();
        self.shared.metrics.counter_inc("queries_submitted");
        let (tx, rx) = mpsc::channel();
        {
            let mut state = self.shared.lock_queue();
            if state.shutdown {
                return Err(ServiceError::Shutdown);
            }
            if state.queued >= self.shared.config.queue_depth {
                self.shared.stats.note_rejected();
                return Err(ServiceError::QueryRejected {
                    queue_depth: self.shared.config.queue_depth,
                });
            }
            let now = Instant::now();
            let deadline = req
                .deadline
                .or(self.shared.config.default_deadline)
                .map(|d| now + d);
            let tenant = req.tenant.clone();
            state.push(
                tenant,
                Job {
                    req,
                    enqueued: now,
                    deadline,
                    reply: tx,
                },
            );
        }
        self.shared.available.notify_one();
        Ok(Ticket { rx })
    }

    /// Submits and blocks for the response.
    pub fn execute(&self, req: QueryRequest) -> Result<QueryResponse, ServiceError> {
        self.submit(req)?.wait()
    }

    /// Aggregated service counters and latency percentiles.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Point-in-time view of the service's [`obs::MetricsRegistry`]:
    /// submission/completion counters, cache hit/miss counters, retry
    /// counts, and queue-wait / execution-latency histograms. Render
    /// with [`obs::MetricsSnapshot::to_text`] or
    /// [`obs::MetricsSnapshot::to_json`].
    pub fn metrics_snapshot(&self) -> obs::MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Result-cache `(hits, misses)`, when the result cache is enabled.
    pub fn result_cache_counters(&self) -> Option<(u64, u64)> {
        self.shared.result_cache.as_ref().map(|c| c.counters())
    }

    /// Buffer-pool counters, when the chunk cache is enabled.
    pub fn chunk_cache_counters(&self) -> Option<CacheCounters> {
        self.shared.chunk_cache.as_ref().map(|c| c.counters())
    }

    /// Fingerprint of the served table (the result cache's version tag).
    pub fn table_fingerprint(&self) -> u64 {
        self.shared.table_fingerprint
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        let drained = {
            let mut state = self.shared.lock_queue();
            state.shutdown = true;
            state.drain_all()
        };
        self.shared.available.notify_all();
        for job in drained {
            let _ = job.reply.send(Err(ServiceError::Shutdown));
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.lock_queue();
            loop {
                if let Some(job) = state.pop_next() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .available
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let now = Instant::now();
        if let Some(deadline) = job.deadline {
            if now > deadline {
                shared.stats.note_timed_out();
                let _ = job.reply.send(Err(ServiceError::QueryTimedOut {
                    waited_seconds: (now - job.enqueued).as_secs_f64(),
                }));
                continue;
            }
        }
        let queue_seconds = (now - job.enqueued).as_secs_f64();
        // Panic isolation: a query that panics (e.g. an injected panic
        // fault, or an engine bug) must not take the worker thread — and
        // with it a slice of the pool's capacity — down with it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve(shared, &job.req, queue_seconds, job.enqueued)
        }))
        .unwrap_or_else(|payload| {
            Err(ServiceError::Engine(format!(
                "query worker panicked serving {} on {}: {}",
                job.req.query.name(),
                job.req.system.name(),
                panic_message(&payload)
            )))
        });
        match &result {
            Ok(resp) => {
                shared
                    .stats
                    .note_completed(resp.total_seconds, resp.queue_seconds);
                shared.metrics.counter_inc("queries_completed");
            }
            Err(_) => {
                shared.stats.note_failed();
                shared.metrics.counter_inc("queries_failed");
            }
        }
        let _ = job.reply.send(result);
    }
}

/// Serves one admitted request: result-cache lookup, engine execution on
/// miss, cache fill, pricing.
fn serve(
    shared: &Shared,
    req: &QueryRequest,
    queue_seconds: f64,
    enqueued: Instant,
) -> Result<QueryResponse, ServiceError> {
    // The per-request trace epoch is the *submission* instant, so the
    // queue wait — which happened before any worker touched the job —
    // can be recorded retroactively as a span starting at 0.
    let trace = if shared.config.trace {
        obs::TraceCtx::enabled_since(enqueued)
    } else {
        obs::TraceCtx::disabled()
    };
    trace.record(
        obs::Stage::QueueWait,
        &req.tenant,
        enqueued,
        Duration::from_secs_f64(queue_seconds),
    );
    shared.metrics.observe("queue_wait_seconds", queue_seconds);
    let key = shared
        .result_cache
        .as_ref()
        .map(|_| result_key(req.system, req.query, shared.table_fingerprint));
    if let (Some(cache), Some(key)) = (shared.result_cache.as_ref(), key.as_ref()) {
        let lookup = trace.span_with(obs::Stage::CacheLookup, || "result cache".to_string());
        let hit = cache.get(key);
        drop(lookup);
        if let Some(hit) = hit {
            shared.metrics.counter_inc("result_cache_hits");
            // Cached result: nothing is read, nothing is billed. The
            // all-zero scan is the response's contract, not an accident.
            let stats = ExecStats {
                scan: ScanStats::default(),
                ..ExecStats::default()
            };
            return Ok(QueryResponse {
                histogram: hit.histogram,
                stats,
                from_result_cache: true,
                cost_usd: cost_usd(shared, req.system, &stats, true),
                queue_seconds,
                total_seconds: enqueued.elapsed().as_secs_f64(),
                trace: shared.config.trace.then(|| trace.take_tree()),
            });
        }
        shared.metrics.counter_inc("result_cache_misses");
    }
    let env = ExecEnv {
        chunk_cache: shared.chunk_cache.clone(),
        intra_query_threads: (shared.config.intra_query_threads > 0)
            .then_some(shared.config.intra_query_threads),
        fault_injector: shared.config.fault_injector.clone(),
        trace: trace.clone(),
    };
    let engine = shared
        .engines
        .get(&req.system)
        .expect("an engine per system is built at startup");
    let spec = QuerySpec::benchmark(req.query);
    // Bounded retry with exponential backoff on *retryable* scan faults
    // (transient I/O, checksum mismatch, truncated row group). Anything
    // else — or a fault that outlives the retry budget — surfaces as a
    // typed engine error carrying system, query and scan context. A
    // failed attempt leaves its partial span tree in the trace context,
    // so the final drained tree shows every attempt's stages plus a
    // `Retry` span per backoff.
    let mut attempt: u32 = 0;
    let run = loop {
        match engine.execute(&spec, &env) {
            Ok(run) => break run,
            Err(e) if e.retryable() && attempt < shared.config.max_retries => {
                attempt += 1;
                shared.stats.note_retried();
                shared.metrics.counter_inc("retries");
                let backoff =
                    trace.span_with(obs::Stage::Retry, || format!("attempt {attempt} backoff"));
                std::thread::sleep(shared.config.retry_backoff * (1u32 << (attempt - 1).min(8)));
                drop(backoff);
            }
            Err(e) => return Err(ServiceError::Engine(e.to_string())),
        }
    };
    if let (Some(cache), Some(key)) = (shared.result_cache.as_ref(), key) {
        cache.put(
            key,
            CachedResult {
                histogram: run.histogram.clone(),
                source_scan: run.stats.scan,
            },
        );
    }
    shared
        .metrics
        .observe("exec_seconds", run.stats.wall_seconds);
    let mut response_trace = shared.config.trace.then_some(run.trace);
    if let Some(tree) = &mut response_trace {
        // The engine drained the context at the end of the *successful*
        // attempt; merge in anything recorded since (none today, but the
        // drain below keeps the context empty for the next request on
        // this worker either way).
        let leftover = trace.take_tree();
        tree.roots.extend(leftover.roots);
    }
    Ok(QueryResponse {
        cost_usd: cost_usd(shared, req.system, &run.stats, false),
        histogram: run.histogram,
        stats: run.stats,
        from_result_cache: false,
        queue_seconds,
        total_seconds: enqueued.elapsed().as_secs_f64(),
        trace: response_trace,
    })
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Cost of one served query. QaaS systems bill scanned bytes (zero on a
/// result-cache hit); self-managed systems bill measured wall seconds on
/// the service's pricing instance (a hit has zero wall, hence zero cost).
fn cost_usd(shared: &Shared, system: System, stats: &ExecStats, from_result_cache: bool) -> f64 {
    match system {
        System::BigQuery | System::BigQueryExternal => {
            cloud_sim::bigquery_cost_usd_cached(&stats.scan, from_result_cache)
        }
        System::AthenaV2 | System::AthenaV1 => {
            cloud_sim::athena_cost_usd_cached(&stats.scan, from_result_cache)
        }
        System::Presto | System::Rumble | System::RDataFrame | System::RDataFrameDev => {
            cloud_sim::self_managed_cost_usd(stats.wall_seconds, shared.pricing_instance)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_model::generator::build_dataset;
    use hep_model::DatasetSpec;
    use hepbench_core::QueryId;

    fn table() -> Arc<Table> {
        Arc::new(
            build_dataset(DatasetSpec {
                n_events: 1_000,
                row_group_size: 256,
                seed: 11,
            })
            .1,
        )
    }

    /// A queue-only job; `n` is recoverable from the deadline so the pop
    /// order is observable.
    fn dummy_job(tenant: &str, n: u64) -> Job {
        let (tx, _rx) = mpsc::channel();
        let enqueued = Instant::now();
        Job {
            req: QueryRequest::new(tenant, System::BigQuery, QueryId::Q1),
            enqueued,
            deadline: Some(enqueued + Duration::from_secs(n)),
            reply: tx,
        }
    }

    #[test]
    fn dequeue_is_round_robin_across_tenants() {
        let mut state = QueueState::default();
        for (tenant, n) in [("a", 1), ("a", 2), ("a", 3), ("b", 4), ("a", 5)] {
            state.push(tenant.to_string(), dummy_job(tenant, n));
        }
        let order: Vec<(String, u64)> = std::iter::from_fn(|| state.pop_next())
            .map(|j| {
                let n = (j.deadline.unwrap() - j.enqueued).as_secs();
                (j.req.tenant.clone(), n)
            })
            .collect();
        // Tenant "a" flooded the queue; "b" is served after one "a" job,
        // not after four.
        assert_eq!(
            order,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 4),
                ("a".to_string(), 2),
                ("a".to_string(), 3),
                ("a".to_string(), 5),
            ]
        );
        assert_eq!(state.queued, 0);
    }

    #[test]
    fn serves_and_caches_results() {
        let service = QueryService::start(
            table(),
            ServiceConfig {
                n_workers: 2,
                ..ServiceConfig::default()
            },
        );
        let first = service
            .execute(QueryRequest::new("t0", System::BigQuery, QueryId::Q1))
            .unwrap();
        assert!(!first.from_result_cache);
        assert!(first.stats.scan.bytes_scanned > 0);
        assert!(first.cost_usd > 0.0);
        let second = service
            .execute(QueryRequest::new("t1", System::BigQuery, QueryId::Q1))
            .unwrap();
        assert!(second.from_result_cache, "repeat must hit the result cache");
        assert_eq!(second.stats.scan, ScanStats::default());
        assert_eq!(second.cost_usd, 0.0);
        assert_eq!(second.histogram, first.histogram);
        let (hits, misses) = service.result_cache_counters().unwrap();
        assert_eq!((hits, misses), (1, 1));
        let snap = service.stats();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.failed, 0);
    }

    #[test]
    fn zero_depth_queue_rejects_everything() {
        let service = QueryService::start(
            table(),
            ServiceConfig {
                n_workers: 1,
                queue_depth: 0,
                ..ServiceConfig::default()
            },
        );
        let err = service
            .execute(QueryRequest::new("t0", System::Presto, QueryId::Q1))
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::QueryRejected { queue_depth: 0 }
        ));
        assert_eq!(service.stats().rejected, 1);
    }

    #[test]
    fn expired_deadline_times_out_in_queue() {
        let service = QueryService::start(
            table(),
            ServiceConfig {
                n_workers: 1,
                result_cache: false,
                ..ServiceConfig::default()
            },
        );
        // Occupy the single worker, then enqueue a request whose deadline
        // has already passed by the time the worker reaches it.
        let busy = service
            .submit(QueryRequest::new("t0", System::Rumble, QueryId::Q6a))
            .unwrap();
        let doomed = service
            .submit(QueryRequest {
                deadline: Some(Duration::ZERO),
                ..QueryRequest::new("t0", System::BigQuery, QueryId::Q1)
            })
            .unwrap();
        busy.wait().unwrap();
        let err = doomed.wait().unwrap_err();
        assert!(matches!(err, ServiceError::QueryTimedOut { .. }));
        assert_eq!(service.stats().timed_out, 1);
    }

    #[test]
    fn shutdown_answers_queued_requests() {
        let service = QueryService::start(
            table(),
            ServiceConfig {
                n_workers: 1,
                result_cache: false,
                ..ServiceConfig::default()
            },
        );
        // One served request proves the pool runs; the pile-up submitted
        // right before the drop may be served or drained, but every
        // ticket must get an answer — no request hangs forever.
        service
            .execute(QueryRequest::new("t0", System::BigQuery, QueryId::Q1))
            .unwrap();
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| {
                service
                    .submit(QueryRequest::new(
                        format!("t{}", i % 3),
                        System::Rumble,
                        QueryId::Q6b,
                    ))
                    .unwrap()
            })
            .collect();
        drop(service);
        let mut answered = 0;
        for t in tickets {
            match t.wait() {
                Ok(_) | Err(ServiceError::Shutdown) => answered += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(answered, 6);
    }
}
