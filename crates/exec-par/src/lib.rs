//! # exec-par
//!
//! Morsel-driven parallel execution of compiled [`PhysPlan`]s, with
//! morsel-level fault recovery.
//!
//! The morsel is one row group — the paper's Figure 2 parallelism unit:
//! its measured systems parallelize Parquet scans at row-group
//! granularity, which is what creates the plateau once the data set
//! outgrows one group and the second rise once groups outnumber cores.
//! This crate reproduces that execution model for the workspace's own
//! compiled IR path:
//!
//! * **Sharded scans** — the non-skipped row groups are dealt to the
//!   workers as contiguous shards (worker *w* starts with shard *w* of
//!   the morsel list, the same contiguous partitioning as
//!   [`nf2_columnar::Table::shard`]), preserving decode locality.
//! * **Work stealing** — a worker that drains its own deque steals from
//!   the *back* of a victim's, visiting victims in a per-worker order
//!   derived from [`ParOptions::steal_seed`] (splitmix64). Seeding the
//!   victim order makes steal interleaving reproducible *and* lets the
//!   determinism tests drive adversarial schedules.
//! * **Exchange + partial aggregation** — each morsel produces a
//!   [`physical_ir::PartialAgg`]; the [`physical_ir::Exchange`] merges
//!   them in group order, so the output is byte-identical to
//!   single-threaded [`physical_ir::execute`] at any worker count and
//!   under any steal schedule (see `physical_ir::agg` for the argument).
//! * **Cooperative cancellation** — every worker checks the
//!   [`CancelToken`] before each morsel, and the merge checks it again
//!   per partial, so cancel-during-merge still yields a typed error and
//!   never a partial histogram.
//! * **Observability** — per-worker [`Stage::Aggregate`] spans (children
//!   of one `compiled parallel` umbrella span) carry rows-in/rows-out,
//!   recovery actions record [`Stage::Recovery`] spans, and an optional
//!   [`MetricsRegistry`] records morsel/steal/recovery counters and
//!   queue-depth samples.
//!
//! ## Fault recovery (the robustness ladder)
//!
//! With [`ParOptions::recovery`] set, each morsel runs inside
//! `catch_unwind` and failures are handled at morsel granularity instead
//! of failing (or poisoning) the whole pool. The ladder, least to most
//! drastic:
//!
//! 1. **Retry in place** — a morsel failing with a *retryable* error
//!    ([`PirError::retryable`], i.e. a retryable injected scan fault) is
//!    re-executed by the same worker up to
//!    [`RecoveryOptions::max_retries`] times, cancel-checked per attempt.
//! 2. **Quarantine** — a morsel whose kernel *panics* is handed back to
//!    the shared retry queue (any worker may pick it up) and the catching
//!    worker rebuilds its scratch state; the panic never crosses the
//!    scope boundary.
//! 3. **Reassign + degrade** — a worker that absorbs more than
//!    [`RecoveryOptions::panic_budget`] panics retires: its remaining
//!    deque is drained into the shared retry queue for the survivors and
//!    the pool degrades N → N−1 → … .
//! 4. **Speculate** — an idle worker re-executes a straggler morsel
//!    in-flight for ≥ `speculate_factor ×` the median morsel duration;
//!    first result wins (per-group atomic), the loser accrues nothing.
//! 5. **Serial fallback** — morsels still unfinished when every worker
//!    has retired are executed serially by the coordinator (the
//!    degradation endpoint: the query completes even with zero live
//!    workers), with the same retry/quarantine budgets.
//!
//! Exactly-once accounting: a per-group first-result-wins gate means one
//! partial per row-group index reaches the exchange — retried,
//! reassigned and speculated re-executions can never double-count rows —
//! and the [`Exchange`] is idempotent per group index behind that as
//! defense in depth. Non-retryable errors (cancellation, schema errors,
//! a panic persisting through the budget — [`PirError::MorselPanic`])
//! still fail the query fast.
//!
//! Scan accounting is untouched by design: the engines account scans in
//! a serial, fault-free pre-pass before execution (see `engine-sql`), so
//! `ScanStats` — and therefore billing — are identical at any worker
//! count, and a cancelled, stolen, recovered or speculated morsel can
//! never be double-billed. When morsel recovery is active the engines
//! instead route the fault injector *here* ([`execute_with_faults`]):
//! each morsel probes its row group's read set through
//! [`ScanFaults::probe_group`], whose decisions are pure functions of
//! `(fingerprint, group, leaf)` — the same schedule the serial pre-pass
//! would have seen.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use nf2_columnar::{ColumnarError, MorselRecovery, RowGroup, ScanFaults, Table};
use obs::{CancelToken, MetricsRegistry, Stage, TraceCtx};
use parking_lot::Mutex;
use physical_ir::{
    execute_group, Exchange, GroupScratch, PartialAgg, PhysPlan, PirError, Provenance,
};

/// Morsel-level fault recovery knobs (see the crate docs for the
/// ladder). All bounds are per morsel except `panic_budget`, which is
/// per worker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryOptions {
    /// Failed attempts a morsel may accumulate (across in-place retries
    /// and quarantine re-executions) before the query fails with the
    /// morsel's error. The serial fallback pass gets a fresh budget.
    pub max_retries: u32,
    /// Panics a worker absorbs before it retires and its deque is
    /// reassigned to the survivors. `0` retires a worker on its first
    /// caught panic.
    pub panic_budget: u32,
    /// An idle worker speculates a straggler morsel once it has been
    /// in flight for `speculate_factor ×` the median completed-morsel
    /// duration. `<= 0` disables speculation.
    pub speculate_factor: f64,
    /// Completed-morsel duration samples required before speculation may
    /// trigger (the median is meaningless earlier).
    pub speculate_min_samples: usize,
}

impl Default for RecoveryOptions {
    fn default() -> RecoveryOptions {
        RecoveryOptions {
            max_retries: 3,
            panic_budget: 1,
            speculate_factor: 8.0,
            speculate_min_samples: 8,
        }
    }
}

/// Parallel execution options.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParOptions {
    /// Worker threads. Clamped to `[1, morsel count]`; `0` and `1` both
    /// run the single-worker pool (still through the morsel machinery,
    /// so the 1-worker path exercises the same code the N-worker path
    /// does).
    pub workers: usize,
    /// Seed of the per-worker victim-visit order for work stealing.
    /// Changing it permutes steal interleaving without changing output —
    /// the determinism tests sweep it adversarially.
    pub steal_seed: u64,
    /// Morsel-level fault recovery; `None` (the default) keeps the
    /// fail-fast pool: the first morsel error aborts the query and a
    /// kernel panic propagates out of the scope.
    pub recovery: Option<RecoveryOptions>,
}

impl ParOptions {
    /// Options for `workers` threads with the default steal order and no
    /// recovery.
    pub fn new(workers: usize) -> ParOptions {
        ParOptions {
            workers,
            steal_seed: 0,
            recovery: None,
        }
    }

    /// Options for `workers` threads with default recovery enabled.
    pub fn recovering(workers: usize) -> ParOptions {
        ParOptions {
            recovery: Some(RecoveryOptions::default()),
            ..ParOptions::new(workers)
        }
    }
}

/// What a parallel run did, for tests and the scaling bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Workers actually used (after clamping to the morsel count).
    pub workers: usize,
    /// Morsels executed — exactly the number of non-skipped row groups
    /// (each claimed and executed once; a mismatch would mean lost or
    /// double-executed work).
    pub morsels: u64,
    /// Morsels obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Rows processed across all morsels.
    pub rows: u64,
    /// Typed recovery outcome counters; all zero unless
    /// [`ParOptions::recovery`] was set.
    pub recovery: MorselRecovery,
}

/// splitmix64 step (same constants as the chaos generator) — seeds the
/// per-worker victim orders without an RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *state;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The victim-visit order of worker `w`: a seeded Fisher–Yates
/// permutation of all worker indices (self is skipped at steal time).
fn victim_order(w: usize, workers: usize, steal_seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..workers).collect();
    let mut state = steal_seed ^ (w as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
    for i in (1..order.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// A morsel in the shared retry queue, carrying the failed attempts it
/// has already burned.
#[derive(Clone, Copy)]
struct Morsel {
    group: usize,
    attempts: u32,
}

/// What a recovering worker's claim produced.
enum Claimed {
    /// A morsel from a deque (own front or a victim's back); the flag
    /// says whether it was stolen.
    Fresh(usize, bool),
    /// A quarantined or reassigned morsel from the shared retry queue.
    Requeued(Morsel),
    /// A straggler to re-execute speculatively.
    Speculate(usize),
}

/// How one morsel execution failed.
enum MorselFailure {
    /// The kernel (or fault probe) panicked; carries the payload text.
    Panicked(String),
    /// A typed error.
    Failed(PirError),
}

/// Shared recovery state: the retry queue, the per-group
/// first-result-wins gates, speculation bookkeeping and the typed
/// outcome counters.
struct RecoveryState {
    retryq: Mutex<VecDeque<Morsel>>,
    /// Per row-group "a partial for this group won" gate. Indexed by
    /// group index (not morsel position); skipped groups stay false.
    done: Vec<AtomicBool>,
    /// Per row-group "a speculative re-execution was launched" gate.
    speculated: Vec<AtomicBool>,
    /// Morsels currently executing: `(group, start)` — the speculation
    /// candidate list.
    inflight: Mutex<Vec<(usize, Instant)>>,
    /// Completed-morsel durations in seconds (speculation median).
    samples: Mutex<Vec<f64>>,
    /// Morsels not yet won — idle workers park while this is nonzero so
    /// they can pick up requeued morsels and stragglers.
    outstanding: AtomicUsize,
    wins: AtomicU64,
    retried: AtomicU64,
    respeculated: AtomicU64,
    reassigned: AtomicU64,
    quarantined: AtomicU64,
    workers_lost: AtomicU64,
}

impl RecoveryState {
    fn new(n_groups: usize, n_morsels: usize) -> RecoveryState {
        RecoveryState {
            retryq: Mutex::new(VecDeque::new()),
            done: (0..n_groups).map(|_| AtomicBool::new(false)).collect(),
            speculated: (0..n_groups).map(|_| AtomicBool::new(false)).collect(),
            inflight: Mutex::new(Vec::new()),
            samples: Mutex::new(Vec::new()),
            outstanding: AtomicUsize::new(n_morsels),
            wins: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            respeculated: AtomicU64::new(0),
            reassigned: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            workers_lost: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> MorselRecovery {
        MorselRecovery {
            ok: self.wins.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            respeculated: self.respeculated.load(Ordering::Relaxed),
            reassigned: self.reassigned.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            workers_lost: self.workers_lost.load(Ordering::Relaxed),
        }
    }
}

/// Everything the worker pool shares, bundled so the worker loops are
/// methods instead of 12-argument functions.
struct Pool<'a> {
    plan: &'a PhysPlan,
    groups: &'a [RowGroup],
    /// The plan's read set — the leaves each morsel probes through the
    /// fault injector.
    cols: Vec<nested_value::Path>,
    queues: Vec<Mutex<VecDeque<usize>>>,
    opts: ParOptions,
    stop: AtomicBool,
    rows_done: AtomicU64,
    steals: AtomicU64,
    first_err: Mutex<Option<PirError>>,
    faults: Option<ScanFaults<'a>>,
    rec: RecoveryState,
}

impl Pool<'_> {
    fn fail(&self, e: PirError) {
        let mut slot = self.first_err.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Executes one morsel under `catch_unwind`: probes the fault
    /// injector over the plan's read set (when attached), then runs the
    /// per-group kernel. A panic — injected or a genuine kernel bug —
    /// is converted into [`MorselFailure::Panicked`] instead of
    /// poisoning the scope.
    fn run_one(&self, g: usize, scratch: &mut GroupScratch) -> Result<Vec<i64>, MorselFailure> {
        let group = &self.groups[g];
        let result = catch_unwind(AssertUnwindSafe(|| {
            if let Some(f) = &self.faults {
                f.probe_group(g as u32, &self.cols)
                    .map_err(|e| PirError::Columnar(ColumnarError::Fault(e)))?;
            }
            let mut bins = Vec::new();
            execute_group(self.plan, group, scratch, &mut bins).map_err(PirError::Columnar)?;
            Ok(bins)
        }));
        match result {
            Ok(Ok(bins)) => Ok(bins),
            Ok(Err(e)) => Err(MorselFailure::Failed(e)),
            Err(payload) => Err(MorselFailure::Panicked(panic_message(&*payload))),
        }
    }

    /// First-result-wins gate: true iff this caller's partial for group
    /// `g` is the one that counts. Losers (a speculation race, or a
    /// requeued morsel whose original finished after all) accrue
    /// nothing — not rows, not a partial.
    fn try_win(&self, g: usize) -> bool {
        if self.rec.done[g]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.rec.outstanding.fetch_sub(1, Ordering::AcqRel);
            self.rec.wins.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// The fail-fast claim: front of own deque, else the back of the
    /// first non-empty victim in visit order.
    fn claim(&self, w: usize, order: &[usize]) -> Option<(usize, bool)> {
        if let Some(g) = self.queues[w].lock().pop_front() {
            return Some((g, false));
        }
        for &v in order {
            if v == w {
                continue;
            }
            if let Some(g) = self.queues[v].lock().pop_back() {
                return Some((g, true));
            }
        }
        None
    }

    /// The recovering claim: own deque, then the shared retry queue
    /// (quarantined/reassigned morsels), then stealing, then — if idle —
    /// a speculative straggler.
    fn claim_recovering(
        &self,
        w: usize,
        order: &[usize],
        ropts: RecoveryOptions,
    ) -> Option<Claimed> {
        if let Some(g) = self.queues[w].lock().pop_front() {
            return Some(Claimed::Fresh(g, false));
        }
        if let Some(m) = self.rec.retryq.lock().pop_front() {
            return Some(Claimed::Requeued(m));
        }
        for &v in order {
            if v == w {
                continue;
            }
            if let Some(g) = self.queues[v].lock().pop_back() {
                return Some(Claimed::Fresh(g, true));
            }
        }
        if ropts.speculate_factor <= 0.0 {
            return None;
        }
        let threshold = {
            let samples = self.rec.samples.lock();
            if samples.len() < ropts.speculate_min_samples.max(1) {
                return None;
            }
            let mut sorted = samples.clone();
            drop(samples);
            sorted.sort_unstable_by(f64::total_cmp);
            sorted[sorted.len() / 2] * ropts.speculate_factor
        };
        let candidates: Vec<(usize, Instant)> = self.rec.inflight.lock().clone();
        for (g, since) in candidates {
            if self.rec.done[g].load(Ordering::Acquire) {
                continue;
            }
            if since.elapsed().as_secs_f64() < threshold {
                continue;
            }
            if self.rec.speculated[g]
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(Claimed::Speculate(g));
            }
        }
        None
    }

    /// The fail-fast worker loop (recovery off): the first morsel error
    /// stops the pool; a kernel panic propagates out of the scope.
    fn worker_loop(
        &self,
        w: usize,
        trace: &TraceCtx,
        cancel: &CancelToken,
        metrics: Option<&MetricsRegistry>,
    ) -> Vec<PartialAgg> {
        let order = victim_order(w, self.queues.len(), self.opts.steal_seed);
        let mut span = trace.span_with(Stage::Aggregate, || format!("worker {w}"));
        let mut scratch = GroupScratch::new(self.plan);
        let mut out: Vec<PartialAgg> = Vec::new();
        loop {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            if let Some(m) = metrics {
                m.observe("par_queue_depth", self.queues[w].lock().len() as f64);
            }
            let Some((g_idx, stolen)) = self.claim(w, &order) else {
                break;
            };
            if stolen {
                self.steals.fetch_add(1, Ordering::Relaxed);
            }
            // Check before the morsel runs, with globally completed rows —
            // same per-row-group cancellation granularity as the serial
            // executor, overshooting by at most one in-flight morsel per
            // worker.
            if let Err(c) = cancel.check(Stage::Aggregate, self.rows_done.load(Ordering::Relaxed)) {
                self.fail(PirError::Cancelled(c));
                break;
            }
            if let Some(f) = &self.faults {
                if let Err(e) = f.probe_group(g_idx as u32, &self.cols) {
                    self.fail(PirError::Columnar(ColumnarError::Fault(e)));
                    break;
                }
            }
            let group = &self.groups[g_idx];
            let mut bins = Vec::new();
            match execute_group(self.plan, group, &mut scratch, &mut bins) {
                Ok(()) => {
                    let rows = group.n_rows() as u64;
                    self.rows_done.fetch_add(rows, Ordering::Relaxed);
                    span.add_rows_in(rows);
                    span.add_rows_out(bins.len() as u64);
                    out.push(PartialAgg {
                        group: g_idx,
                        bins,
                        rows,
                        provenance: Provenance::first(w),
                    });
                }
                Err(e) => {
                    self.fail(PirError::Columnar(e));
                    break;
                }
            }
        }
        span.finish();
        out
    }

    /// The recovering worker loop — the ladder of the crate docs.
    fn worker_loop_recovering(
        &self,
        w: usize,
        ropts: RecoveryOptions,
        trace: &TraceCtx,
        cancel: &CancelToken,
        metrics: Option<&MetricsRegistry>,
    ) -> Vec<PartialAgg> {
        let order = victim_order(w, self.queues.len(), self.opts.steal_seed);
        let mut span = trace.span_with(Stage::Aggregate, || format!("worker {w}"));
        let mut scratch = GroupScratch::new(self.plan);
        let mut out: Vec<PartialAgg> = Vec::new();
        let mut panics_absorbed = 0u32;
        'claim: loop {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            if let Some(m) = metrics {
                m.observe("par_queue_depth", self.queues[w].lock().len() as f64);
            }
            let claimed = match self.claim_recovering(w, &order, ropts) {
                Some(c) => c,
                None => {
                    // Every deque is empty but other workers still hold
                    // morsels in flight: park briefly instead of exiting,
                    // so this worker stays available for morsels they
                    // quarantine or reassign — and to observe stragglers
                    // long enough to speculate them.
                    if self.rec.outstanding.load(Ordering::Acquire) > 0 {
                        std::thread::sleep(Duration::from_micros(50));
                        continue;
                    }
                    break;
                }
            };
            let (g, mut attempts) = match claimed {
                Claimed::Speculate(g) => {
                    self.rec.respeculated.fetch_add(1, Ordering::Relaxed);
                    trace
                        .span_with(Stage::Recovery, || format!("speculate straggler group {g}"))
                        .finish();
                    match self.run_one(g, &mut scratch) {
                        Ok(bins) => {
                            if self.try_win(g) {
                                let rows = self.groups[g].n_rows() as u64;
                                self.rows_done.fetch_add(rows, Ordering::Relaxed);
                                span.add_rows_in(rows);
                                span.add_rows_out(bins.len() as u64);
                                out.push(PartialAgg {
                                    group: g,
                                    bins,
                                    rows,
                                    provenance: Provenance {
                                        worker: w,
                                        attempt: 1,
                                        speculative: true,
                                    },
                                });
                            }
                        }
                        // A failing speculation never fails the query —
                        // the primary execution owns the morsel's fate.
                        Err(MorselFailure::Panicked(_)) => scratch = GroupScratch::new(self.plan),
                        Err(MorselFailure::Failed(_)) => {}
                    }
                    continue 'claim;
                }
                Claimed::Fresh(g, stolen) => {
                    if stolen {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    (g, 0u32)
                }
                Claimed::Requeued(m) => (m.group, m.attempts),
            };
            // A speculator may have finished a requeued morsel already.
            if self.rec.done[g].load(Ordering::Acquire) {
                continue 'claim;
            }
            loop {
                if let Err(c) =
                    cancel.check(Stage::Aggregate, self.rows_done.load(Ordering::Relaxed))
                {
                    self.fail(PirError::Cancelled(c));
                    break 'claim;
                }
                self.rec.inflight.lock().push((g, Instant::now()));
                let started = Instant::now();
                let result = self.run_one(g, &mut scratch);
                {
                    let mut infl = self.rec.inflight.lock();
                    if let Some(pos) = infl.iter().position(|&(gg, _)| gg == g) {
                        infl.swap_remove(pos);
                    }
                }
                attempts += 1;
                match result {
                    Ok(bins) => {
                        self.rec
                            .samples
                            .lock()
                            .push(started.elapsed().as_secs_f64());
                        if self.try_win(g) {
                            let rows = self.groups[g].n_rows() as u64;
                            self.rows_done.fetch_add(rows, Ordering::Relaxed);
                            span.add_rows_in(rows);
                            span.add_rows_out(bins.len() as u64);
                            out.push(PartialAgg {
                                group: g,
                                bins,
                                rows,
                                provenance: Provenance {
                                    worker: w,
                                    attempt: attempts,
                                    speculative: false,
                                },
                            });
                        }
                        continue 'claim;
                    }
                    Err(MorselFailure::Panicked(message)) => {
                        // The unwind may have torn the scratch mid-write.
                        scratch = GroupScratch::new(self.plan);
                        self.rec.quarantined.fetch_add(1, Ordering::Relaxed);
                        panics_absorbed += 1;
                        trace
                            .span_with(Stage::Recovery, || {
                                format!("quarantine group {g} after panic (attempt {attempts})")
                            })
                            .finish();
                        if attempts > ropts.max_retries {
                            self.fail(PirError::MorselPanic { group: g, message });
                            break 'claim;
                        }
                        self.rec
                            .retryq
                            .lock()
                            .push_back(Morsel { group: g, attempts });
                        if panics_absorbed > ropts.panic_budget {
                            self.retire(w, trace);
                            break 'claim;
                        }
                        continue 'claim;
                    }
                    Err(MorselFailure::Failed(e)) => {
                        if e.retryable() && attempts <= ropts.max_retries {
                            self.rec.retried.fetch_add(1, Ordering::Relaxed);
                            trace
                                .span_with(Stage::Recovery, || {
                                    format!("retry group {g} in place (attempt {})", attempts + 1)
                                })
                                .finish();
                            continue;
                        }
                        self.fail(e);
                        break 'claim;
                    }
                }
            }
        }
        span.finish();
        out
    }

    /// Retires worker `w`: drains its remaining deque into the shared
    /// retry queue for the survivors and degrades the pool by one.
    fn retire(&self, w: usize, trace: &TraceCtx) {
        let drained: Vec<usize> = self.queues[w].lock().drain(..).collect();
        let n = drained.len() as u64;
        if n > 0 {
            let mut rq = self.rec.retryq.lock();
            for g in drained {
                rq.push_back(Morsel {
                    group: g,
                    attempts: 0,
                });
            }
        }
        self.rec.reassigned.fetch_add(n, Ordering::Relaxed);
        self.rec.workers_lost.fetch_add(1, Ordering::Relaxed);
        trace
            .span_with(Stage::Recovery, || {
                format!("worker {w} retired over panic budget; {n} morsels reassigned")
            })
            .finish();
    }

    /// The degradation endpoint: executes every morsel no worker
    /// finished (possible only when all workers retired over their panic
    /// budgets), serially, with a fresh retry budget per morsel.
    fn serial_fallback(
        &self,
        morsels: &[usize],
        ropts: RecoveryOptions,
        trace: &TraceCtx,
        cancel: &CancelToken,
    ) -> Result<Vec<PartialAgg>, PirError> {
        let missing: Vec<usize> = morsels
            .iter()
            .copied()
            .filter(|&g| !self.rec.done[g].load(Ordering::Acquire))
            .collect();
        if missing.is_empty() {
            return Ok(Vec::new());
        }
        let mut span = trace.span_with(Stage::Recovery, || {
            format!("serial fallback over {} morsels", missing.len())
        });
        let mut scratch = GroupScratch::new(self.plan);
        let mut out = Vec::new();
        for g in missing {
            let mut attempts = 0u32;
            loop {
                cancel
                    .check(Stage::Aggregate, self.rows_done.load(Ordering::Relaxed))
                    .map_err(PirError::Cancelled)?;
                attempts += 1;
                match self.run_one(g, &mut scratch) {
                    Ok(bins) => {
                        if self.try_win(g) {
                            let rows = self.groups[g].n_rows() as u64;
                            self.rows_done.fetch_add(rows, Ordering::Relaxed);
                            span.add_rows_in(rows);
                            span.add_rows_out(bins.len() as u64);
                            out.push(PartialAgg {
                                group: g,
                                bins,
                                rows,
                                provenance: Provenance {
                                    worker: 0,
                                    attempt: attempts,
                                    speculative: false,
                                },
                            });
                        }
                        break;
                    }
                    Err(MorselFailure::Panicked(message)) => {
                        scratch = GroupScratch::new(self.plan);
                        self.rec.quarantined.fetch_add(1, Ordering::Relaxed);
                        if attempts > ropts.max_retries {
                            return Err(PirError::MorselPanic { group: g, message });
                        }
                    }
                    Err(MorselFailure::Failed(e)) => {
                        if e.retryable() && attempts <= ropts.max_retries {
                            self.rec.retried.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        return Err(e);
                    }
                }
            }
        }
        span.finish();
        Ok(out)
    }
}

/// Executes `plan` over `table` on a worker pool and merges the
/// per-morsel partials deterministically: the returned bin-index
/// sequence is byte-identical to [`physical_ir::execute`] with the same
/// `skip` mask, at any worker count and steal seed.
///
/// `metrics`, when given, receives `par_morsels`/`par_steals` counters,
/// a `par_workers` gauge and `par_queue_depth` samples.
pub fn execute(
    plan: &PhysPlan,
    table: &Table,
    skip: Option<&[bool]>,
    trace: &TraceCtx,
    cancel: &CancelToken,
    metrics: Option<&MetricsRegistry>,
    opts: &ParOptions,
) -> Result<(Vec<i64>, ParStats), PirError> {
    execute_with_faults(plan, table, skip, trace, cancel, metrics, opts, None)
}

/// [`execute`] with a morsel-level fault surface attached: each morsel
/// probes its row group's read set through [`ScanFaults::probe_group`]
/// before the kernel runs. With [`ParOptions::recovery`] set this is the
/// fault-tolerant path (retry / quarantine / reassign / speculate /
/// serial-fallback); without it, an injected fault fails the query fast
/// and an injected panic propagates, exactly like a genuine kernel bug
/// on the fail-fast pool.
#[allow(clippy::too_many_arguments)]
pub fn execute_with_faults(
    plan: &PhysPlan,
    table: &Table,
    skip: Option<&[bool]>,
    trace: &TraceCtx,
    cancel: &CancelToken,
    metrics: Option<&MetricsRegistry>,
    opts: &ParOptions,
    faults: Option<ScanFaults<'_>>,
) -> Result<(Vec<i64>, ParStats), PirError> {
    let (exchange, stats) =
        run_morsels_with_faults(plan, table, skip, trace, cancel, metrics, opts, faults)?;
    let bins = exchange.merge(cancel)?;
    Ok((bins, stats))
}

/// The execution phase of [`execute`]: runs every non-skipped row group
/// through the worker pool and returns the unmerged [`Exchange`].
/// Exposed separately so tests (and the chaos cancel sweep) can trip the
/// token *between* execution and merge and assert the merge still
/// surfaces a typed cancellation.
pub fn run_morsels(
    plan: &PhysPlan,
    table: &Table,
    skip: Option<&[bool]>,
    trace: &TraceCtx,
    cancel: &CancelToken,
    metrics: Option<&MetricsRegistry>,
    opts: &ParOptions,
) -> Result<(Exchange, ParStats), PirError> {
    run_morsels_with_faults(plan, table, skip, trace, cancel, metrics, opts, None)
}

/// The execution phase of [`execute_with_faults`]; see [`run_morsels`].
#[allow(clippy::too_many_arguments)]
pub fn run_morsels_with_faults(
    plan: &PhysPlan,
    table: &Table,
    skip: Option<&[bool]>,
    trace: &TraceCtx,
    cancel: &CancelToken,
    metrics: Option<&MetricsRegistry>,
    opts: &ParOptions,
    faults: Option<ScanFaults<'_>>,
) -> Result<(Exchange, ParStats), PirError> {
    let groups = table.row_groups();
    let morsels: Vec<usize> = (0..groups.len())
        .filter(|&i| !skip.is_some_and(|m| m.get(i).copied().unwrap_or(false)))
        .collect();
    let workers = opts.workers.clamp(1, morsels.len().max(1));

    let mut umbrella =
        trace.span_with(Stage::Aggregate, || format!("compiled parallel x{workers}"));
    let child_ctx = umbrella.ctx();

    // Initial deal: contiguous shards of the morsel list (worker w gets
    // shard w), like Table::shard — stealing then rebalances from the
    // far end of a victim's shard, keeping each worker's run contiguous.
    let shard = morsels.len().div_ceil(workers);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = (w * shard).min(morsels.len());
            let hi = ((w + 1) * shard).min(morsels.len());
            Mutex::new(morsels[lo..hi].iter().copied().collect())
        })
        .collect();

    let pool = Pool {
        plan,
        groups,
        cols: plan.columns(),
        queues,
        opts: *opts,
        stop: AtomicBool::new(false),
        rows_done: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        first_err: Mutex::new(None),
        faults,
        rec: RecoveryState::new(groups.len(), morsels.len()),
    };

    let per_worker: Vec<Vec<PartialAgg>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let pool = &pool;
                let trace = &child_ctx;
                s.spawn(move |_| match pool.opts.recovery {
                    Some(r) => pool.worker_loop_recovering(w, r, trace, cancel, metrics),
                    None => pool.worker_loop(w, trace, cancel, metrics),
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker"))
            .collect()
    })
    .expect("worker scope");

    if let Some(e) = pool.first_err.lock().take() {
        return Err(e);
    }

    let mut exchange = Exchange::new();
    for partials in per_worker {
        for p in partials {
            exchange.push(p);
        }
    }
    if let Some(r) = opts.recovery {
        for p in pool.serial_fallback(&morsels, r, &child_ctx, cancel)? {
            exchange.push(p);
        }
    }

    let recovery = if opts.recovery.is_some() {
        pool.rec.snapshot()
    } else {
        MorselRecovery::default()
    };
    let stats = ParStats {
        workers,
        morsels: exchange.len() as u64,
        steals: pool.steals.load(Ordering::Relaxed),
        rows: pool.rows_done.load(Ordering::Relaxed),
        recovery,
    };
    if let Some(m) = metrics {
        m.gauge_set("par_workers", workers as f64);
        m.counter_add("par_morsels", stats.morsels);
        m.counter_add("par_steals", stats.steals);
        if opts.recovery.is_some() {
            m.counter_add("par_morsels_retried", recovery.retried);
            m.counter_add("par_morsels_quarantined", recovery.quarantined);
            m.counter_add("par_morsels_reassigned", recovery.reassigned);
            m.counter_add("par_morsels_respeculated", recovery.respeculated);
            m.counter_add("par_workers_lost", recovery.workers_lost);
        }
    }
    umbrella.add_rows_in(stats.rows);
    umbrella.finish();
    Ok((exchange, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_model::generator::build_dataset;
    use hep_model::DatasetSpec;
    use nested_value::Path;
    use nf2_columnar::{FaultClass, FaultConfig, FaultInjector, ScalarPredicate, SelCmp, SelValue};
    use physical_ir::{ComputeNode, FilterNode, TrijetCompute, TrijetPlot};
    use physics::HistSpec;

    fn dataset() -> Table {
        build_dataset(DatasetSpec {
            n_events: 1_200,
            row_group_size: 100,
            seed: 0xC0FFEE,
        })
        .1
    }

    fn scalar_plan() -> PhysPlan {
        PhysPlan {
            filters: vec![FilterNode::Scalar(ScalarPredicate {
                leaf: Path::parse("MET.pt"),
                cmp: SelCmp::Gt,
                value: SelValue::Float(20.0),
            })],
            compute: ComputeNode::ScalarFill {
                leaf: Path::parse("MET.pt"),
            },
            spec: HistSpec::new(50, 0.0, 150.0),
        }
    }

    fn trijet_plan() -> PhysPlan {
        PhysPlan {
            filters: vec![FilterNode::ListCount {
                leaf: Path::parse("Jet.pt"),
                elem: None,
                cmp: SelCmp::Ge,
                count: 3,
            }],
            compute: ComputeNode::Trijet(TrijetCompute {
                pt: Path::parse("Jet.pt"),
                eta: Path::parse("Jet.eta"),
                phi: Path::parse("Jet.phi"),
                mass: Path::parse("Jet.mass"),
                btag: Path::parse("Jet.btag"),
                top_mass: 172.5,
                plot: TrijetPlot::Pt,
            }),
            spec: HistSpec::new(100, 15.0, 40.0),
        }
    }

    fn serial(plan: &PhysPlan, table: &Table, skip: Option<&[bool]>) -> Vec<i64> {
        physical_ir::execute(
            plan,
            table,
            skip,
            &TraceCtx::disabled(),
            &CancelToken::none(),
        )
        .unwrap()
    }

    fn faults_for<'f>(injector: &'f FaultInjector, table: &'f Table) -> ScanFaults<'f> {
        ScanFaults {
            injector,
            table_name: "events",
            table_fingerprint: table.fingerprint(),
        }
    }

    #[test]
    fn byte_identical_at_any_worker_count_and_steal_seed() {
        let table = dataset();
        for plan in [scalar_plan(), trijet_plan()] {
            let want = serial(&plan, &table, None);
            for workers in [1, 2, 3, 8] {
                for steal_seed in [0, 1, 0xDEAD_BEEF, u64::MAX] {
                    let (bins, stats) = execute(
                        &plan,
                        &table,
                        None,
                        &TraceCtx::disabled(),
                        &CancelToken::none(),
                        None,
                        &ParOptions {
                            workers,
                            steal_seed,
                            recovery: None,
                        },
                    )
                    .unwrap();
                    assert_eq!(bins, want, "workers={workers} seed={steal_seed:#x}");
                    assert_eq!(stats.morsels, table.row_groups().len() as u64);
                    assert_eq!(stats.rows, table.n_rows() as u64);
                    assert_eq!(stats.recovery, MorselRecovery::default());
                }
            }
        }
    }

    #[test]
    fn skip_mask_respected_and_morsels_counted_exactly() {
        let table = dataset();
        let plan = scalar_plan();
        let n_groups = table.row_groups().len();
        let skip: Vec<bool> = (0..n_groups).map(|i| i % 3 == 0).collect();
        let want = serial(&plan, &table, Some(&skip));
        let (bins, stats) = execute(
            &plan,
            &table,
            Some(&skip),
            &TraceCtx::disabled(),
            &CancelToken::none(),
            None,
            &ParOptions::new(4),
        )
        .unwrap();
        assert_eq!(bins, want);
        let expected = skip.iter().filter(|s| !**s).count() as u64;
        assert_eq!(stats.morsels, expected, "each kept group executed once");
    }

    #[test]
    fn already_cancelled_token_stops_before_any_morsel() {
        let table = dataset();
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = execute(
            &scalar_plan(),
            &table,
            None,
            &TraceCtx::disabled(),
            &cancel,
            None,
            &ParOptions::new(4),
        )
        .unwrap_err();
        match err {
            PirError::Cancelled(c) => {
                assert_eq!(c.rows_processed, 0);
                assert_eq!(c.stage, Stage::Aggregate);
            }
            other => panic!("expected cancellation, got {other}"),
        }
    }

    #[test]
    fn cancel_between_execution_and_merge_is_all_or_nothing() {
        let table = dataset();
        let plan = scalar_plan();
        let cancel = CancelToken::new();
        let (exchange, stats) = run_morsels(
            &plan,
            &table,
            None,
            &TraceCtx::disabled(),
            &cancel,
            None,
            &ParOptions::new(2),
        )
        .unwrap();
        assert_eq!(stats.morsels, table.row_groups().len() as u64);
        // The client cancels after every morsel ran but before the merge:
        // the merge must surface a typed cancellation, not partial bins.
        cancel.cancel();
        let err = exchange.merge(&cancel).unwrap_err();
        assert_eq!(err.stage, Stage::Aggregate);
        assert_eq!(err.reason, obs::CancelReason::Explicit);
    }

    #[test]
    fn trace_and_metrics_record_worker_activity() {
        let table = dataset();
        let trace = TraceCtx::enabled();
        let metrics = MetricsRegistry::new();
        let (_, stats) = execute(
            &scalar_plan(),
            &table,
            None,
            &trace,
            &CancelToken::none(),
            Some(&metrics),
            &ParOptions::new(3),
        )
        .unwrap();
        let tree = trace.take_tree();
        let spans = tree.flatten();
        let workers_seen = spans
            .iter()
            .filter(|s| s.label.starts_with("worker "))
            .count();
        assert_eq!(workers_seen, stats.workers);
        assert!(spans
            .iter()
            .any(|s| s.label.starts_with("compiled parallel")));
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("par_morsels"), stats.morsels);
        assert_eq!(snap.counter("par_steals"), stats.steals);
    }

    #[test]
    fn victim_orders_are_permutations_and_seed_sensitive() {
        let a = victim_order(0, 8, 7);
        let b = victim_order(0, 8, 8);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        assert_ne!(a, b, "different seeds should permute victims differently");
        assert_eq!(a, victim_order(0, 8, 7), "same seed ⇒ same order");
    }

    // ---- recovery ----

    fn recovery_opts() -> RecoveryOptions {
        RecoveryOptions {
            speculate_factor: 0.0, // deterministic unless a test wants it
            ..RecoveryOptions::default()
        }
    }

    #[test]
    fn recovery_on_clean_run_counts_every_morsel_ok() {
        let table = dataset();
        let plan = scalar_plan();
        let want = serial(&plan, &table, None);
        let (bins, stats) = execute(
            &plan,
            &table,
            None,
            &TraceCtx::disabled(),
            &CancelToken::none(),
            None,
            &ParOptions {
                recovery: Some(recovery_opts()),
                ..ParOptions::new(4)
            },
        )
        .unwrap();
        assert_eq!(bins, want);
        assert_eq!(stats.recovery.ok, table.row_groups().len() as u64);
        assert_eq!(stats.recovery.interventions(), 0);
    }

    #[test]
    fn transient_scan_faults_retry_in_place_and_stay_byte_identical() {
        let table = dataset();
        let plan = scalar_plan();
        let want = serial(&plan, &table, None);
        for workers in [1, 2, 4] {
            for steal_seed in [0, 0xDEAD_BEEF] {
                let injector = FaultInjector::new(FaultConfig {
                    transient_attempts: 1,
                    ..FaultConfig::only(FaultClass::Io, 0.4, 0xFA_17)
                });
                let (exchange, stats) = run_morsels_with_faults(
                    &plan,
                    &table,
                    None,
                    &TraceCtx::disabled(),
                    &CancelToken::none(),
                    None,
                    &ParOptions {
                        workers,
                        steal_seed,
                        recovery: Some(recovery_opts()),
                    },
                    Some(faults_for(&injector, &table)),
                )
                .unwrap();
                assert!(
                    injector.counters().errors() > 0,
                    "the schedule must actually inject faults"
                );
                assert!(
                    stats.recovery.retried > 0,
                    "transient faults must be retried in place (workers={workers})"
                );
                assert_eq!(exchange.duplicates_dropped(), 0, "no double pushes");
                assert_eq!(stats.rows, table.n_rows() as u64, "no double billing");
                assert_eq!(stats.morsels, table.row_groups().len() as u64);
                let bins = exchange.merge(&CancelToken::none()).unwrap();
                assert_eq!(bins, want, "workers={workers} seed={steal_seed:#x}");
            }
        }
    }

    #[test]
    fn persistent_fault_fails_with_typed_error_after_bounded_retries() {
        let table = dataset();
        let injector = FaultInjector::new(FaultConfig {
            transient_attempts: 0, // persistent: never recovers
            ..FaultConfig::only(FaultClass::ChecksumMismatch, 1.0, 1)
        });
        let err = execute_with_faults(
            &scalar_plan(),
            &table,
            None,
            &TraceCtx::disabled(),
            &CancelToken::none(),
            None,
            &ParOptions {
                recovery: Some(recovery_opts()),
                ..ParOptions::new(2)
            },
            Some(faults_for(&injector, &table)),
        )
        .unwrap_err();
        match err {
            PirError::Columnar(ColumnarError::Fault(s)) => {
                assert_eq!(s.class, FaultClass::ChecksumMismatch);
            }
            other => panic!("expected a fault error, got {other}"),
        }
    }

    #[test]
    fn poisoned_morsel_is_quarantined_and_query_completes() {
        let table = dataset();
        let plan = trijet_plan();
        let want = serial(&plan, &table, None);
        // Transient panic: the first read of a faulting chunk panics,
        // the re-execution after quarantine succeeds.
        for panic_budget in [0, 8] {
            let injector = FaultInjector::new(FaultConfig {
                transient_attempts: 1,
                ..FaultConfig::only(FaultClass::Panic, 0.2, 0xBAD)
            });
            let (bins, stats) = execute_with_faults(
                &plan,
                &table,
                None,
                &TraceCtx::disabled(),
                &CancelToken::none(),
                None,
                &ParOptions {
                    recovery: Some(RecoveryOptions {
                        panic_budget,
                        ..recovery_opts()
                    }),
                    ..ParOptions::new(4)
                },
                Some(faults_for(&injector, &table)),
            )
            .unwrap();
            assert_eq!(bins, want, "panic_budget={panic_budget}");
            assert!(stats.recovery.quarantined > 0, "panics must quarantine");
            assert_eq!(stats.rows, table.n_rows() as u64, "no double billing");
            if panic_budget == 0 {
                assert!(
                    stats.recovery.workers_lost > 0,
                    "a zero panic budget must retire the catching worker"
                );
            }
        }
    }

    #[test]
    fn persistent_panic_surfaces_typed_morsel_panic() {
        let table = dataset();
        let injector = FaultInjector::new(FaultConfig {
            transient_attempts: 0,
            ..FaultConfig::only(FaultClass::Panic, 1.0, 2)
        });
        let err = execute_with_faults(
            &scalar_plan(),
            &table,
            None,
            &TraceCtx::disabled(),
            &CancelToken::none(),
            None,
            &ParOptions {
                recovery: Some(RecoveryOptions {
                    panic_budget: u32::MAX, // isolate the retry budget
                    ..recovery_opts()
                }),
                ..ParOptions::new(2)
            },
            Some(faults_for(&injector, &table)),
        )
        .unwrap_err();
        match err {
            PirError::MorselPanic { message, .. } => {
                assert!(message.contains("injected panic"), "got: {message}");
            }
            other => panic!("expected MorselPanic, got {other}"),
        }
    }

    #[test]
    fn all_workers_lost_degrades_to_serial_fallback() {
        let table = dataset();
        let plan = scalar_plan();
        let want = serial(&plan, &table, None);
        // Every chunk read panics three times before recovering, and the
        // panic budget is zero: both workers retire on their first
        // morsel, and the coordinator's serial fallback must finish the
        // query alone.
        let injector = FaultInjector::new(FaultConfig {
            transient_attempts: 3,
            ..FaultConfig::only(FaultClass::Panic, 1.0, 3)
        });
        let trace = TraceCtx::enabled();
        let (bins, stats) = execute_with_faults(
            &plan,
            &table,
            None,
            &trace,
            &CancelToken::none(),
            None,
            &ParOptions {
                recovery: Some(RecoveryOptions {
                    panic_budget: 0,
                    max_retries: 3,
                    ..recovery_opts()
                }),
                ..ParOptions::new(2)
            },
            Some(faults_for(&injector, &table)),
        )
        .unwrap();
        assert_eq!(bins, want);
        assert_eq!(stats.recovery.workers_lost, 2, "both workers must retire");
        assert_eq!(stats.rows, table.n_rows() as u64);
        let tree = trace.take_tree();
        assert!(
            tree.flatten()
                .iter()
                .any(|s| s.stage == Stage::Recovery && s.label.starts_with("serial fallback")),
            "the fallback pass must record a recovery span"
        );
    }

    #[test]
    fn straggler_is_speculated_and_first_result_wins() {
        // Three morsels, two workers, every probe sleeping 20 ms: after
        // the first two morsels finish, one worker runs the last morsel
        // while the other is idle — the idle one must speculate it once
        // the straggler exceeds 0.5× the median morsel duration.
        let table = build_dataset(DatasetSpec {
            n_events: 300,
            row_group_size: 100,
            seed: 0xC0FFEE,
        })
        .1;
        let plan = scalar_plan();
        let want = serial(&plan, &table, None);
        let injector = FaultInjector::new(FaultConfig {
            latency: Duration::from_millis(20),
            ..FaultConfig::only(FaultClass::Latency, 1.0, 4)
        });
        let (exchange, stats) = run_morsels_with_faults(
            &plan,
            &table,
            None,
            &TraceCtx::disabled(),
            &CancelToken::none(),
            None,
            &ParOptions {
                recovery: Some(RecoveryOptions {
                    speculate_factor: 0.5,
                    speculate_min_samples: 1,
                    ..RecoveryOptions::default()
                }),
                ..ParOptions::new(2)
            },
            Some(faults_for(&injector, &table)),
        )
        .unwrap();
        assert_eq!(
            stats.recovery.respeculated, 1,
            "the straggler is speculated once"
        );
        assert_eq!(
            exchange.duplicates_dropped(),
            0,
            "losers never reach the exchange"
        );
        assert_eq!(stats.morsels, 3);
        assert_eq!(stats.rows, 300, "the losing attempt accrues nothing");
        assert_eq!(exchange.merge(&CancelToken::none()).unwrap(), want);
    }

    #[test]
    fn recovery_off_fails_whole_query_on_first_fault() {
        let table = dataset();
        let injector = FaultInjector::new(FaultConfig {
            transient_attempts: 1, // transient — but nobody retries
            ..FaultConfig::only(FaultClass::Io, 1.0, 5)
        });
        let err = execute_with_faults(
            &scalar_plan(),
            &table,
            None,
            &TraceCtx::disabled(),
            &CancelToken::none(),
            None,
            &ParOptions::new(2),
            Some(faults_for(&injector, &table)),
        )
        .unwrap_err();
        assert!(
            matches!(err, PirError::Columnar(ColumnarError::Fault(_))),
            "got {err}"
        );
    }
}
