//! # exec-par
//!
//! Morsel-driven parallel execution of compiled [`PhysPlan`]s.
//!
//! The morsel is one row group — the paper's Figure 2 parallelism unit:
//! its measured systems parallelize Parquet scans at row-group
//! granularity, which is what creates the plateau once the data set
//! outgrows one group and the second rise once groups outnumber cores.
//! This crate reproduces that execution model for the workspace's own
//! compiled IR path:
//!
//! * **Sharded scans** — the non-skipped row groups are dealt to the
//!   workers as contiguous shards (worker *w* starts with shard *w* of
//!   the morsel list, the same contiguous partitioning as
//!   [`nf2_columnar::Table::shard`]), preserving decode locality.
//! * **Work stealing** — a worker that drains its own deque steals from
//!   the *back* of a victim's, visiting victims in a per-worker order
//!   derived from [`ParOptions::steal_seed`] (splitmix64). Seeding the
//!   victim order makes steal interleaving reproducible *and* lets the
//!   determinism tests drive adversarial schedules.
//! * **Exchange + partial aggregation** — each morsel produces a
//!   [`physical_ir::PartialAgg`]; the [`physical_ir::Exchange`] merges
//!   them in group order, so the output is byte-identical to
//!   single-threaded [`physical_ir::execute`] at any worker count and
//!   under any steal schedule (see `physical_ir::agg` for the argument).
//! * **Cooperative cancellation** — every worker checks the
//!   [`CancelToken`] before each morsel, and the merge checks it again
//!   per partial, so cancel-during-merge still yields a typed error and
//!   never a partial histogram.
//! * **Observability** — per-worker [`Stage::Aggregate`] spans (children
//!   of one `compiled parallel` umbrella span) carry rows-in/rows-out,
//!   and an optional [`MetricsRegistry`] records morsel/steal counters
//!   and queue-depth samples.
//!
//! Scan accounting is untouched by design: the engines account scans in
//! a serial pre-pass before execution (see `engine-sql`), so
//! `ScanStats` — and therefore billing — are identical at any worker
//! count, and a cancelled or stolen morsel can never be double-billed.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use nf2_columnar::{RowGroup, Table};
use obs::{CancelToken, MetricsRegistry, Stage, TraceCtx};
use parking_lot::Mutex;
use physical_ir::{execute_group, Exchange, GroupScratch, PartialAgg, PhysPlan, PirError};

/// Parallel execution options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParOptions {
    /// Worker threads. Clamped to `[1, morsel count]`; `0` and `1` both
    /// run the single-worker pool (still through the morsel machinery,
    /// so the 1-worker path exercises the same code the N-worker path
    /// does).
    pub workers: usize,
    /// Seed of the per-worker victim-visit order for work stealing.
    /// Changing it permutes steal interleaving without changing output —
    /// the determinism tests sweep it adversarially.
    pub steal_seed: u64,
}

impl ParOptions {
    /// Options for `workers` threads with the default steal order.
    pub fn new(workers: usize) -> ParOptions {
        ParOptions {
            workers,
            steal_seed: 0,
        }
    }
}

/// What a parallel run did, for tests and the scaling bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Workers actually used (after clamping to the morsel count).
    pub workers: usize,
    /// Morsels executed — exactly the number of non-skipped row groups
    /// (each claimed and executed once; a mismatch would mean lost or
    /// double-executed work).
    pub morsels: u64,
    /// Morsels obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Rows processed across all morsels.
    pub rows: u64,
}

/// splitmix64 step (same constants as the chaos generator) — seeds the
/// per-worker victim orders without an RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *state;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The victim-visit order of worker `w`: a seeded Fisher–Yates
/// permutation of all worker indices (self is skipped at steal time).
fn victim_order(w: usize, workers: usize, steal_seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..workers).collect();
    let mut state = steal_seed ^ (w as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
    for i in (1..order.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Pops the next morsel for worker `w`: front of its own deque, else the
/// back of the first non-empty victim in its visit order. `None` means
/// every deque is empty — and since deques are only ever drained, that
/// means all work is claimed.
fn claim(queues: &[Mutex<VecDeque<usize>>], w: usize, order: &[usize]) -> Option<(usize, bool)> {
    if let Some(g) = queues[w].lock().pop_front() {
        return Some((g, false));
    }
    for &v in order {
        if v == w {
            continue;
        }
        if let Some(g) = queues[v].lock().pop_back() {
            return Some((g, true));
        }
    }
    None
}

/// Executes `plan` over `table` on a worker pool and merges the
/// per-morsel partials deterministically: the returned bin-index
/// sequence is byte-identical to [`physical_ir::execute`] with the same
/// `skip` mask, at any worker count and steal seed.
///
/// `metrics`, when given, receives `par_morsels`/`par_steals` counters,
/// a `par_workers` gauge and `par_queue_depth` samples.
pub fn execute(
    plan: &PhysPlan,
    table: &Table,
    skip: Option<&[bool]>,
    trace: &TraceCtx,
    cancel: &CancelToken,
    metrics: Option<&MetricsRegistry>,
    opts: &ParOptions,
) -> Result<(Vec<i64>, ParStats), PirError> {
    let (exchange, stats) = run_morsels(plan, table, skip, trace, cancel, metrics, opts)?;
    let bins = exchange.merge(cancel)?;
    Ok((bins, stats))
}

/// The execution phase of [`execute`]: runs every non-skipped row group
/// through the worker pool and returns the unmerged [`Exchange`].
/// Exposed separately so tests (and the chaos cancel sweep) can trip the
/// token *between* execution and merge and assert the merge still
/// surfaces a typed cancellation.
pub fn run_morsels(
    plan: &PhysPlan,
    table: &Table,
    skip: Option<&[bool]>,
    trace: &TraceCtx,
    cancel: &CancelToken,
    metrics: Option<&MetricsRegistry>,
    opts: &ParOptions,
) -> Result<(Exchange, ParStats), PirError> {
    let groups = table.row_groups();
    let morsels: Vec<usize> = (0..groups.len())
        .filter(|&i| !skip.is_some_and(|m| m.get(i).copied().unwrap_or(false)))
        .collect();
    let workers = opts.workers.clamp(1, morsels.len().max(1));

    let mut umbrella =
        trace.span_with(Stage::Aggregate, || format!("compiled parallel x{workers}"));
    let child_ctx = umbrella.ctx();

    // Initial deal: contiguous shards of the morsel list (worker w gets
    // shard w), like Table::shard — stealing then rebalances from the
    // far end of a victim's shard, keeping each worker's run contiguous.
    let shard = morsels.len().div_ceil(workers);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = (w * shard).min(morsels.len());
            let hi = ((w + 1) * shard).min(morsels.len());
            Mutex::new(morsels[lo..hi].iter().copied().collect())
        })
        .collect();

    let stop = AtomicBool::new(false);
    let rows_done = AtomicU64::new(0);
    let steals = AtomicU64::new(0);
    let first_err: Mutex<Option<PirError>> = Mutex::new(None);

    let per_worker: Vec<Vec<PartialAgg>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let stop = &stop;
                let rows_done = &rows_done;
                let steals = &steals;
                let first_err = &first_err;
                let trace = &child_ctx;
                s.spawn(move |_| {
                    worker_loop(
                        w, plan, groups, queues, opts, stop, rows_done, steals, first_err, trace,
                        cancel, metrics,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker"))
            .collect()
    })
    .expect("worker scope");

    if let Some(e) = first_err.into_inner() {
        return Err(e);
    }

    let mut exchange = Exchange::new();
    for partials in per_worker {
        for p in partials {
            exchange.push(p);
        }
    }
    let stats = ParStats {
        workers,
        morsels: exchange.len() as u64,
        steals: steals.load(Ordering::Relaxed),
        rows: rows_done.load(Ordering::Relaxed),
    };
    if let Some(m) = metrics {
        m.gauge_set("par_workers", workers as f64);
        m.counter_add("par_morsels", stats.morsels);
        m.counter_add("par_steals", stats.steals);
    }
    umbrella.add_rows_in(stats.rows);
    umbrella.finish();
    Ok((exchange, stats))
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    w: usize,
    plan: &PhysPlan,
    groups: &[RowGroup],
    queues: &[Mutex<VecDeque<usize>>],
    opts: &ParOptions,
    stop: &AtomicBool,
    rows_done: &AtomicU64,
    steals: &AtomicU64,
    first_err: &Mutex<Option<PirError>>,
    trace: &TraceCtx,
    cancel: &CancelToken,
    metrics: Option<&MetricsRegistry>,
) -> Vec<PartialAgg> {
    let order = victim_order(w, queues.len(), opts.steal_seed);
    let mut span = trace.span_with(Stage::Aggregate, || format!("worker {w}"));
    let mut scratch = GroupScratch::new(plan);
    let mut out: Vec<PartialAgg> = Vec::new();
    let fail = |e: PirError| {
        let mut slot = first_err.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        stop.store(true, Ordering::Relaxed);
    };
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(m) = metrics {
            m.observe("par_queue_depth", queues[w].lock().len() as f64);
        }
        let Some((g_idx, stolen)) = claim(queues, w, &order) else {
            break;
        };
        if stolen {
            steals.fetch_add(1, Ordering::Relaxed);
        }
        // Check before the morsel runs, with globally completed rows —
        // same per-row-group cancellation granularity as the serial
        // executor, overshooting by at most one in-flight morsel per
        // worker.
        if let Err(c) = cancel.check(Stage::Aggregate, rows_done.load(Ordering::Relaxed)) {
            fail(PirError::Cancelled(c));
            break;
        }
        let group = &groups[g_idx];
        let mut bins = Vec::new();
        match execute_group(plan, group, &mut scratch, &mut bins) {
            Ok(()) => {
                let rows = group.n_rows() as u64;
                rows_done.fetch_add(rows, Ordering::Relaxed);
                span.add_rows_in(rows);
                span.add_rows_out(bins.len() as u64);
                out.push(PartialAgg {
                    group: g_idx,
                    bins,
                    rows,
                });
            }
            Err(e) => {
                fail(PirError::Columnar(e));
                break;
            }
        }
    }
    span.finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hep_model::generator::build_dataset;
    use hep_model::DatasetSpec;
    use nested_value::Path;
    use nf2_columnar::{ScalarPredicate, SelCmp, SelValue};
    use physical_ir::{ComputeNode, FilterNode, TrijetCompute, TrijetPlot};
    use physics::HistSpec;

    fn dataset() -> Table {
        build_dataset(DatasetSpec {
            n_events: 1_200,
            row_group_size: 100,
            seed: 0xC0FFEE,
        })
        .1
    }

    fn scalar_plan() -> PhysPlan {
        PhysPlan {
            filters: vec![FilterNode::Scalar(ScalarPredicate {
                leaf: Path::parse("MET.pt"),
                cmp: SelCmp::Gt,
                value: SelValue::Float(20.0),
            })],
            compute: ComputeNode::ScalarFill {
                leaf: Path::parse("MET.pt"),
            },
            spec: HistSpec::new(50, 0.0, 150.0),
        }
    }

    fn trijet_plan() -> PhysPlan {
        PhysPlan {
            filters: vec![FilterNode::ListCount {
                leaf: Path::parse("Jet.pt"),
                elem: None,
                cmp: SelCmp::Ge,
                count: 3,
            }],
            compute: ComputeNode::Trijet(TrijetCompute {
                pt: Path::parse("Jet.pt"),
                eta: Path::parse("Jet.eta"),
                phi: Path::parse("Jet.phi"),
                mass: Path::parse("Jet.mass"),
                btag: Path::parse("Jet.btag"),
                top_mass: 172.5,
                plot: TrijetPlot::Pt,
            }),
            spec: HistSpec::new(100, 15.0, 40.0),
        }
    }

    fn serial(plan: &PhysPlan, table: &Table, skip: Option<&[bool]>) -> Vec<i64> {
        physical_ir::execute(
            plan,
            table,
            skip,
            &TraceCtx::disabled(),
            &CancelToken::none(),
        )
        .unwrap()
    }

    #[test]
    fn byte_identical_at_any_worker_count_and_steal_seed() {
        let table = dataset();
        for plan in [scalar_plan(), trijet_plan()] {
            let want = serial(&plan, &table, None);
            for workers in [1, 2, 3, 8] {
                for steal_seed in [0, 1, 0xDEAD_BEEF, u64::MAX] {
                    let (bins, stats) = execute(
                        &plan,
                        &table,
                        None,
                        &TraceCtx::disabled(),
                        &CancelToken::none(),
                        None,
                        &ParOptions {
                            workers,
                            steal_seed,
                        },
                    )
                    .unwrap();
                    assert_eq!(bins, want, "workers={workers} seed={steal_seed:#x}");
                    assert_eq!(stats.morsels, table.row_groups().len() as u64);
                    assert_eq!(stats.rows, table.n_rows() as u64);
                }
            }
        }
    }

    #[test]
    fn skip_mask_respected_and_morsels_counted_exactly() {
        let table = dataset();
        let plan = scalar_plan();
        let n_groups = table.row_groups().len();
        let skip: Vec<bool> = (0..n_groups).map(|i| i % 3 == 0).collect();
        let want = serial(&plan, &table, Some(&skip));
        let (bins, stats) = execute(
            &plan,
            &table,
            Some(&skip),
            &TraceCtx::disabled(),
            &CancelToken::none(),
            None,
            &ParOptions::new(4),
        )
        .unwrap();
        assert_eq!(bins, want);
        let expected = skip.iter().filter(|s| !**s).count() as u64;
        assert_eq!(stats.morsels, expected, "each kept group executed once");
    }

    #[test]
    fn already_cancelled_token_stops_before_any_morsel() {
        let table = dataset();
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = execute(
            &scalar_plan(),
            &table,
            None,
            &TraceCtx::disabled(),
            &cancel,
            None,
            &ParOptions::new(4),
        )
        .unwrap_err();
        match err {
            PirError::Cancelled(c) => {
                assert_eq!(c.rows_processed, 0);
                assert_eq!(c.stage, Stage::Aggregate);
            }
            other => panic!("expected cancellation, got {other}"),
        }
    }

    #[test]
    fn cancel_between_execution_and_merge_is_all_or_nothing() {
        let table = dataset();
        let plan = scalar_plan();
        let cancel = CancelToken::new();
        let (exchange, stats) = run_morsels(
            &plan,
            &table,
            None,
            &TraceCtx::disabled(),
            &cancel,
            None,
            &ParOptions::new(2),
        )
        .unwrap();
        assert_eq!(stats.morsels, table.row_groups().len() as u64);
        // The client cancels after every morsel ran but before the merge:
        // the merge must surface a typed cancellation, not partial bins.
        cancel.cancel();
        let err = exchange.merge(&cancel).unwrap_err();
        assert_eq!(err.stage, Stage::Aggregate);
        assert_eq!(err.reason, obs::CancelReason::Explicit);
    }

    #[test]
    fn trace_and_metrics_record_worker_activity() {
        let table = dataset();
        let trace = TraceCtx::enabled();
        let metrics = MetricsRegistry::new();
        let (_, stats) = execute(
            &scalar_plan(),
            &table,
            None,
            &trace,
            &CancelToken::none(),
            Some(&metrics),
            &ParOptions::new(3),
        )
        .unwrap();
        let tree = trace.take_tree();
        let spans = tree.flatten();
        let workers_seen = spans
            .iter()
            .filter(|s| s.label.starts_with("worker "))
            .count();
        assert_eq!(workers_seen, stats.workers);
        assert!(spans
            .iter()
            .any(|s| s.label.starts_with("compiled parallel")));
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("par_morsels"), stats.morsels);
        assert_eq!(snap.counter("par_steals"), stats.steals);
    }

    #[test]
    fn victim_orders_are_permutations_and_seed_sensitive() {
        let a = victim_order(0, 8, 7);
        let b = victim_order(0, 8, 8);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        assert_ne!(a, b, "different seeds should permute victims differently");
        assert_eq!(a, victim_order(0, 8, 7), "same seed ⇒ same order");
    }
}
