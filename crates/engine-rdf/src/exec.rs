//! The parallel event loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use nested_value::Path;
use nf2_columnar::{
    ColumnChunk, ExecStats, Projection, PushdownCapability, RowGroup, ScalarPredicate,
    SelectionVector, Table,
};
use parking_lot::Mutex;
use physics::Histogram;

use crate::dataframe::{Node, RDataFrame, RdfError};
use crate::view::{BaseColumn, ColValue, ColumnId, EventView};

/// How workers publish partial results.
///
/// The paper reports that ROOT 6.22's RDataFrame loses performance beyond a
/// certain core count due to lock contention (\[4\], \[28\], §4.1). We model the
/// two ends of that spectrum:
///
/// * [`ContentionModel::Fixed`] — each worker merges its partial histograms
///   once per row group (what a contention-free design does).
/// * [`ContentionModel::RootV622`] — each worker merges into one global
///   mutex-protected accumulator every `merge_every` events, serializing
///   all workers on a single lock exactly like the v6.22 fill path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContentionModel {
    /// Contention-free merging (the "fixed development version").
    Fixed,
    /// ROOT 6.22-like frequent global merging.
    RootV622 {
        /// Events between global merges; ROOT's effective batching was
        /// small — 64 reproduces the reported cliff at high core counts.
        merge_every: usize,
    },
}

/// Result of one event loop.
pub struct RunOutput {
    /// One histogram per booking, in booking order.
    pub histograms: Vec<Histogram>,
    /// Execution statistics.
    pub stats: ExecStats,
}

/// Maps an RDataFrame-style flat column name (`Jet_pt`, `MET_sumet`,
/// `event`) to a schema path.
pub(crate) fn resolve_column(table: &Table, name: &str) -> Result<Path, RdfError> {
    let schema = table.schema();
    if schema.field(name).is_some() {
        return Ok(Path::root(name));
    }
    if let Some((head, rest)) = name.split_once('_') {
        if schema.field(head).is_some() {
            let path = Path::parse(&format!("{head}.{rest}"));
            if schema.leaf(&path).is_some() {
                return Ok(path);
            }
        }
    }
    Err(RdfError::UnknownColumn(name.to_string()))
}

fn widen(chunk: &ColumnChunk) -> Vec<f64> {
    (0..chunk.n_entries())
        .map(|i| chunk.data.get_f64(i))
        .collect()
}

/// Materializes the base columns of one row group (shared with the
/// low-level event loop).
pub(crate) fn materialize_base(
    group: &RowGroup,
    paths: &[Path],
) -> Result<Vec<BaseColumn>, RdfError> {
    paths
        .iter()
        .map(|p| {
            let chunk = group.column(p)?;
            let values = Arc::new(widen(chunk));
            Ok(match &chunk.offsets {
                Some(off) => BaseColumn::Array(values, Arc::new(off.clone())),
                None => BaseColumn::Scalar(values),
            })
        })
        .collect()
}

/// Executes the dataframe's event loop.
pub(crate) fn run(df: &RDataFrame) -> Result<RunOutput, RdfError> {
    let start = Instant::now();
    let table = &df.table;

    let plan_span = df.trace.span(obs::Stage::Plan);
    // Resolve base columns and the projection they imply.
    let base_paths: Vec<Path> = df
        .registry
        .base_names
        .iter()
        .map(|n| resolve_column(table, n))
        .collect::<Result<_, _>>()?;
    let projection = Projection::of(base_paths.iter().map(|p| p.to_string()));
    let scan_cache = df
        .chunk_cache
        .as_deref()
        .map(|cache| nf2_columnar::ScanCache {
            cache,
            table_fingerprint: table.fingerprint(),
        });
    let mk_faults = || {
        df.fault_injector
            .as_deref()
            .map(|injector| nf2_columnar::ScanFaults {
                injector,
                table_name: table.name(),
                table_fingerprint: table.fingerprint(),
            })
    };
    // Resolve booking targets.
    let booking_cols: Vec<ColumnId> = df
        .bookings
        .iter()
        .map(|b| *df.registry.by_name.get(&b.column).expect("declared"))
        .collect();

    // Resolve declarative scalar cuts. A cut on a repeated or boolean
    // column has no per-event scalar to compare and is rejected outright.
    let scalar_preds: Vec<ScalarPredicate> = df
        .scalar_filters
        .iter()
        .map(|(name, cmp, value)| {
            let leaf_path = resolve_column(table, name)?;
            match table.schema().leaf(&leaf_path) {
                Some(l) if !l.repeated && l.ptype != nf2_columnar::PhysicalType::Bool => {
                    Ok(ScalarPredicate {
                        leaf: leaf_path,
                        cmp: *cmp,
                        value: *value,
                    })
                }
                _ => Err(RdfError::NotScalar(name.clone())),
            }
        })
        .collect::<Result<_, _>>()?;
    // Hoisting every scalar cut to scan time is sound because cuts are
    // pure conjuncts: the surviving event set is order-independent, and
    // moving a cut *earlier* only strengthens the protection it gives
    // later defines. Under the contended model the simulated lock cadence
    // is defined per processed event, so cuts stay in the event loop.
    let hoist = df.options.vectorized_filter
        && df.options.contention == ContentionModel::Fixed
        && !scalar_preds.is_empty();

    // Fully-declarative graphs lower to the shared physical IR and run
    // as fused batch kernels; anything opaque stays on the interpreter.
    let compiled = if df.options.compile {
        crate::compile::lower(df, &scalar_preds)
    } else {
        None
    };

    let n_groups = table.row_groups().len();
    let hw = std::thread::available_parallelism().map_or(4, |n| n.get());
    let n_threads = if df.options.n_threads == 0 {
        hw
    } else {
        df.options.n_threads
    }
    .max(1)
    .min(n_groups.max(1));
    plan_span.finish();

    // Zone-map pruning reuses the resolved scalar cuts: they are pure
    // conjuncts applied per event in every execution mode (hoisted,
    // per-event, or compiled into the plan's filters), so a row group
    // whose statistics refute one of them would contribute nothing.
    let prune_preds: &[ScalarPredicate] = if df.options.zone_map_pruning {
        &scalar_preds
    } else {
        &[]
    };
    // With morsel recovery active on the compiled path, the injector
    // moves to the morsel fault surface (exec_par probes the same
    // (fingerprint, group, leaf) coordinates per morsel) and the billing
    // pre-pass here stays fault-free, so ScanStats are byte-identical
    // under injected faults.
    let faults_at_morsels = df.options.morsel_recovery && compiled.is_some();
    let scan_faults = if faults_at_morsels { None } else { mk_faults() };
    let run = nf2_columnar::ScanRequest::new(table, &projection)
        .capability(PushdownCapability::IndividualLeaves)
        .cache(scan_cache)
        .faults(scan_faults)
        .trace(&df.trace)
        .cancel(&df.cancel)
        .prune(prune_preds)
        .run()?;
    let scan = run.stats;
    let skip = run.skip.expect("prune() was supplied");

    if let Some(plan) = &compiled {
        let t0 = Instant::now();
        let workers = df.options.parallel_workers;
        let recovering = df.options.morsel_recovery;
        let (bins, compiled_threads, morsel_rec) = if workers > 1 || recovering {
            let opts = exec_par::ParOptions {
                recovery: recovering.then(exec_par::RecoveryOptions::default),
                ..exec_par::ParOptions::new(workers.max(1))
            };
            let morsel_faults = if recovering { mk_faults() } else { None };
            exec_par::execute_with_faults(
                plan,
                table,
                Some(&skip),
                &df.trace,
                &df.cancel,
                None,
                &opts,
                morsel_faults,
            )
            .map(|(bins, stats)| (bins, stats.workers, stats.recovery))
        } else {
            physical_ir::execute(plan, table, Some(&skip), &df.trace, &df.cancel)
                .map(|bins| (bins, 1, nf2_columnar::MorselRecovery::default()))
        }
        .map_err(|e| match e {
            physical_ir::PirError::Columnar(c) => RdfError::from(c),
            physical_ir::PirError::Cancelled(c) => RdfError::from(c),
            e @ physical_ir::PirError::MorselPanic { .. } => RdfError::Exec(e.to_string()),
        })?;
        let mut h = Histogram::new(df.bookings[0].spec);
        for b in bins {
            h.add_bin_count(b, 1);
        }
        return Ok(RunOutput {
            histograms: vec![h],
            stats: ExecStats {
                wall_seconds: start.elapsed().as_secs_f64(),
                cpu_seconds: t0.elapsed().as_secs_f64(),
                threads_used: compiled_threads,
                row_groups_skipped: scan.groups_pruned,
                scan,
                recovery: morsel_rec,
            },
        });
    }

    let fresh =
        || -> Vec<Histogram> { df.bookings.iter().map(|b| Histogram::new(b.spec)).collect() };

    let global: Mutex<Vec<Histogram>> = Mutex::new(fresh());
    let next_group = AtomicUsize::new(0);
    let cpu_seconds = Mutex::new(0.0f64);
    // Rows of fully processed groups, for cancellation progress reports.
    let rows_done = std::sync::atomic::AtomicU64::new(0);

    let process_group = |group: &RowGroup,
                         group_idx: usize,
                         partial: &mut Vec<Histogram>,
                         events_since_merge: &mut usize|
     -> Result<(), RdfError> {
        // Vectorized pre-pass: surviving rows are computed from the raw
        // typed chunks before the event loop sees anything.
        let sel: Option<SelectionVector> = if hoist {
            let mut filter_span = df
                .trace
                .span_with(obs::Stage::Filter, || format!("group {group_idx}"));
            let s = nf2_columnar::apply_predicates(group, &scalar_preds)?;
            if filter_span.is_enabled() {
                filter_span.add_rows_in(s.n_rows() as u64);
                filter_span.add_rows_out(s.len() as u64);
            }
            filter_span.finish();
            if s.is_empty() {
                return Ok(());
            }
            Some(s)
        } else {
            None
        };
        let decode_span = df
            .trace
            .span_with(obs::Stage::Decode, || format!("group {group_idx}"));
        let base = materialize_base(group, &base_paths)?;
        decode_span.finish();
        let agg_span = df
            .trace
            .span_with(obs::Stage::Aggregate, || format!("group {group_idx}"));
        // Raw chunks for per-event scalar-cut evaluation when not hoisted.
        let sf_chunks: Vec<&ColumnChunk> = if hoist {
            Vec::new()
        } else {
            scalar_preds
                .iter()
                .map(|p| Ok(group.column(&p.leaf)?))
                .collect::<Result<_, RdfError>>()?
        };
        let rows: Box<dyn Iterator<Item = usize>> = match &sel {
            Some(s) => Box::new(s.rows().iter().map(|&r| r as usize)),
            None => Box::new(0..group.n_rows()),
        };
        let mut defined: Vec<Option<ColValue>> = vec![None; df.registry.n_defined];
        for row in rows {
            for d in defined.iter_mut() {
                *d = None;
            }
            let mut passed = true;
            for node in &df.nodes {
                match node {
                    Node::Define { slot, func } => {
                        let v = {
                            let view = EventView {
                                registry: &df.registry,
                                base: &base,
                                row,
                                defined: &defined,
                            };
                            func(&view)
                        };
                        defined[*slot] = Some(v);
                    }
                    Node::Filter { func } => {
                        let view = EventView {
                            registry: &df.registry,
                            base: &base,
                            row,
                            defined: &defined,
                        };
                        if !func(&view) {
                            passed = false;
                            break;
                        }
                    }
                    Node::ScalarFilter { index } => {
                        if hoist {
                            continue; // applied at scan time
                        }
                        if !scalar_preds[*index].matches_row(&sf_chunks[*index].data, row) {
                            passed = false;
                            break;
                        }
                    }
                }
            }
            if passed {
                let view = EventView {
                    registry: &df.registry,
                    base: &base,
                    row,
                    defined: &defined,
                };
                for ((b, col), booking) in partial.iter_mut().zip(&booking_cols).zip(&df.bookings) {
                    match col {
                        ColumnId::Base(i) => match &base[*i] {
                            BaseColumn::Scalar(v) => b.fill(v[row]),
                            BaseColumn::Array(..) => {
                                for &x in view.arr(&booking.column) {
                                    b.fill(x);
                                }
                            }
                        },
                        ColumnId::Defined(i) => match defined[*i].as_ref().expect("defined") {
                            ColValue::F64(x) => b.fill(*x),
                            ColValue::Arr(xs) => {
                                for &x in xs {
                                    b.fill(x);
                                }
                            }
                        },
                    }
                }
            }
            // Contention model: frequent global merges under one lock.
            if let ContentionModel::RootV622 { merge_every } = df.options.contention {
                *events_since_merge += 1;
                if *events_since_merge >= merge_every {
                    let mut g = global.lock();
                    for (dst, src) in g.iter_mut().zip(partial.iter()) {
                        dst.merge(src);
                    }
                    *partial = fresh();
                    *events_since_merge = 0;
                }
            }
        }
        // Freeing the decoded base columns is per-group work; charge it
        // to the aggregate span rather than the gap between spans.
        drop(defined);
        drop(sf_chunks);
        drop(base);
        agg_span.finish();
        Ok(())
    };

    let worker = || -> Result<(), RdfError> {
        let t0 = Instant::now();
        let mut partial = fresh();
        let mut since_merge = 0usize;
        loop {
            let g = next_group.fetch_add(1, Ordering::Relaxed);
            if g >= n_groups {
                break;
            }
            if skip[g] {
                continue;
            }
            let group = &table.row_groups()[g];
            df.cancel
                .check(obs::Stage::Aggregate, rows_done.load(Ordering::Relaxed))?;
            process_group(group, g, &mut partial, &mut since_merge)?;
            rows_done.fetch_add(group.n_rows() as u64, Ordering::Relaxed);
        }
        {
            let mut global = global.lock();
            for (dst, src) in global.iter_mut().zip(partial.iter()) {
                dst.merge(src);
            }
        }
        *cpu_seconds.lock() += t0.elapsed().as_secs_f64();
        Ok(())
    };

    if n_threads <= 1 {
        worker()?;
    } else {
        crossbeam::thread::scope(|s| -> Result<(), RdfError> {
            let mut handles = Vec::new();
            for _ in 0..n_threads {
                handles.push(s.spawn(|_| worker()));
            }
            for h in handles {
                h.join().expect("worker panicked")?;
            }
            Ok(())
        })
        .expect("scope")?;
    }

    let histograms = global.into_inner();
    Ok(RunOutput {
        histograms,
        stats: ExecStats {
            wall_seconds: start.elapsed().as_secs_f64(),
            cpu_seconds: cpu_seconds.into_inner(),
            threads_used: n_threads,
            row_groups_skipped: scan.groups_pruned,
            scan,
            recovery: Default::default(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataframe::Options;
    use hep_model::{generator::build_dataset, DatasetSpec};
    use physics::HistSpec;

    fn test_table() -> (Vec<hep_model::Event>, Arc<Table>) {
        let (events, table) = build_dataset(DatasetSpec {
            n_events: 1_000,
            row_group_size: 128,
            seed: 11,
        });
        (events, Arc::new(table))
    }

    #[test]
    fn resolve_names() {
        let (_, t) = test_table();
        assert_eq!(resolve_column(&t, "event").unwrap().to_string(), "event");
        assert_eq!(resolve_column(&t, "MET_pt").unwrap().to_string(), "MET.pt");
        assert_eq!(
            resolve_column(&t, "Muon_pfRelIso03_all")
                .unwrap()
                .to_string(),
            "Muon.pfRelIso03_all"
        );
        assert!(resolve_column(&t, "Jets_pt").is_err());
        assert!(resolve_column(&t, "Jet_ptt").is_err());
    }

    #[test]
    fn scalar_histogram_matches_reference() {
        let (events, t) = test_table();
        let df = RDataFrame::new(t, Options::default());
        let out = df
            .histo1d(HistSpec::new(100, 0.0, 200.0), "MET_pt")
            .run()
            .unwrap();
        let mut expect = Histogram::new(HistSpec::new(100, 0.0, 200.0));
        for e in &events {
            expect.fill(e.met.pt);
        }
        assert!(out.histogram.counts_equal(&expect));
        assert!(out.stats.scan.bytes_scanned > 0);
    }

    #[test]
    fn array_histogram_fills_all_elements() {
        let (events, t) = test_table();
        let df = RDataFrame::new(t, Options::default());
        let out = df
            .histo1d(HistSpec::new(100, 15.0, 60.0), "Jet_pt")
            .run()
            .unwrap();
        let total: u64 = events.iter().map(|e| e.jets.len() as u64).sum();
        assert_eq!(out.histogram.total(), total);
    }

    #[test]
    fn filter_and_define_chain() {
        let (events, t) = test_table();
        let df = RDataFrame::new(t, Options::default())
            .filter(&["Muon_pt"], |v| v.arr("Muon_pt").len() >= 2)
            .define("lead_mu_pt", &["Muon_pt"], |v| {
                crate::view::ColValue::F64(v.arr("Muon_pt")[0])
            });
        let out = df
            .histo1d(HistSpec::new(50, 0.0, 100.0), "lead_mu_pt")
            .run()
            .unwrap();
        let expect_n = events.iter().filter(|e| e.muons.len() >= 2).count() as u64;
        assert_eq!(out.histogram.total(), expect_n);
    }

    #[test]
    fn scalar_filter_matches_closure_filter() {
        use nf2_columnar::{SelCmp, SelValue};
        let (events, t) = test_table();
        let spec = HistSpec::new(100, 0.0, 200.0);
        let expect = {
            let mut h = Histogram::new(spec);
            for e in events
                .iter()
                .filter(|e| e.met.pt > 25.0 && e.met.sumet >= 300.0)
            {
                h.fill(e.met.pt);
            }
            h
        };
        // Vectorized on and off, serial and parallel — all bit-identical
        // to the opaque-closure formulation.
        let mut stats = Vec::new();
        for vectorized_filter in [true, false] {
            for n_threads in [1, 4] {
                let df = RDataFrame::new(
                    t.clone(),
                    Options {
                        n_threads,
                        vectorized_filter,
                        ..Options::default()
                    },
                )
                .filter_scalar("MET_pt", SelCmp::Gt, SelValue::Float(25.0))
                .filter_scalar("MET_sumet", SelCmp::Ge, SelValue::Int(300));
                let out = df.histo1d(spec, "MET_pt").run().unwrap();
                assert!(
                    out.histogram.counts_equal(&expect),
                    "vf={vectorized_filter} t={n_threads}"
                );
                stats.push(out.stats.scan);
            }
        }
        // Filtering must not perturb scan accounting.
        for s in &stats[1..] {
            assert_eq!(s.bytes_scanned, stats[0].bytes_scanned);
            assert_eq!(s.logical_bytes, stats[0].logical_bytes);
        }
    }

    #[test]
    fn zone_map_pruning_skips_groups_and_preserves_bins() {
        use nf2_columnar::{SelCmp, SelValue};
        // Event ids are monotone across row groups (1000 events, groups
        // of 128): `event < 200` keeps the first two of eight groups.
        let (events, t) = test_table();
        let spec = HistSpec::new(100, 0.0, 200.0);
        let expect = {
            let mut h = Histogram::new(spec);
            for e in events.iter().filter(|e| e.event < 200) {
                h.fill(e.met.pt);
            }
            h
        };
        let mk = |zone_map_pruning, n_threads, compile| {
            RDataFrame::new(
                t.clone(),
                Options {
                    n_threads,
                    compile,
                    zone_map_pruning,
                    ..Options::default()
                },
            )
            .filter_scalar("event", SelCmp::Lt, SelValue::Int(200))
            .histo1d(spec, "MET_pt")
            .run()
            .unwrap()
        };
        let off = mk(false, 1, true);
        assert!(off.histogram.counts_equal(&expect));
        assert_eq!(off.stats.row_groups_skipped, 0);
        for n_threads in [1, 4] {
            for compile in [true, false] {
                let on = mk(true, n_threads, compile);
                assert!(
                    on.histogram.counts_equal(&expect),
                    "t={n_threads} compile={compile}"
                );
                assert_eq!(on.stats.row_groups_skipped, 6);
                assert_eq!(
                    on.stats.scan.bytes_scanned + on.stats.scan.bytes_pruned,
                    off.stats.scan.bytes_scanned,
                    "pruned + scanned bytes must equal the unpruned scan"
                );
            }
        }
    }

    #[test]
    fn scalar_filter_composes_with_defines_and_closures() {
        use nf2_columnar::{SelCmp, SelValue};
        let (events, t) = test_table();
        let df = RDataFrame::new(t, Options::default())
            .filter(&["Muon_pt"], |v| !v.arr("Muon_pt").is_empty())
            .filter_scalar("MET_pt", SelCmp::Lt, SelValue::Float(60.0))
            .define("lead_mu_pt", &["Muon_pt"], |v| {
                crate::view::ColValue::F64(v.arr("Muon_pt")[0])
            });
        let out = df
            .histo1d(HistSpec::new(50, 0.0, 100.0), "lead_mu_pt")
            .run()
            .unwrap();
        let expect = events
            .iter()
            .filter(|e| !e.muons.is_empty() && e.met.pt < 60.0)
            .count() as u64;
        assert_eq!(out.histogram.total(), expect);
    }

    #[test]
    fn scalar_filter_rejects_non_scalar_columns() {
        use nf2_columnar::{SelCmp, SelValue};
        let (_, t) = test_table();
        let out = RDataFrame::new(t, Options::default())
            .filter_scalar("Jet_pt", SelCmp::Gt, SelValue::Float(10.0))
            .histo1d(HistSpec::new(10, 0.0, 1.0), "MET_pt")
            .run();
        assert!(matches!(out, Err(RdfError::NotScalar(_))));
    }

    #[test]
    fn contention_model_produces_same_results() {
        let (_, t) = test_table();
        let mk = |contention| {
            RDataFrame::new(
                t.clone(),
                Options {
                    n_threads: 4,
                    contention,
                    ..Options::default()
                },
            )
            .histo1d(HistSpec::new(100, 0.0, 200.0), "MET_pt")
            .run()
            .unwrap()
        };
        let fixed = mk(ContentionModel::Fixed);
        let contended = mk(ContentionModel::RootV622 { merge_every: 16 });
        assert!(fixed.histogram.counts_equal(&contended.histogram));
    }

    #[test]
    fn multiple_bookings_one_pass() {
        let (events, t) = test_table();
        let df = RDataFrame::new(t, Options::default())
            .also_histo1d(HistSpec::new(100, 0.0, 200.0), "MET_pt")
            .also_histo1d(HistSpec::new(100, 0.0, 2000.0), "MET_sumet");
        let out = df.run_all().unwrap();
        assert_eq!(out.histograms.len(), 2);
        assert_eq!(out.histograms[0].total(), events.len() as u64);
        assert_eq!(out.histograms[1].total(), events.len() as u64);
    }

    #[test]
    fn thread_counts_agree() {
        let (_, t) = test_table();
        let run_with = |n| {
            RDataFrame::new(
                t.clone(),
                Options {
                    n_threads: n,
                    contention: ContentionModel::Fixed,
                    ..Options::default()
                },
            )
            .histo1d(HistSpec::new(100, 15.0, 60.0), "Jet_pt")
            .run()
            .unwrap()
            .histogram
        };
        let h1 = run_with(1);
        let h4 = run_with(4);
        let h16 = run_with(16);
        assert!(h1.counts_equal(&h4));
        assert!(h1.counts_equal(&h16));
    }
}
