//! The low-level "event loop" interface.
//!
//! Before RDataFrame, ROOT offered only this style of API (paper §1: "for
//! a long time, the system only offered a rather low-level interface
//! (called 'event loop')"): the user writes an explicit per-event callback
//! over raw columns and manages their own accumulator state. It is more
//! flexible than the dataframe graph — and requires exactly the "non-
//! trivial user effort" the paper quotes \[16\] — so this module exists both
//! for fidelity and as the escape hatch for analyses the `define`/`filter`
//! vocabulary cannot express.
//!
//! Parallelism mirrors RDataFrame's implicit multithreading: each worker
//! owns a state created by `init`, processes whole row groups, and the
//! per-worker states are merged at the end.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use nested_value::Path;
use nf2_columnar::{ExecStats, Projection, PushdownCapability, Table};
use parking_lot::Mutex;

use crate::dataframe::RdfError;
use crate::exec::resolve_column;
use crate::view::{BaseColumn, ColumnRegistry, EventView};

/// A low-level event loop over a table.
pub struct EventLoop {
    table: Arc<Table>,
    columns: Vec<String>,
    n_threads: usize,
    cancel: obs::CancelToken,
}

impl EventLoop {
    /// Creates an event loop reading the given flat columns
    /// (`Jet_pt`-style names, like RDataFrame).
    pub fn new(table: Arc<Table>, columns: &[&str]) -> EventLoop {
        EventLoop {
            table,
            columns: columns.iter().map(|c| c.to_string()).collect(),
            n_threads: 0,
            cancel: obs::CancelToken::none(),
        }
    }

    /// Sets the worker count (0 = all cores).
    pub fn with_threads(mut self, n: usize) -> EventLoop {
        self.n_threads = n;
        self
    }

    /// Attaches a cooperative cancellation token, checked once per row
    /// group by every worker.
    pub fn with_cancel(mut self, cancel: obs::CancelToken) -> EventLoop {
        self.cancel = cancel;
        self
    }

    /// Runs the loop: `init` creates per-worker state, `per_event` is
    /// called for every event, `merge` folds worker states together.
    pub fn run<S, I, F, M>(
        &self,
        init: I,
        per_event: F,
        merge: M,
    ) -> Result<(S, ExecStats), RdfError>
    where
        S: Send,
        I: Fn() -> S + Send + Sync,
        F: Fn(&mut S, &EventView) + Send + Sync,
        M: Fn(S, S) -> S + Send + Sync,
    {
        let start = Instant::now();
        let table = &self.table;
        let mut registry = ColumnRegistry::default();
        for c in &self.columns {
            registry.base(c);
        }
        let paths: Vec<Path> = registry
            .base_names
            .iter()
            .map(|n| resolve_column(table, n))
            .collect::<Result<_, _>>()?;
        let projection = Projection::of(paths.iter().map(|p| p.to_string()));
        let scan = nf2_columnar::ScanRequest::new(table, &projection)
            .capability(PushdownCapability::IndividualLeaves)
            .run()?
            .stats;

        let n_groups = table.row_groups().len();
        let hw = std::thread::available_parallelism().map_or(4, |n| n.get());
        let n_threads = if self.n_threads == 0 {
            hw
        } else {
            self.n_threads
        }
        .max(1)
        .min(n_groups.max(1));

        let next = AtomicUsize::new(0);
        let states: Mutex<Vec<S>> = Mutex::new(Vec::new());
        let first_err: Mutex<Option<RdfError>> = Mutex::new(None);
        let cpu = Mutex::new(0.0f64);
        let rows_done = std::sync::atomic::AtomicU64::new(0);

        let worker = || {
            let t0 = Instant::now();
            let mut state = init();
            loop {
                let g = next.fetch_add(1, Ordering::Relaxed);
                if g >= n_groups {
                    break;
                }
                let group = &table.row_groups()[g];
                if let Err(c) = self.cancel.check(
                    obs::Stage::Aggregate,
                    rows_done.load(std::sync::atomic::Ordering::Relaxed),
                ) {
                    first_err.lock().get_or_insert(RdfError::from(c));
                    break;
                }
                let base: Result<Vec<BaseColumn>, RdfError> =
                    crate::exec::materialize_base(group, &paths);
                let base = match base {
                    Ok(b) => b,
                    Err(e) => {
                        first_err.lock().get_or_insert(e);
                        break;
                    }
                };
                let empty_defined: Vec<Option<crate::view::ColValue>> = Vec::new();
                for row in 0..group.n_rows() {
                    let view = EventView {
                        registry: &registry,
                        base: &base,
                        row,
                        defined: &empty_defined,
                    };
                    per_event(&mut state, &view);
                }
                rows_done.fetch_add(group.n_rows() as u64, std::sync::atomic::Ordering::Relaxed);
            }
            states.lock().push(state);
            *cpu.lock() += t0.elapsed().as_secs_f64();
        };

        if n_threads <= 1 {
            worker();
        } else {
            crossbeam::thread::scope(|s| {
                for _ in 0..n_threads {
                    s.spawn(|_| worker());
                }
            })
            .expect("scope");
        }
        if let Some(e) = first_err.into_inner() {
            return Err(e);
        }
        let mut states = states.into_inner().into_iter();
        let first = states.next().expect("at least one worker state");
        let merged = states.fold(first, &merge);
        Ok((
            merged,
            ExecStats {
                wall_seconds: start.elapsed().as_secs_f64(),
                cpu_seconds: cpu.into_inner(),
                scan,
                threads_used: n_threads,
                row_groups_skipped: 0,
                recovery: Default::default(),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataframe::{Options, RDataFrame};
    use hep_model::generator::build_dataset;
    use hep_model::DatasetSpec;
    use physics::{HistSpec, Histogram};

    fn table() -> (Vec<hep_model::Event>, Arc<Table>) {
        let (e, t) = build_dataset(DatasetSpec {
            n_events: 2_000,
            row_group_size: 256,
            seed: 1997,
        });
        (e, Arc::new(t))
    }

    #[test]
    fn event_loop_matches_dataframe() {
        let (_, t) = table();
        let spec = HistSpec::new(100, 0.0, 200.0);
        let (hist, stats) = EventLoop::new(t.clone(), &["MET_pt"])
            .run(
                || Histogram::new(spec),
                |h, v| h.fill(v.f64("MET_pt")),
                |mut a, b| {
                    a.merge(&b);
                    a
                },
            )
            .unwrap();
        let df_out = RDataFrame::new(t, Options::default())
            .histo1d(spec, "MET_pt")
            .run()
            .unwrap();
        assert!(hist.counts_equal(&df_out.histogram));
        assert_eq!(stats.scan.bytes_scanned, df_out.stats.scan.bytes_scanned);
    }

    #[test]
    fn event_loop_custom_state() {
        let (events, t) = table();
        // Arbitrary accumulator the dataframe API cannot express directly:
        // (max jet pt, total jets, events with >= 1 muon).
        let (state, _) = EventLoop::new(t, &["Jet_pt", "Muon_pt"])
            .run(
                || (0.0f64, 0u64, 0u64),
                |s, v| {
                    let jets = v.arr("Jet_pt");
                    s.0 = jets.iter().copied().fold(s.0, f64::max);
                    s.1 += jets.len() as u64;
                    s.2 += (!v.arr("Muon_pt").is_empty()) as u64;
                },
                |a, b| (a.0.max(b.0), a.1 + b.1, a.2 + b.2),
            )
            .unwrap();
        let expect_jets: u64 = events.iter().map(|e| e.jets.len() as u64).sum();
        let expect_mu = events.iter().filter(|e| !e.muons.is_empty()).count() as u64;
        let expect_max = events
            .iter()
            .flat_map(|e| e.jets.iter().map(|j| j.pt))
            .fold(0.0, f64::max);
        assert_eq!(state.1, expect_jets);
        assert_eq!(state.2, expect_mu);
        assert_eq!(state.0, expect_max);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let (_, t) = table();
        let spec = HistSpec::new(50, 15.0, 60.0);
        let run = |threads| {
            EventLoop::new(t.clone(), &["Jet_pt"])
                .with_threads(threads)
                .run(
                    || Histogram::new(spec),
                    |h, v| {
                        for &pt in v.arr("Jet_pt") {
                            h.fill(pt);
                        }
                    },
                    |mut a, b| {
                        a.merge(&b);
                        a
                    },
                )
                .unwrap()
                .0
        };
        assert!(run(1).counts_equal(&run(8)));
    }

    #[test]
    fn unknown_column_errors() {
        let (_, t) = table();
        let r = EventLoop::new(t, &["Nope_pt"]).run(|| (), |_, _| (), |a, _| a);
        assert!(r.is_err());
    }
}
