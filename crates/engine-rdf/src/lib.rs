//! # engine-rdf
//!
//! An RDataFrame-style dataframe engine over the NF² columnar substrate —
//! the workspace's analog of ROOT 6.22's `RDataFrame` interface, the
//! baseline system of the paper.
//!
//! ## Programming model
//!
//! Like the original, the engine exposes the **columnar storage layout**
//! directly to user code (paper §3.7: "they make the columnar storage format
//! part of the programming model"): users reference flat column names such
//! as `Jet_pt` (an `RVec`-like slice per event) rather than nested
//! structures, and chain lazy transformations:
//!
//! ```
//! use engine_rdf::{RDataFrame, Options, ColValue};
//! use physics::HistSpec;
//! # let (events, table) = hep_model::generator::build_dataset(
//! #     hep_model::DatasetSpec { n_events: 100, row_group_size: 50, seed: 1 });
//! let df = RDataFrame::new(std::sync::Arc::new(table), Options::default());
//! let hist = df
//!     .filter(&["Jet_pt"], |v| v.arr("Jet_pt").len() >= 2)
//!     .define("leading_pt", &["Jet_pt"], |v| {
//!         ColValue::F64(v.arr("Jet_pt").first().copied().unwrap_or(0.0))
//!     })
//!     .histo1d(HistSpec::new(100, 0.0, 200.0), "leading_pt");
//! let out = hist.run().unwrap();
//! assert!(out.histogram.total() > 0);
//! ```
//!
//! ## Execution model
//!
//! Booked actions execute in a single pass over the table, parallelized
//! **across row groups** with `crossbeam` scoped threads (implicit
//! multithreading, like `ROOT::EnableImplicitMT`). Defines are evaluated
//! lazily per event and cached; filters cut the event short.
//!
//! ## The contention model
//!
//! The paper observes (§4.1, \[4\], \[28\]) that RDataFrame *degrades* beyond a
//! certain core count due to lock contention on large multi-core machines.
//! [`ContentionModel`] reproduces this as a documented simulation: in
//! `RootV622` mode every worker merges its partial result into a shared
//! mutex-protected accumulator every few events (as ROOT's histogram fill
//! path did); in `Fixed` mode workers merge once per row group. The
//! `ablation_contention` bench regenerates the scalability cliff.

mod compile;
pub mod dataframe;
pub mod eventloop;
pub mod exec;
pub mod view;

pub use dataframe::{BookedHisto, Options, RDataFrame, RdfError};
pub use eventloop::EventLoop;
pub use exec::{ContentionModel, RunOutput};
pub use nf2_columnar::{SelCmp, SelValue};
pub use view::{ColValue, EventView};
