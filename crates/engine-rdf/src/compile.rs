//! Lowering fully-declarative dataframe graphs to the shared physical IR.
//!
//! A graph qualifies when the engine can see *all* of its structure:
//! every node is a [`Node::ScalarFilter`] (closure `define`/`filter`
//! nodes are opaque), there is exactly one booking, and the booking
//! targets a base column of the table. Anything else returns `None` and
//! runs on the interpreter — fallback is always sound because the IR is
//! only used when it provably computes the same fills.
//!
//! The contended merge model ([`ContentionModel::RootV622`]) also
//! disqualifies a graph: its simulated lock cadence is defined per
//! interpreted event, which is exactly the behaviour the study measures.

use nf2_columnar::ScalarPredicate;
use physical_ir::{ComputeNode, FilterNode, PhysPlan};

use crate::dataframe::{Node, RDataFrame};
use crate::exec::{resolve_column, ContentionModel};

/// Lowers a dataframe graph to a physical plan, or `None` when any part
/// of it is opaque to the engine. `scalar_preds` are the run's already
/// resolved declarative cuts, in node order.
pub(crate) fn lower(df: &RDataFrame, scalar_preds: &[ScalarPredicate]) -> Option<PhysPlan> {
    if df.options.contention != ContentionModel::Fixed {
        return None;
    }
    if df.bookings.len() != 1 {
        return None;
    }
    if df
        .nodes
        .iter()
        .any(|n| !matches!(n, Node::ScalarFilter { .. }))
    {
        return None;
    }
    let booking = &df.bookings[0];
    let leaf = resolve_column(&df.table, &booking.column).ok()?;
    let repeated = df.table.schema().leaf(&leaf)?.repeated;
    let compute = if repeated {
        ComputeNode::ListFill { leaf, elem: None }
    } else {
        ComputeNode::ScalarFill { leaf }
    };
    Some(PhysPlan {
        filters: scalar_preds
            .iter()
            .map(|p| FilterNode::Scalar(p.clone()))
            .collect(),
        compute,
        spec: booking.spec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataframe::Options;
    use crate::view::ColValue;
    use hep_model::{generator::build_dataset, DatasetSpec};
    use nf2_columnar::{SelCmp, SelValue};
    use physics::HistSpec;
    use std::sync::Arc;

    fn table() -> Arc<nf2_columnar::Table> {
        Arc::new(
            build_dataset(DatasetSpec {
                n_events: 200,
                row_group_size: 64,
                seed: 7,
            })
            .1,
        )
    }

    fn preds(df: &RDataFrame) -> Vec<ScalarPredicate> {
        df.scalar_filters
            .iter()
            .map(|(name, cmp, value)| ScalarPredicate {
                leaf: resolve_column(&df.table, name).unwrap(),
                cmp: *cmp,
                value: *value,
            })
            .collect()
    }

    #[test]
    fn declarative_graphs_lower() {
        let df = RDataFrame::new(table(), Options::default())
            .filter_scalar("MET_pt", SelCmp::Gt, SelValue::Float(25.0))
            .histo1d(HistSpec::new(100, 0.0, 200.0), "MET_pt")
            .df;
        let plan = lower(&df, &preds(&df)).expect("declarative graph must lower");
        assert_eq!(plan.filters.len(), 1);
        assert!(matches!(plan.compute, ComputeNode::ScalarFill { .. }));
        // Repeated booking column → per-element fill.
        let df = RDataFrame::new(table(), Options::default())
            .histo1d(HistSpec::new(100, 15.0, 60.0), "Jet_pt")
            .df;
        let plan = lower(&df, &[]).unwrap();
        assert!(matches!(
            plan.compute,
            ComputeNode::ListFill { elem: None, .. }
        ));
    }

    #[test]
    fn opaque_nodes_fall_back() {
        let closure = RDataFrame::new(table(), Options::default())
            .filter(&["MET_pt"], |v| v.f64("MET_pt") > 25.0)
            .histo1d(HistSpec::new(100, 0.0, 200.0), "MET_pt")
            .df;
        assert!(lower(&closure, &[]).is_none());
        let defined = RDataFrame::new(table(), Options::default())
            .define("x", &["MET_pt"], |v| ColValue::F64(v.f64("MET_pt")))
            .histo1d(HistSpec::new(100, 0.0, 200.0), "x")
            .df;
        assert!(lower(&defined, &[]).is_none());
    }

    #[test]
    fn contended_model_and_multi_booking_fall_back() {
        let contended = RDataFrame::new(
            table(),
            Options {
                contention: ContentionModel::RootV622 { merge_every: 64 },
                ..Options::default()
            },
        )
        .histo1d(HistSpec::new(100, 0.0, 200.0), "MET_pt")
        .df;
        assert!(lower(&contended, &[]).is_none());
        let multi = RDataFrame::new(table(), Options::default())
            .also_histo1d(HistSpec::new(100, 0.0, 200.0), "MET_pt")
            .also_histo1d(HistSpec::new(100, 0.0, 2000.0), "MET_sumet");
        assert!(lower(&multi, &[]).is_none());
    }
}
