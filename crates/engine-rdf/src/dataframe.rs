//! The lazy dataframe graph: `define`/`filter` chains and booked actions.

use std::fmt;
use std::sync::Arc;

use nf2_columnar::{SelCmp, SelValue, Table};
use physics::HistSpec;

use crate::exec::{self, ContentionModel, RunOutput};
use crate::view::{ColValue, ColumnRegistry, EventView};

/// Errors from graph construction or execution.
#[derive(Debug)]
pub enum RdfError {
    /// A column name could not be mapped to a leaf of the table schema.
    UnknownColumn(String),
    /// A `filter_scalar` column is repeated or boolean — only per-event
    /// numeric scalars can be compared against a literal.
    NotScalar(String),
    /// Substrate error (projection, I/O).
    Columnar(nf2_columnar::ColumnarError),
    /// Compiled execution failed outside the substrate — e.g. a morsel
    /// whose kernel panicked persistently through the parallel
    /// executor's recovery budget.
    Exec(String),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            RdfError::NotScalar(c) => {
                write!(f, "filter_scalar on non-scalar column: {c}")
            }
            RdfError::Columnar(e) => write!(f, "columnar error: {e}"),
            RdfError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for RdfError {}

impl RdfError {
    /// The typed scan fault, when this error is one.
    pub fn scan_error(&self) -> Option<&nf2_columnar::ScanError> {
        match self {
            RdfError::Columnar(e) => e.scan_error(),
            _ => None,
        }
    }

    /// The typed cancellation payload, when this error is one.
    pub fn cancelled(&self) -> Option<&obs::Cancelled> {
        match self {
            RdfError::Columnar(e) => e.cancelled(),
            _ => None,
        }
    }
}

impl From<obs::Cancelled> for RdfError {
    fn from(c: obs::Cancelled) -> Self {
        RdfError::Columnar(nf2_columnar::ColumnarError::Cancelled(c))
    }
}

impl From<nf2_columnar::ColumnarError> for RdfError {
    fn from(e: nf2_columnar::ColumnarError) -> Self {
        RdfError::Columnar(e)
    }
}

/// Execution options.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Worker threads (row-group granularity). 0 ⇒ all available cores.
    pub n_threads: usize,
    /// Result-merging behaviour; see [`ContentionModel`].
    pub contention: ContentionModel,
    /// Evaluate [`RDataFrame::filter_scalar`] cuts with vectorized kernels
    /// before the event loop (late materialization). Purely an
    /// execution-speed knob: scan accounting is defined by the declared
    /// columns, and results are bit-identical either way. Ignored (falls
    /// back to per-event evaluation) under [`ContentionModel::RootV622`],
    /// whose simulated lock cadence is defined per *processed* event.
    pub vectorized_filter: bool,
    /// Zone-map row-group pruning: [`RDataFrame::filter_scalar`] cuts are
    /// also evaluated against per-chunk min/max statistics at scan time,
    /// skipping row groups that provably contain no passing events
    /// (billed separately as `bytes_pruned`). Results are bin-identical
    /// either way; applies to interpreted and compiled execution alike
    /// and, unlike `vectorized_filter`, also under
    /// [`ContentionModel::RootV622`] — a pruned group is never read, so
    /// its events never reach the simulated lock in any model.
    pub zone_map_pruning: bool,
    /// Compiled execution: graphs recognized by the lowering pass (all
    /// nodes declarative, one booking on a base column, contention-free
    /// merging) run as fused batch kernels over the shared physical IR.
    /// Unrecognized graphs always fall back to the interpreter, so this
    /// is purely an execution-speed knob — results are bin-identical.
    pub compile: bool,
    /// Morsel-driven intra-query parallelism for compiled execution:
    /// `> 1` runs compiled plans through `exec_par` with this many
    /// workers (row groups are the morsels); output is bin-identical at
    /// any value and scan accounting is unaffected. `0`/`1` keeps the
    /// serial compiled executor; ignored when the graph does not lower.
    pub parallel_workers: usize,
    /// Morsel-level fault recovery for compiled execution (default off):
    /// transient scan faults are retried per morsel, panicking morsels
    /// are quarantined and re-executed, dead workers' deques are
    /// reassigned and the pool degrades down to a serial fallback
    /// instead of failing the query (see `exec_par`). When active the
    /// fault injector is routed to the morsel fault surface instead of
    /// the scan pre-pass, keeping billing fault-free and bin-identical.
    /// Ignored when the graph does not lower to the compiled path.
    pub morsel_recovery: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            n_threads: 0,
            contention: ContentionModel::Fixed,
            vectorized_filter: true,
            zone_map_pruning: true,
            compile: true,
            parallel_workers: 0,
            morsel_recovery: false,
        }
    }
}

type DefineFn = Arc<dyn Fn(&EventView) -> ColValue + Send + Sync>;
type FilterFn = Arc<dyn Fn(&EventView) -> bool + Send + Sync>;

#[derive(Clone)]
pub(crate) enum Node {
    Define {
        slot: usize,
        func: DefineFn,
    },
    Filter {
        func: FilterFn,
    },
    /// A declarative `column cmp literal` cut, indexing into the run's
    /// resolved scalar-predicate list.
    ScalarFilter {
        index: usize,
    },
}

/// A booking: one histogram to fill at the end of the chain.
#[derive(Clone)]
pub(crate) struct Booking {
    pub spec: HistSpec,
    pub column: String,
}

/// A lazily built dataframe computation over one table.
///
/// `define`/`filter` return a new dataframe (builder style); `histo1d` books
/// an action and returns a [`BookedHisto`] whose `run` triggers the event
/// loop. Use [`RDataFrame::run_all`] to execute several bookings in a single
/// pass (like ROOT's shared event loop for multiple results).
#[derive(Clone)]
pub struct RDataFrame {
    pub(crate) table: Arc<Table>,
    pub(crate) options: Options,
    pub(crate) registry: ColumnRegistry,
    pub(crate) nodes: Vec<Node>,
    /// `(column, cmp, literal)` per [`Node::ScalarFilter`], in index order.
    pub(crate) scalar_filters: Vec<(String, SelCmp, SelValue)>,
    pub(crate) bookings: Vec<Booking>,
    /// Optional buffer pool fronting physical chunk reads (accounting
    /// only; results and billing bytes are unchanged).
    pub(crate) chunk_cache: Option<Arc<nf2_columnar::ChunkCache>>,
    /// Optional chaos-layer fault injector on physical chunk reads.
    pub(crate) fault_injector: Option<Arc<nf2_columnar::FaultInjector>>,
    /// Tracing context; the default (disabled) context records nothing.
    pub(crate) trace: obs::TraceCtx,
    /// Cooperative cancellation token, checked at row-group granularity
    /// by the event loop; the default (disabled) token never trips.
    pub(crate) cancel: obs::CancelToken,
}

impl RDataFrame {
    /// Creates a dataframe over a table.
    pub fn new(table: Arc<Table>, options: Options) -> RDataFrame {
        RDataFrame {
            table,
            options,
            registry: ColumnRegistry::default(),
            nodes: Vec::new(),
            scalar_filters: Vec::new(),
            bookings: Vec::new(),
            chunk_cache: None,
            fault_injector: None,
            trace: obs::TraceCtx::disabled(),
            cancel: obs::CancelToken::none(),
        }
    }

    /// Attaches a shared buffer pool in front of physical chunk reads.
    pub fn set_chunk_cache(&mut self, cache: Option<Arc<nf2_columnar::ChunkCache>>) {
        self.chunk_cache = cache;
    }

    /// Attaches a chaos-layer fault injector to physical chunk reads.
    /// `None` (the default) leaves the scan path byte-identical to the
    /// fault-free engine.
    pub fn set_fault_injector(&mut self, injector: Option<Arc<nf2_columnar::FaultInjector>>) {
        self.fault_injector = injector;
    }

    /// Attaches a tracing context: the event loop records stage spans
    /// into it. The default (disabled) context makes instrumentation a
    /// near-no-op.
    pub fn set_trace(&mut self, trace: obs::TraceCtx) {
        self.trace = trace;
    }

    /// Attaches a cooperative cancellation token, checked at row-group
    /// granularity: the event loop aborts with a typed cancellation
    /// (surfaced as [`RdfError::Columnar`] wrapping
    /// [`nf2_columnar::ColumnarError::Cancelled`]) once it trips. The
    /// default (disabled) token costs a single branch per group.
    pub fn set_cancel(&mut self, cancel: obs::CancelToken) {
        self.cancel = cancel;
    }

    fn declare_deps(&mut self, deps: &[&str]) {
        for d in deps {
            if !self.registry.by_name.contains_key(*d) {
                self.registry.base(d);
            }
        }
    }

    /// Adds a derived per-event column. `deps` must list every column the
    /// callback reads (like RDataFrame's column list parameter); base
    /// columns are resolved against the table schema at run time.
    pub fn define<F>(mut self, name: &str, deps: &[&str], func: F) -> RDataFrame
    where
        F: Fn(&EventView) -> ColValue + Send + Sync + 'static,
    {
        self.declare_deps(deps);
        let slot = match self.registry.define(name) {
            crate::view::ColumnId::Defined(i) => i,
            crate::view::ColumnId::Base(_) => unreachable!(),
        };
        self.nodes.push(Node::Define {
            slot,
            func: Arc::new(func),
        });
        self
    }

    /// Adds an event filter; subsequent defines/bookings only see passing
    /// events.
    pub fn filter<F>(mut self, deps: &[&str], func: F) -> RDataFrame
    where
        F: Fn(&EventView) -> bool + Send + Sync + 'static,
    {
        self.declare_deps(deps);
        self.nodes.push(Node::Filter {
            func: Arc::new(func),
        });
        self
    }

    /// Adds a declarative scalar cut `column cmp literal` on a non-repeated
    /// numeric base column (e.g. `MET_pt`). Unlike [`RDataFrame::filter`],
    /// the engine sees the comparison's structure, so with
    /// [`Options::vectorized_filter`] it evaluates the cut with typed
    /// kernels over the raw column chunks *before* any event is
    /// materialized. Semantics are identical to the closure form either
    /// way.
    pub fn filter_scalar(mut self, column: &str, cmp: SelCmp, value: SelValue) -> RDataFrame {
        self.declare_deps(&[column]);
        let index = self.scalar_filters.len();
        self.scalar_filters.push((column.to_string(), cmp, value));
        self.nodes.push(Node::ScalarFilter { index });
        self
    }

    /// Books a 1-D histogram of `column` (scalar: one fill per event;
    /// array: one fill per element) and returns a lazily runnable handle.
    pub fn histo1d(mut self, spec: HistSpec, column: &str) -> BookedHisto {
        self.declare_deps(&[column]);
        self.bookings.push(Booking {
            spec,
            column: column.to_string(),
        });
        let index = self.bookings.len() - 1;
        BookedHisto { df: self, index }
    }

    /// Books an additional histogram on an existing booking's chain
    /// (the (Q6a)/(Q6b) pattern: one event loop, two plots).
    pub fn also_histo1d(mut self, spec: HistSpec, column: &str) -> RDataFrame {
        self.declare_deps(&[column]);
        self.bookings.push(Booking {
            spec,
            column: column.to_string(),
        });
        self
    }

    /// Runs the event loop and returns every booked histogram in booking
    /// order.
    pub fn run_all(&self) -> Result<RunOutput, RdfError> {
        exec::run(self)
    }
}

/// Handle to a single booked histogram.
pub struct BookedHisto {
    pub(crate) df: RDataFrame,
    pub(crate) index: usize,
}

impl BookedHisto {
    /// Executes the event loop and returns this booking's result (plus
    /// run-wide stats).
    pub fn run(&self) -> Result<SingleOutput, RdfError> {
        let out = exec::run(&self.df)?;
        let histogram = out.histograms[self.index].clone();
        Ok(SingleOutput {
            histogram,
            stats: out.stats,
        })
    }

    /// Access to the underlying dataframe (e.g. to book more results).
    pub fn dataframe(&self) -> &RDataFrame {
        &self.df
    }
}

/// Result of running a single booking.
pub struct SingleOutput {
    /// The filled histogram.
    pub histogram: physics::Histogram,
    /// Execution statistics for the whole event loop.
    pub stats: nf2_columnar::ExecStats,
}
