//! Per-event column access for user callbacks.

use std::collections::HashMap;
use std::sync::Arc;

/// A value produced by a `Define` callback: a per-event scalar or a
/// per-event variable-length vector (ROOT's `RVec` analog).
#[derive(Clone, Debug, PartialEq)]
pub enum ColValue {
    /// Scalar per event.
    F64(f64),
    /// Variable-length numeric vector per event.
    Arr(Vec<f64>),
}

impl ColValue {
    /// Scalar accessor; panics on arrays (programming error in the query).
    pub fn f64(&self) -> f64 {
        match self {
            ColValue::F64(x) => *x,
            ColValue::Arr(_) => panic!("expected scalar column, found array"),
        }
    }

    /// Array accessor; panics on scalars.
    pub fn arr(&self) -> &[f64] {
        match self {
            ColValue::Arr(v) => v,
            ColValue::F64(_) => panic!("expected array column, found scalar"),
        }
    }
}

/// Materialized base column for one row group, widened to `f64`.
#[derive(Clone, Debug)]
pub(crate) enum BaseColumn {
    /// One value per event.
    Scalar(Arc<Vec<f64>>),
    /// Flattened values plus per-event offsets.
    Array(Arc<Vec<f64>>, Arc<Vec<u32>>),
}

/// Resolved column identifiers: base columns index into the row-group
/// buffers, defined columns into the per-event cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ColumnId {
    Base(usize),
    Defined(usize),
}

/// Name → id map shared by the whole graph.
#[derive(Clone, Debug, Default)]
pub(crate) struct ColumnRegistry {
    pub by_name: HashMap<String, ColumnId>,
    /// Base column names in id order (for projection resolution).
    pub base_names: Vec<String>,
    /// Number of defined columns.
    pub n_defined: usize,
}

impl ColumnRegistry {
    pub fn base(&mut self, name: &str) -> ColumnId {
        if let Some(id) = self.by_name.get(name) {
            return *id;
        }
        let id = ColumnId::Base(self.base_names.len());
        self.base_names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    pub fn define(&mut self, name: &str) -> ColumnId {
        let id = ColumnId::Defined(self.n_defined);
        self.n_defined += 1;
        self.by_name.insert(name.to_string(), id);
        id
    }
}

/// The view user callbacks receive: access to base columns of the current
/// event and to previously defined columns.
pub struct EventView<'a> {
    pub(crate) registry: &'a ColumnRegistry,
    pub(crate) base: &'a [BaseColumn],
    pub(crate) row: usize,
    pub(crate) defined: &'a [Option<ColValue>],
}

impl<'a> EventView<'a> {
    fn id(&self, name: &str) -> ColumnId {
        *self
            .registry
            .by_name
            .get(name)
            .unwrap_or_else(|| panic!("column {name} not declared as a dependency"))
    }

    /// Scalar column value for the current event.
    pub fn f64(&self, name: &str) -> f64 {
        match self.id(name) {
            ColumnId::Base(i) => match &self.base[i] {
                BaseColumn::Scalar(v) => v[self.row],
                BaseColumn::Array(..) => panic!("column {name} is an array; use arr()"),
            },
            ColumnId::Defined(i) => self.defined[i].as_ref().expect("defined upstream").f64(),
        }
    }

    /// Array column contents for the current event (zero-copy for base
    /// columns).
    pub fn arr(&self, name: &str) -> &[f64] {
        match self.id(name) {
            ColumnId::Base(i) => match &self.base[i] {
                BaseColumn::Array(v, off) => &v[off[self.row] as usize..off[self.row + 1] as usize],
                BaseColumn::Scalar(_) => panic!("column {name} is a scalar; use f64()"),
            },
            ColumnId::Defined(i) => self.defined[i].as_ref().expect("defined upstream").arr(),
        }
    }

    /// Generic access returning a [`ColValue`] (copies arrays).
    pub fn get(&self, name: &str) -> ColValue {
        match self.id(name) {
            ColumnId::Base(i) => match &self.base[i] {
                BaseColumn::Scalar(v) => ColValue::F64(v[self.row]),
                BaseColumn::Array(v, off) => {
                    ColValue::Arr(v[off[self.row] as usize..off[self.row + 1] as usize].to_vec())
                }
            },
            ColumnId::Defined(i) => self.defined[i].as_ref().expect("defined upstream").clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_assigns_stable_ids() {
        let mut r = ColumnRegistry::default();
        let a = r.base("Jet_pt");
        let b = r.base("Jet_pt");
        assert_eq!(a, b);
        let c = r.base("MET_pt");
        assert_ne!(a, c);
        let d = r.define("mass");
        assert_eq!(d, ColumnId::Defined(0));
        assert_eq!(
            r.base_names,
            vec!["Jet_pt".to_string(), "MET_pt".to_string()]
        );
    }

    #[test]
    fn view_reads_base_and_defined() {
        let mut r = ColumnRegistry::default();
        r.base("met");
        r.base("jets");
        r.define("x");
        let base = vec![
            BaseColumn::Scalar(Arc::new(vec![1.0, 2.0])),
            BaseColumn::Array(Arc::new(vec![10.0, 20.0, 30.0]), Arc::new(vec![0, 2, 3])),
        ];
        let defined = vec![Some(ColValue::F64(42.0))];
        let v = EventView {
            registry: &r,
            base: &base,
            row: 0,
            defined: &defined,
        };
        assert_eq!(v.f64("met"), 1.0);
        assert_eq!(v.arr("jets"), &[10.0, 20.0]);
        assert_eq!(v.f64("x"), 42.0);
        let v1 = EventView { row: 1, ..v };
        assert_eq!(v1.f64("met"), 2.0);
        assert_eq!(v1.arr("jets"), &[30.0]);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_column_panics() {
        let r = ColumnRegistry::default();
        let v = EventView {
            registry: &r,
            base: &[],
            row: 0,
            defined: &[],
        };
        v.f64("nope");
    }
}
