//! Ablation benchmarks for the design choices called out in DESIGN.md §5:
//! struct-projection pushdown, row-group size, combination enumeration,
//! and the RDataFrame merge-lock contention model.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use engine_rdf::{ContentionModel, Options, RDataFrame};
use nf2_columnar::{Projection, PushdownCapability};
use physics::HistSpec;

fn dataset(row_group: usize) -> (Vec<hep_model::Event>, Arc<nf2_columnar::Table>) {
    let (e, t) = hep_model::generator::build_dataset(hep_model::DatasetSpec {
        n_events: 16_384,
        row_group_size: row_group,
        seed: 0xAB1A,
    });
    (e, Arc::new(t))
}

/// Reproduces the Fig-4b mechanism: reading one field of a struct under
/// the three pushdown capabilities.
fn ablation_pushdown(c: &mut Criterion) {
    let (_, t) = dataset(2_048);
    let proj = Projection::of(["Jet.pt", "MET.pt"]);
    let mut group = c.benchmark_group("ablation/pushdown");
    group.sample_size(10);
    for (label, cap) in [
        ("individual_leaves", PushdownCapability::IndividualLeaves),
        ("whole_structs", PushdownCapability::WholeStructs),
        ("none", PushdownCapability::None),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let leaves = proj.resolve(t.schema(), cap).unwrap();
                let mut n = 0usize;
                for g in t.row_groups() {
                    n += g.read_rows(t.schema(), &leaves).unwrap().len();
                }
                black_box(n)
            })
        });
    }
    group.finish();
}

/// Row-group size drives both scan granularity and the Fig-2 plateau.
fn ablation_rowgroup(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/rowgroup_size");
    group.sample_size(10);
    for rg in [256usize, 2_048, 16_384] {
        let (_, t) = dataset(rg);
        group.bench_function(format!("rg{rg}"), |b| {
            b.iter(|| {
                let df = RDataFrame::new(t.clone(), Options::default())
                    .histo1d(HistSpec::new(100, 0.0, 200.0), "MET_pt");
                black_box(df.run().unwrap().histogram.total())
            })
        });
    }
    group.finish();
}

/// Early-pruning ablation for Q6's combination enumeration: the naive
/// enumeration (what SQL engines must do) vs reusing per-jet four-vectors
/// (what RDataFrame-style code does via the reference kernel).
fn ablation_combinations(c: &mut Criterion) {
    let (events, _) = dataset(2_048);
    let mut group = c.benchmark_group("ablation/trijet");
    group.sample_size(10);
    group.bench_function("kernel_cached_vectors", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for e in &events {
                if let Some((pt, _, _)) = hepbench_core::reference::best_trijet(&e.jets) {
                    acc += pt;
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("naive_recompute_vectors", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for e in &events {
                let n = e.jets.len();
                let mut best: Option<(f64, f64)> = None;
                for i in 0..n {
                    for j in (i + 1)..n {
                        for k in (j + 1)..n {
                            // Recompute all three four-vectors per combo —
                            // the work pattern of the flattened SQL plan.
                            let v = |j: &hep_model::Jet| {
                                physics::FourMomentum::from_pt_eta_phi_m(j.pt, j.eta, j.phi, j.mass)
                            };
                            let sum = v(&e.jets[i]) + v(&e.jets[j]) + v(&e.jets[k]);
                            let dist = (sum.mass() - 172.5).abs();
                            if best.is_none_or(|(d, _)| dist < d) {
                                best = Some((dist, sum.pt()));
                            }
                        }
                    }
                }
                if let Some((_, pt)) = best {
                    acc += pt;
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// The contention model behind the RDataFrame scalability cliff.
fn ablation_contention(c: &mut Criterion) {
    let (_, t) = dataset(512);
    let mut group = c.benchmark_group("ablation/contention");
    group.sample_size(10);
    for (label, contention) in [
        ("fixed", ContentionModel::Fixed),
        (
            "rootv622_merge64",
            ContentionModel::RootV622 { merge_every: 64 },
        ),
        (
            "rootv622_merge8",
            ContentionModel::RootV622 { merge_every: 8 },
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let df = RDataFrame::new(
                    t.clone(),
                    Options {
                        n_threads: 0,
                        contention,
                        ..Options::default()
                    },
                )
                .histo1d(HistSpec::new(100, 0.0, 200.0), "MET_pt");
                black_box(df.run().unwrap().histogram.total())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_pushdown,
    ablation_rowgroup,
    ablation_combinations,
    ablation_contention,
    ablation_zonemap
);
criterion_main!(benches);

/// Zone-map pruning ablation: a selective scalar filter with statistics-
/// based row-group skipping on vs off.
fn ablation_zonemap(c: &mut Criterion) {
    use engine_sql::{Dialect, SqlEngine, SqlOptions};
    let (_, t) = dataset(512);
    let sql = "SELECT COUNT(*) FROM events WHERE event > 16000";
    let mut group = c.benchmark_group("ablation/zonemap");
    group.sample_size(10);
    for (label, pruning) in [("pruned", true), ("unpruned", false)] {
        let mut engine = SqlEngine::new(
            Dialect::presto(),
            SqlOptions {
                zone_map_pruning: pruning,
                ..SqlOptions::default()
            },
        );
        engine.register(t.clone());
        group.bench_function(label, |b| {
            b.iter(|| black_box(engine.execute(sql).unwrap().relation.rows.len()))
        });
    }
    group.finish();
}
