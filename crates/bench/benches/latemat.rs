//! Late-materialization ablation (DESIGN.md §5): the vectorized scan path
//! — selection vectors over typed chunk buffers, rows assembled only for
//! survivors — toggled on and off, per engine, at several selectivities.
//!
//! The interesting comparison is within a pair: the `vectorized` /
//! `naive` variants run the same query on the same data, differing only
//! in the engine's `vectorized_filter` knob.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use engine_flwor::{FlworEngine, FlworOptions};
use engine_rdf::{Options, RDataFrame, SelCmp, SelValue};
use engine_sql::{Dialect, SqlEngine, SqlOptions};
use physics::HistSpec;

fn dataset() -> Arc<nf2_columnar::Table> {
    let (_, t) = hep_model::generator::build_dataset(hep_model::DatasetSpec {
        n_events: 16_384,
        row_group_size: 2_048,
        seed: 0x1A7E,
    });
    Arc::new(t)
}

/// MET.pt cuts at roughly 75% / 25% / 2% selectivity.
const CUTS: [(&str, f64); 3] = [("loose", 15.0), ("tight", 35.0), ("rare", 80.0)];

fn ablation_latemat_sql(c: &mut Criterion) {
    let t = dataset();
    let mut group = c.benchmark_group("ablation/latemat/sql");
    group.sample_size(10);
    for (label, cut) in CUTS {
        let sql = format!(
            "SELECT CAST(FLOOR(MET.pt / 5.0) AS BIGINT) AS bin, COUNT(*) AS n \
             FROM events WHERE MET.pt > {cut} \
             GROUP BY CAST(FLOOR(MET.pt / 5.0) AS BIGINT) ORDER BY bin"
        );
        for (mode, vectorized_filter) in [("vectorized", true), ("naive", false)] {
            group.bench_function(format!("{label}/{mode}"), |b| {
                b.iter(|| {
                    let mut e = SqlEngine::new(
                        Dialect::presto(),
                        SqlOptions {
                            vectorized_filter,
                            ..SqlOptions::default()
                        },
                    );
                    e.register(t.clone());
                    black_box(e.execute(&sql).unwrap().relation.rows.len())
                })
            });
        }
    }
    group.finish();
}

fn ablation_latemat_flwor(c: &mut Criterion) {
    let t = dataset();
    let mut group = c.benchmark_group("ablation/latemat/flwor");
    group.sample_size(10);
    for (label, cut) in CUTS {
        let q = format!(
            "for $e in parquet-file(\"events\") \
             where $e.MET.pt > {cut} \
             return $e.MET.pt"
        );
        for (mode, vectorized_filter) in [("vectorized", true), ("naive", false)] {
            group.bench_function(format!("{label}/{mode}"), |b| {
                b.iter(|| {
                    let mut e = FlworEngine::new(FlworOptions {
                        vectorized_filter,
                        ..FlworOptions::default()
                    });
                    e.register(t.clone());
                    black_box(e.execute(&q).unwrap().items.len())
                })
            });
        }
    }
    group.finish();
}

fn ablation_latemat_rdf(c: &mut Criterion) {
    let t = dataset();
    let mut group = c.benchmark_group("ablation/latemat/rdf");
    group.sample_size(10);
    for (label, cut) in CUTS {
        for (mode, vectorized_filter) in [("vectorized", true), ("naive", false)] {
            group.bench_function(format!("{label}/{mode}"), |b| {
                b.iter(|| {
                    let df = RDataFrame::new(
                        t.clone(),
                        Options {
                            vectorized_filter,
                            ..Options::default()
                        },
                    )
                    .filter_scalar("MET_pt", SelCmp::Gt, SelValue::Float(cut))
                    .histo1d(HistSpec::new(100, 0.0, 200.0), "MET_pt");
                    black_box(df.run().unwrap().histogram.total())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    latemat,
    ablation_latemat_sql,
    ablation_latemat_flwor,
    ablation_latemat_rdf
);
criterion_main!(latemat);
