//! Criterion end-to-end engine benchmarks: representative queries
//! (scan-bound Q1, pair-bound Q5, combinatorics-bound Q6) on each engine
//! at reduced scale.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use engine_sql::Dialect;
use hepbench_core::adapters;
use hepbench_core::QueryId;

fn table() -> Arc<nf2_columnar::Table> {
    let (_, t) = hep_model::generator::build_dataset(hep_model::DatasetSpec {
        n_events: 2_048,
        row_group_size: 256,
        seed: 0xBE7C,
    });
    Arc::new(t)
}

fn bench_engines(c: &mut Criterion) {
    let t = table();
    let env = adapters::ExecEnv::seed();
    for q in [QueryId::Q1, QueryId::Q5, QueryId::Q6a] {
        let mut group = c.benchmark_group(format!("e2e/{}", q.name()));
        group.sample_size(10);
        group.bench_function("rdataframe", |b| {
            b.iter(|| {
                black_box(
                    adapters::run_rdf_env(&t, q, engine_rdf::Options::default(), &env)
                        .unwrap()
                        .histogram
                        .total(),
                )
            })
        });
        group.bench_function("sql_presto", |b| {
            b.iter(|| {
                black_box(
                    adapters::run_sql_env(
                        Dialect::presto(),
                        &t,
                        q,
                        engine_sql::SqlOptions::default(),
                        &env,
                    )
                    .unwrap()
                    .histogram
                    .total(),
                )
            })
        });
        group.bench_function("sql_bigquery", |b| {
            b.iter(|| {
                black_box(
                    adapters::run_sql_env(
                        Dialect::bigquery(),
                        &t,
                        q,
                        engine_sql::SqlOptions::default(),
                        &env,
                    )
                    .unwrap()
                    .histogram
                    .total(),
                )
            })
        });
        group.bench_function("jsoniq", |b| {
            b.iter(|| {
                black_box(
                    adapters::run_jsoniq_env(&t, q, engine_flwor::FlworOptions::default(), &env)
                        .unwrap()
                        .histogram
                        .total(),
                )
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
