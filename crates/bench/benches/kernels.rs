//! Criterion micro-benchmarks for the hot kernels that determine the
//! figures: four-vector math, combination enumeration, histogram filling,
//! columnar scan/reconstruction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use hep_model::generator::{Generator, GeneratorConfig};
use physics::{FourMomentum, HistSpec, Histogram};

fn events(n: usize) -> Vec<hep_model::Event> {
    Generator::new(GeneratorConfig::default(), 4242).generate(n)
}

fn bench_fourvec(c: &mut Criterion) {
    c.bench_function("fourvec/from_pt_eta_phi_m", |b| {
        b.iter(|| {
            FourMomentum::from_pt_eta_phi_m(
                black_box(42.0),
                black_box(1.2),
                black_box(-0.7),
                black_box(5.0),
            )
        })
    });
    let p1 = FourMomentum::from_pt_eta_phi_m(42.0, 1.2, -0.7, 5.0);
    let p2 = FourMomentum::from_pt_eta_phi_m(31.0, -0.4, 2.1, 3.0);
    c.bench_function("fourvec/pair_mass", |b| {
        b.iter(|| (black_box(p1) + black_box(p2)).mass())
    });
}

fn bench_combinations(c: &mut Criterion) {
    let evs = events(200);
    let mut g = c.benchmark_group("kernels");
    g.sample_size(20);
    g.bench_function("best_trijet_per_event", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for e in &evs {
                if let Some((pt, _, _)) = hepbench_core::reference::best_trijet(&e.jets) {
                    acc += pt;
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("q8_value_per_event", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for e in &evs {
                if let (Some(mt), _) = hepbench_core::reference::q8_value(e) {
                    acc += mt;
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let values: Vec<f64> = (0..100_000).map(|i| (i % 233) as f64).collect();
    c.bench_function("hist/fill_100k", |b| {
        b.iter_batched(
            || Histogram::new(HistSpec::new(100, 0.0, 200.0)),
            |mut h| {
                h.fill_all(values.iter().copied());
                black_box(h.total())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_columnar(c: &mut Criterion) {
    let evs = events(5_000);
    let mut g = c.benchmark_group("columnar");
    g.sample_size(10);
    g.bench_function("build_table_5k", |b| {
        b.iter(|| {
            let t = hep_model::to_value::events_to_table(&evs, 1024).unwrap();
            black_box(t.n_rows())
        })
    });
    let table = hep_model::to_value::events_to_table(&evs, 1024).unwrap();
    let proj = nf2_columnar::Projection::of(["MET.pt", "Jet.pt"]);
    let leaves = proj
        .resolve(
            table.schema(),
            nf2_columnar::PushdownCapability::IndividualLeaves,
        )
        .unwrap();
    g.bench_function("read_rows_projected_5k", |b| {
        b.iter(|| {
            let mut n = 0;
            for g in table.row_groups() {
                n += g.read_rows(table.schema(), &leaves).unwrap().len();
            }
            black_box(n)
        })
    });
    g.bench_function("scan_stats", |b| {
        b.iter(|| {
            nf2_columnar::ScanRequest::new(&table, &proj)
                .capability(nf2_columnar::PushdownCapability::WholeStructs)
                .run()
                .unwrap()
                .stats
        })
    });
    g.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("generator");
    g.sample_size(10);
    g.bench_function("1k_events", |b| b.iter(|| black_box(events(1_000).len())));
    g.finish();
}

criterion_group!(
    benches,
    bench_fourvec,
    bench_combinations,
    bench_histogram,
    bench_columnar,
    bench_generator
);
criterion_main!(benches);
