//! ISSUE 8 satellite tests for the open-loop load generator:
//!
//! 1. seeded determinism — the same seed yields a byte-identical
//!    arrival schedule, tenant/query assignment and digest, and the
//!    replayed benchmark record (modulo wall-clock fields) does not
//!    depend on the submitter thread count;
//! 2. the paper-fairness invariant survives the open-loop submission
//!    path — with every cache and overload knob off, a request routed
//!    through `submit(...arriving_at(t))` returns results byte-for-byte
//!    identical to the single-query seed path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hep_model::generator::build_dataset;
use hep_model::DatasetSpec;
use hepbench_bench::loadgen::{query_mix, run_open_loop, LoadConfig, Schedule};
use hepbench_core::adapters::ExecEnv;
use hepbench_core::runner::execute_engine;
use query_service::{QueryRequest, QueryService, ServiceConfig};

fn small_cfg() -> LoadConfig {
    LoadConfig {
        seed: 0x5EED,
        n_requests: 5_000,
        offered_qps: 400.0,
        n_tenants: 3_000,
        ..LoadConfig::default()
    }
}

#[test]
fn same_seed_is_byte_identical() {
    let cfg = small_cfg();
    let a = Schedule::generate(&cfg);
    let b = Schedule::generate(&cfg);
    // Byte-identical: every arrival instant, tenant and query slot.
    assert_eq!(a, b);
    assert_eq!(a.digest(), b.digest());
    // The digest is sensitive to any field: a different seed moves it.
    let c = Schedule::generate(&LoadConfig {
        seed: cfg.seed + 1,
        ..cfg.clone()
    });
    assert_ne!(a.arrivals, c.arrivals);
    assert_ne!(a.digest(), c.digest());
    // And so does any workload-shape knob.
    let d = Schedule::generate(&LoadConfig {
        tenant_zipf_s: cfg.tenant_zipf_s + 0.1,
        ..cfg.clone()
    });
    assert_ne!(a.digest(), d.digest());
}

/// Pins the generator's output for the default test seed: any change to
/// the sampling pipeline (gap distribution, zipf tables, draw order)
/// breaks replayability of previously recorded benchmark records and
/// must show up as a deliberate diff here.
#[test]
fn schedule_digest_is_pinned() {
    let s = Schedule::generate(&small_cfg());
    assert_eq!(s.digest(), PINNED_DIGEST, "digest {:#018x}", s.digest());
}

const PINNED_DIGEST: u64 = 0x7a23_4a4f_0e05_bc19;

/// The benchmark record's deterministic fields must not depend on how
/// many submitter threads replay the schedule: the schedule is decided
/// before the first submission, and with every rejection path disabled
/// each replay accounts for exactly `n_requests` completions.
#[test]
fn replay_is_thread_count_invariant() {
    let (_, table) = build_dataset(DatasetSpec {
        n_events: 200,
        row_group_size: 64,
        seed: 0xAD1B70,
    });
    let table = Arc::new(table);
    let cfg = LoadConfig {
        seed: 0xD1CE,
        n_requests: 120,
        offered_qps: 400.0,
        n_tenants: 50,
        // Cheap head of the mix only: a steep zipf keeps the replay
        // fast while still crossing tenants and systems.
        mix_zipf_s: 2.0,
        ..LoadConfig::default()
    };
    let schedule = Schedule::generate(&cfg);
    let slo = Duration::from_secs(600);
    let mut records = Vec::new();
    for n_submitters in [1, 4] {
        let service = QueryService::start(table.clone(), ServiceConfig::paper_fairness());
        let out = run_open_loop(&service, &schedule, n_submitters, slo);
        assert_eq!(out.submitted, cfg.n_requests as u64);
        assert_eq!(out.accounted(), out.submitted);
        records.push((
            out.submitted,
            out.completed,
            out.within_slo,
            out.rejected + out.shedded + out.breaker_rejected,
            out.timed_out + out.cancelled + out.failed,
            out.latency.count(),
        ));
    }
    assert_eq!(
        records[0], records[1],
        "deterministic record fields differ across submitter counts"
    );
}

/// Open-loop arrival timestamps charge submitter lag to the request:
/// a request whose intended arrival was 80 ms ago reports ≥ 80 ms of
/// queue wait even though it is served immediately.
#[test]
fn late_submission_is_charged_from_intended_arrival() {
    let (_, table) = build_dataset(DatasetSpec {
        n_events: 200,
        row_group_size: 64,
        seed: 0xAD1B70,
    });
    let service = QueryService::start(Arc::new(table), ServiceConfig::paper_fairness());
    let (system, query) = query_mix()[0];
    let lag = Duration::from_millis(80);
    let resp = service
        .submit(QueryRequest::new("t0", system, query).arriving_at(Instant::now() - lag))
        .expect("admitted")
        .wait()
        .expect("served");
    assert!(
        resp.queue_seconds >= lag.as_secs_f64(),
        "queue wait {:.3}s hides the {:.3}s submitter lag",
        resp.queue_seconds,
        lag.as_secs_f64()
    );
    assert!(resp.total_seconds >= resp.queue_seconds);
}

/// Satellite regression: `ServiceConfig::paper_fairness()` stays
/// byte-identical to the seed single-query path when requests travel
/// the open-loop submission path (arrival timestamps on, every cache
/// and overload knob off) — the arrival plumbing must not perturb
/// results, scan accounting, or determinism.
#[test]
fn paper_fairness_is_byte_identical_through_open_loop_submission() {
    let (_, table) = build_dataset(DatasetSpec {
        n_events: 400,
        row_group_size: 128,
        seed: 0xAD1B70,
    });
    let table = Arc::new(table);
    let service = QueryService::start(table.clone(), ServiceConfig::paper_fairness());
    for (system, query) in query_mix() {
        let direct = execute_engine(system, &table, query, &ExecEnv::seed()).unwrap();
        let served = service
            .submit(QueryRequest::new("t0", system, query).arriving_at(Instant::now()))
            .expect("admitted")
            .wait()
            .expect("served");
        assert!(!served.from_result_cache);
        assert_eq!(
            served.histogram,
            direct.histogram,
            "{} {}: histogram differs through the open-loop path",
            system.name(),
            query.name()
        );
        assert_eq!(
            served.stats.scan,
            direct.stats.scan,
            "{} {}: scan accounting differs through the open-loop path",
            system.name(),
            query.name()
        );
    }
}
