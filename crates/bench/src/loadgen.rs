//! Open-loop load generation for the serving layer (ROADMAP item 4).
//!
//! A closed-loop driver (like `serve_smoke`'s client threads) submits a
//! request, waits for the answer, then submits the next one — so when
//! the service slows down, the *offered load drops with it* and the
//! measured latency flatters the system (coordinated omission). This
//! module generates the whole arrival schedule up front from a seed and
//! replays it open-loop: every request carries its **intended arrival
//! instant**, submission happens at (or as close as the submitter can
//! manage to) that instant regardless of how the service is doing, and
//! the service charges queue wait and end-to-end latency from the
//! intended instant ([`query_service::QueryRequest::arriving_at`]).
//!
//! The schedule is deterministic and cheap to digest:
//!
//! * **inter-arrival gaps** are bounded-Pareto distributed
//!   ([`BoundedPareto`], α ≈ 1.5) — heavy-tailed bursts, scaled so the
//!   analytic mean hits the configured offered QPS;
//! * **tenants** are drawn zipfian ([`Zipf`]) over thousands of
//!   simulated tenants — a few hot tenants dominate, the tail is long;
//! * **the query mix** is zipfian over the (system × query) grid of
//!   [`query_mix`], ranked cheap→expensive so popular requests are
//!   cheap ones and the tail holds the scan-heavy monsters, as in any
//!   real serving mix.
//!
//! [`run_open_loop`] replays a [`Schedule`] against a running
//! [`query_service::QueryService`] with a fixed number of submitter
//! threads (the thread count does not change the schedule — satellite
//! determinism test) and collects per-outcome counts, the completed
//! latency distribution as a mergeable [`obs::Log2Histogram`], SLO
//! compliance and the accumulated serving bill.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use hepbench_core::runner::System;
use hepbench_core::{QueryId, ALL_QUERIES};
use query_service::{QueryRequest, QueryService, ServiceError};

/// Deterministic 64-bit generator (splitmix64) — the schedule's only
/// randomness source, so one `u64` seed pins the whole workload.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Bounded Pareto distribution on `[lo, hi]` with shape `alpha` — the
/// classic heavy-tailed model for inter-arrival gaps: most gaps are
/// near `lo`, occasional gaps are orders of magnitude longer, and the
/// upper bound keeps the mean finite and the schedule's span sane.
#[derive(Clone, Copy, Debug)]
pub struct BoundedPareto {
    /// Tail index; smaller ⇒ heavier tail. Must not be 1 (the mean
    /// formula has a removable pole there) — 1.5 is the usual choice.
    pub alpha: f64,
    /// Smallest producible value.
    pub lo: f64,
    /// Largest producible value.
    pub hi: f64,
}

impl BoundedPareto {
    /// Inverse-CDF sample from a uniform `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> f64 {
        let ratio = (self.lo / self.hi).powf(self.alpha);
        self.lo * (1.0 - u * (1.0 - ratio)).powf(-1.0 / self.alpha)
    }

    /// Analytic mean — used to rescale gaps so a schedule hits its
    /// offered QPS exactly in expectation.
    pub fn mean(&self) -> f64 {
        let a = self.alpha;
        assert!((a - 1.0).abs() > 1e-9, "alpha = 1 needs the log form");
        let la = self.lo.powf(a);
        let ratio = (self.lo / self.hi).powf(a);
        la / (1.0 - ratio)
            * (a / (a - 1.0))
            * (1.0 / self.lo.powf(a - 1.0) - 1.0 / self.hi.powf(a - 1.0))
    }
}

/// Zipfian sampler over ranks `0..n`: rank `r` has weight
/// `1 / (r+1)^s`. Sampled by binary search over cumulative weights.
#[derive(Clone, Debug)]
pub struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    /// A zipfian distribution over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "zipf over zero ranks");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Zipf { cum }
    }

    /// Rank for a uniform `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> usize {
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }
}

/// The systems a serving deployment multiplexes (one per
/// language/dialect family, as in `serve_smoke`).
pub const SYSTEMS: &[System] = &[
    System::BigQuery,
    System::AthenaV2,
    System::Presto,
    System::Rumble,
    System::RDataFrame,
];

/// The benchmark queries in **cheap→expensive rank order** for the
/// serving mix. Benchmark order (Q1…Q8) is *not* cost order: the Q6
/// pair's per-event trijet combinatorics make them one to two orders
/// of magnitude heavier than anything else, so they take the deepest
/// tail ranks — popular requests are cheap projections, the monsters
/// are rare, as in any real serving mix.
const COST_RANKED_QUERIES: [QueryId; 9] = [
    QueryId::Q1,
    QueryId::Q2,
    QueryId::Q3,
    QueryId::Q4,
    QueryId::Q5,
    QueryId::Q7,
    QueryId::Q8,
    QueryId::Q6a,
    QueryId::Q6b,
];

/// The (system × query) grid in cheap→expensive rank order (per the
/// internal `COST_RANKED_QUERIES` table): the zipfian mix makes low
/// ranks popular,
/// so most traffic is cheap single-column queries and the scan-heavy
/// tail queries are rare.
pub fn query_mix() -> Vec<(System, QueryId)> {
    debug_assert_eq!(COST_RANKED_QUERIES.len(), ALL_QUERIES.len());
    COST_RANKED_QUERIES
        .iter()
        .flat_map(|&q| SYSTEMS.iter().map(move |&s| (s, q)))
        .collect()
}

/// One scheduled request: nanoseconds after the run epoch, the tenant
/// rank and the index into [`query_mix`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Intended arrival, nanoseconds after the run epoch.
    pub at_nanos: u64,
    /// Tenant rank (0 is the hottest tenant); tenant name is `t<rank>`.
    pub tenant: u32,
    /// Index into the workload mix.
    pub slot: u16,
}

/// Knobs for schedule generation. Everything is derived from `seed` —
/// two configs with equal fields generate byte-identical schedules.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Seed for gaps, tenants and mix draws.
    pub seed: u64,
    /// Number of requests in the schedule.
    pub n_requests: usize,
    /// Offered load; gap samples are rescaled so the *expected*
    /// schedule span is `n_requests / offered_qps`.
    pub offered_qps: f64,
    /// Simulated tenant population (thousands in the scale study).
    pub n_tenants: usize,
    /// Zipf exponent for tenant popularity.
    pub tenant_zipf_s: f64,
    /// Zipf exponent over the cheap→expensive query mix.
    pub mix_zipf_s: f64,
    /// Bounded-Pareto tail index for inter-arrival gaps.
    pub pareto_alpha: f64,
    /// Upper/lower bound ratio of the gap distribution.
    pub pareto_spread: f64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            seed: 0xC0FFEE,
            n_requests: 10_000,
            offered_qps: 100.0,
            n_tenants: 2_000,
            tenant_zipf_s: 1.2,
            // Steep enough that the Q6 tail (ranks 36–45) stays ~2% of
            // traffic: rare, as monsters are, but present in every run.
            mix_zipf_s: 1.4,
            pareto_alpha: 1.5,
            pareto_spread: 1_000.0,
        }
    }
}

/// A fully materialized open-loop schedule: every arrival instant,
/// tenant and query decided before the first request is submitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Requests in arrival order (`at_nanos` is non-decreasing).
    pub arrivals: Vec<Arrival>,
}

impl Schedule {
    /// Generates the schedule for `cfg` — single-threaded and pure, so
    /// the result is byte-identical for equal configs no matter how
    /// many threads later replay it.
    pub fn generate(cfg: &LoadConfig) -> Schedule {
        let mix_len = query_mix().len();
        assert!(mix_len <= u16::MAX as usize + 1, "mix fits the slot width");
        let gaps = BoundedPareto {
            alpha: cfg.pareto_alpha,
            lo: 1.0,
            hi: cfg.pareto_spread,
        };
        // Rescale so E[gap] = 1/offered_qps seconds.
        let nanos_per_unit = 1e9 / (cfg.offered_qps * gaps.mean());
        let tenants = Zipf::new(cfg.n_tenants, cfg.tenant_zipf_s);
        let mix = Zipf::new(mix_len, cfg.mix_zipf_s);
        let mut rng = SplitMix64::new(cfg.seed);
        let mut at = 0.0f64;
        let mut arrivals = Vec::with_capacity(cfg.n_requests);
        for _ in 0..cfg.n_requests {
            at += gaps.sample(rng.unit_f64()) * nanos_per_unit;
            arrivals.push(Arrival {
                at_nanos: at as u64,
                tenant: tenants.sample(rng.unit_f64()) as u32,
                slot: mix.sample(rng.unit_f64()) as u16,
            });
        }
        Schedule { arrivals }
    }

    /// FNV-1a digest over every arrival — the determinism fingerprint
    /// reported in the benchmark record: equal seeds must produce equal
    /// digests on every platform and thread count.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        };
        for a in &self.arrivals {
            eat(a.at_nanos);
            eat(a.tenant as u64);
            eat(a.slot as u64);
        }
        h
    }

    /// The schedule's intended span — first to last arrival.
    pub fn span(&self) -> Duration {
        Duration::from_nanos(self.arrivals.last().map_or(0, |a| a.at_nanos))
    }
}

/// What one open-loop replay observed, client-side. Outcome counts
/// mirror the service's [`query_service::StatsSnapshot`] taxonomy; the
/// completed-latency histogram is recorded per collector thread and
/// [`obs::Log2Histogram::merge`]d in deterministic order.
#[derive(Clone, Debug, Default)]
pub struct OpenLoopOutcome {
    /// Requests replayed from the schedule.
    pub submitted: u64,
    /// Requests answered with a result.
    pub completed: u64,
    /// Completed **within the SLO** (end-to-end, from intended arrival).
    pub within_slo: u64,
    /// Admission-queue-full rejections.
    pub rejected: u64,
    /// Load-shedding rejections.
    pub shedded: u64,
    /// Open-circuit-breaker rejections.
    pub breaker_rejected: u64,
    /// Deadline expiries (queued or racing the worker).
    pub timed_out: u64,
    /// Cooperative cancellations while running.
    pub cancelled: u64,
    /// Engine failures and shutdown answers.
    pub failed: u64,
    /// Σ [`query_service::QueryResponse::cost_usd`] over completions.
    pub total_cost_usd: f64,
    /// End-to-end completed latency (seconds, from intended arrival).
    pub latency: obs::Log2Histogram,
    /// Wall seconds from the replay epoch to the last collected answer
    /// (includes queue drain after the last arrival).
    pub wall_seconds: f64,
}

impl OpenLoopOutcome {
    fn fold(&mut self, other: &OpenLoopOutcome) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.within_slo += other.within_slo;
        self.rejected += other.rejected;
        self.shedded += other.shedded;
        self.breaker_rejected += other.breaker_rejected;
        self.timed_out += other.timed_out;
        self.cancelled += other.cancelled;
        self.failed += other.failed;
        self.total_cost_usd += other.total_cost_usd;
        self.latency.merge(&other.latency);
        self.wall_seconds = self.wall_seconds.max(other.wall_seconds);
    }

    /// Requests with *any* recorded outcome — must equal `submitted`
    /// (the accounting gate).
    pub fn accounted(&self) -> u64 {
        self.completed
            + self.rejected
            + self.shedded
            + self.breaker_rejected
            + self.timed_out
            + self.cancelled
            + self.failed
    }

    /// Goodput: completions **within the SLO** per wall second.
    pub fn goodput_qps(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.within_slo as f64 / self.wall_seconds
        }
    }
}

/// Replays `schedule` against `service` open-loop with `n_submitters`
/// submitter threads (each paired with a collector draining its
/// tickets, so waiting on one answer never delays the next arrival).
/// Requests are round-robin partitioned over submitters by schedule
/// index; each submitter sleeps until a request's intended instant and
/// submits it timestamped with that instant — when the submitter runs
/// late, the lag is charged to the request, not hidden.
pub fn run_open_loop(
    service: &QueryService,
    schedule: &Schedule,
    n_submitters: usize,
    slo: Duration,
) -> OpenLoopOutcome {
    let n_submitters = n_submitters.max(1);
    let epoch = Instant::now();
    let partials: Vec<OpenLoopOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_submitters)
            .map(|k| {
                let (tx, rx) = mpsc::channel::<query_service::Ticket>();
                let collector = scope.spawn(move || {
                    let mut out = OpenLoopOutcome::default();
                    while let Ok(ticket) = rx.recv() {
                        match ticket.wait() {
                            Ok(resp) => {
                                out.completed += 1;
                                out.total_cost_usd += resp.cost_usd;
                                out.latency.observe(resp.total_seconds);
                                if resp.total_seconds <= slo.as_secs_f64() {
                                    out.within_slo += 1;
                                }
                            }
                            Err(ServiceError::QueryRejected { .. }) => out.rejected += 1,
                            Err(ServiceError::QueryShedded { .. }) => out.shedded += 1,
                            Err(ServiceError::CircuitOpen { .. }) => out.breaker_rejected += 1,
                            Err(ServiceError::QueryTimedOut { .. }) => out.timed_out += 1,
                            Err(ServiceError::Cancelled { .. }) => out.cancelled += 1,
                            Err(_) => out.failed += 1,
                        }
                    }
                    out
                });
                let submitter = scope.spawn(move || {
                    let mix = query_mix();
                    let mut out = OpenLoopOutcome::default();
                    for a in schedule.arrivals.iter().skip(k).step_by(n_submitters) {
                        let target = epoch + Duration::from_nanos(a.at_nanos);
                        loop {
                            let now = Instant::now();
                            if now >= target {
                                break;
                            }
                            std::thread::sleep(target - now);
                        }
                        let (system, query) = mix[a.slot as usize];
                        let req = QueryRequest::new(format!("t{}", a.tenant), system, query)
                            .arriving_at(target);
                        out.submitted += 1;
                        match service.submit(req) {
                            Ok(ticket) => {
                                let _ = tx.send(ticket);
                            }
                            Err(ServiceError::QueryRejected { .. }) => out.rejected += 1,
                            Err(ServiceError::QueryShedded { .. }) => out.shedded += 1,
                            Err(ServiceError::CircuitOpen { .. }) => out.breaker_rejected += 1,
                            Err(_) => out.failed += 1,
                        }
                    }
                    drop(tx);
                    out
                });
                (submitter, collector)
            })
            .collect();
        handles
            .into_iter()
            .map(|(s, c)| {
                let mut out = s.join().expect("submitter thread");
                out.fold(&c.join().expect("collector thread"));
                out
            })
            .collect()
    });
    let mut out = OpenLoopOutcome::default();
    for p in &partials {
        out.fold(p);
    }
    out.wall_seconds = epoch.elapsed().as_secs_f64();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_mean_matches_empirical() {
        let d = BoundedPareto {
            alpha: 1.5,
            lo: 1.0,
            hi: 1_000.0,
        };
        let mut rng = SplitMix64::new(7);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(rng.unit_f64())).sum();
        let empirical = sum / n as f64;
        let analytic = d.mean();
        assert!(
            (empirical - analytic).abs() / analytic < 0.05,
            "analytic {analytic} vs empirical {empirical}"
        );
        // Samples respect the bounds.
        let mut rng = SplitMix64::new(8);
        for _ in 0..10_000 {
            let x = d.sample(rng.unit_f64());
            assert!((d.lo..=d.hi).contains(&x));
        }
    }

    #[test]
    fn zipf_is_monotonically_less_popular() {
        let z = Zipf::new(100, 1.2);
        let mut rng = SplitMix64::new(11);
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[z.sample(rng.unit_f64())] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[60]);
        // Rank 0 of a s>1 zipf over 100 ranks carries a big share.
        assert!(counts[0] > 100_000 / 10);
    }

    #[test]
    fn schedule_is_sorted_and_scaled() {
        let cfg = LoadConfig {
            n_requests: 5_000,
            offered_qps: 250.0,
            ..LoadConfig::default()
        };
        let s = Schedule::generate(&cfg);
        assert_eq!(s.arrivals.len(), 5_000);
        assert!(s
            .arrivals
            .windows(2)
            .all(|w| w[0].at_nanos <= w[1].at_nanos));
        // The realized span is within 2× of the intended span either
        // way (one heavy-tailed draw can stretch a short schedule).
        let intended = cfg.n_requests as f64 / cfg.offered_qps;
        let realized = s.span().as_secs_f64();
        assert!(
            realized > intended / 2.0 && realized < intended * 2.0,
            "span {realized}s vs intended {intended}s"
        );
        let max_tenant = s.arrivals.iter().map(|a| a.tenant).max().unwrap();
        assert!((max_tenant as usize) < cfg.n_tenants);
        let max_slot = s.arrivals.iter().map(|a| a.slot).max().unwrap();
        assert!((max_slot as usize) < query_mix().len());
    }
}
