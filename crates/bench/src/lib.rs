//! # hepbench-bench
//!
//! Shared scaffolding for the benchmark harness binaries that regenerate
//! every table and figure of the paper (see DESIGN.md's per-experiment
//! index), plus the Criterion micro-benchmarks.
//!
//! Scale is controlled by environment variables so the same binaries serve
//! quick smoke runs and full reproductions:
//!
//! * `HEPQUERY_EVENTS` — events to generate (default 65 536);
//! * `HEPQUERY_ROW_GROUP` — events per row group (default
//!   `HEPQUERY_EVENTS / 128`, preserving the paper's 128-row-group
//!   structure);
//! * `HEPQUERY_SEED` — generator seed (default the benchmark seed).

pub mod loadgen;

use std::sync::Arc;

use hep_model::generator::build_dataset;
use hep_model::{DatasetSpec, Event};
use nf2_columnar::Table;

/// Reads the benchmark scale from the environment.
pub fn dataset_spec() -> DatasetSpec {
    let n_events = std::env::var("HEPQUERY_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(65_536);
    let row_group_size = std::env::var("HEPQUERY_ROW_GROUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| (n_events / 128).max(1));
    let seed = std::env::var("HEPQUERY_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xAD1B70);
    DatasetSpec {
        n_events,
        row_group_size,
        seed,
    }
}

/// Builds (and memoizes nothing — harnesses run once) the benchmark data.
pub fn dataset() -> (Vec<Event>, Arc<Table>) {
    let spec = dataset_spec();
    eprintln!(
        "# data set: {} events, {} per row group ({} groups), seed {:#x}",
        spec.n_events,
        spec.row_group_size,
        spec.n_events.div_ceil(spec.row_group_size),
        spec.seed
    );
    let (events, table) = build_dataset(spec);
    (events, Arc::new(table))
}

/// Merges a named top-level object into the (possibly existing) smoke
/// JSON at `path`, replacing any previous section of the same name.
/// Sections are trailing: merging a section drops anything after a
/// previous copy of it, which keeps the splice trivial and is harmless
/// for the append-only sections the harnesses write.
pub fn merge_section(path: &str, key: &str, payload: &str) {
    let content = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
    let marker = format!(",\n  \"{key}\":");
    let base = if let Some(pos) = content.find(&marker) {
        content[..pos].to_string()
    } else {
        let mut c = content.trim_end().to_string();
        if c.ends_with('}') {
            c.pop();
        }
        c.trim_end().to_string()
    };
    let sep = if base.trim_end().ends_with('{') {
        ""
    } else {
        ","
    };
    let json = format!("{base}{sep}\n  \"{key}\": {payload}\n}}\n");
    std::fs::write(path, &json).expect("write smoke json");
    eprintln!("# merged {key} section into {path}");
}

/// Formats seconds for table output.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:8.1}s")
    } else if s >= 1.0 {
        format!("{s:8.2}s")
    } else {
        format!("{:7.1}ms", s * 1e3)
    }
}

/// Formats USD for table output.
pub fn fmt_usd(c: f64) -> String {
    if c >= 0.01 {
        format!("${c:9.4}")
    } else {
        format!("${c:9.6}")
    }
}

/// Formats byte counts.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: &[&str] = &["B", "kB", "MB", "GB", "TB"];
    let mut x = b as f64;
    let mut u = 0;
    while x >= 1000.0 && u + 1 < UNITS.len() {
        x /= 1000.0;
        u += 1;
    }
    format!("{x:7.2}{}", UNITS[u])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert!(fmt_secs(0.0123).contains("ms"));
        assert!(fmt_secs(12.0).contains('s'));
        assert!(fmt_usd(1.5).starts_with('$'));
        assert_eq!(fmt_bytes(1_500_000).trim(), "1.50MB");
    }

    #[test]
    fn default_spec_sane() {
        let spec = dataset_spec();
        assert!(spec.n_events > 0);
        assert!(spec.row_group_size > 0);
    }
}
