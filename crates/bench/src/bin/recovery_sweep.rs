//! Morsel-recovery gate: seeded fault schedules × steal seeds × worker
//! counts over the parallel compiled executor, watchdog-guarded.
//!
//! `--check` runs [`chaos::recovery_sweep`] — every seeded plan under
//! every adversarial schedule (transient io/checksum/truncated faults,
//! poison-pill panics, worker kills, persistent faults) at 1/2/4/8
//! workers with two steal seeds each — and exits non-zero unless every
//! recovering run is **byte-identical** to the serial oracle with exact
//! row/morsel conservation and zero duplicate partials, every persistent
//! schedule fails fast with a typed error, and the engine-level probes
//! show `ScanStats` (billing) untouched by recovery. A JSON summary of
//! the sweep is written for CI artifact upload.
//!
//! Scale knobs: `HEPQUERY_EVENTS`, `HEPQUERY_ROW_GROUP`,
//! `HEPQUERY_RECOVERY_SEED`, `HEPQUERY_RECOVERY_PLANS`,
//! `HEPQUERY_RECOVERY_WATCHDOG`; the artifact path is
//! `HEPQUERY_RECOVERY_OUT` (default `recovery_sweep.json`).

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use chaos::recovery_sweep;
use hep_model::generator::build_dataset;
use hep_model::{DatasetSpec, Event};
use nf2_columnar::Table;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn dataset() -> (Vec<Event>, Arc<Table>) {
    let (events, table) = build_dataset(DatasetSpec {
        n_events: env_u64("HEPQUERY_EVENTS", 2_000) as usize,
        row_group_size: env_u64("HEPQUERY_ROW_GROUP", 256) as usize,
        seed: env_u64("HEPQUERY_SEED", 0xAD1B70),
    });
    (events, Arc::new(table))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn report_json(seed: u64, n_plans: usize, r: &chaos::RecoveryReport) -> String {
    let violations: Vec<String> = r
        .violations
        .iter()
        .map(|v| format!("    \"{}\"", json_escape(v)))
        .collect();
    format!(
        "{{\n  \"seed\": {seed},\n  \"plans\": {n_plans},\n  \"workers\": {:?},\n  \
         \"runs\": {},\n  \"clean_results\": {},\n  \"typed_errors\": {},\n  \
         \"interventions\": {},\n  \"workers_lost\": {},\n  \"passed\": {},\n  \
         \"violations\": [\n{}\n  ]\n}}\n",
        chaos::RECOVERY_SWEEP_WORKERS,
        r.runs,
        r.clean_results,
        r.typed_errors,
        r.interventions,
        r.workers_lost,
        r.passed(),
        violations.join(",\n")
    )
}

fn run_sweep(events: &[Event], table: &Arc<Table>) -> u32 {
    let seed = env_u64("HEPQUERY_RECOVERY_SEED", 0x09EC_04E9);
    let n_plans = env_u64("HEPQUERY_RECOVERY_PLANS", 6) as usize;
    eprintln!("# recovery_sweep --check: {n_plans} plans, seed {seed:#x}");
    let report = recovery_sweep(seed, n_plans, events, table);
    for v in &report.violations {
        eprintln!("FAIL: {v}");
    }
    eprintln!(
        "  {} runs: {} recovered byte-identically, {} typed fail-fast errors, \
         {} interventions, {} workers retired",
        report.runs,
        report.clean_results,
        report.typed_errors,
        report.interventions,
        report.workers_lost
    );
    let mut failures = report.violations.len() as u32;
    if report.interventions == 0 {
        eprintln!("FAIL: sweep never recovered anything — dead injector?");
        failures += 1;
    }
    if report.workers_lost == 0 {
        eprintln!("FAIL: worker-kill schedules never retired a worker");
        failures += 1;
    }
    if report.typed_errors == 0 {
        eprintln!("FAIL: persistent schedules never surfaced a typed error");
        failures += 1;
    }
    let out = std::env::var("HEPQUERY_RECOVERY_OUT")
        .unwrap_or_else(|_| "recovery_sweep.json".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create artifact dir");
        }
    }
    std::fs::write(&out, report_json(seed, n_plans, &report)).expect("write sweep json");
    eprintln!("# wrote {out}");
    if failures == 0 {
        eprintln!("# recovery sweep OK");
    }
    failures
}

fn main() {
    // The only mode is the gate itself; `--check` is accepted for
    // symmetry with the other CI binaries.
    let _ = std::env::args().any(|a| a == "--check");
    // The panic schedules unwind hundreds of injected panics through
    // `catch_unwind`; keep them out of the CI log while leaving genuine
    // panics loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("injected panic") {
            default_hook(info);
        }
    }));
    let watchdog = Duration::from_secs(env_u64("HEPQUERY_RECOVERY_WATCHDOG", 600));
    let (done_tx, done_rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let (events, table) = dataset();
        let _ = done_tx.send(run_sweep(&events, &table));
    });
    let failures = match done_rx.recv_timeout(watchdog) {
        Ok(f) => f,
        Err(_) => {
            eprintln!(
                "FAIL: recovery_sweep did not finish within {}s — wedged pool?",
                watchdog.as_secs()
            );
            std::process::exit(1);
        }
    };
    worker.join().expect("sweep worker");
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
