//! Regenerates **Table 2**: per-query complexity formulas and the number
//! of records/record-combinations explored per event, analytic vs measured
//! vs the paper's values for the CMS data set.

use hepbench_bench::dataset;
use hepbench_core::complexity;
use hepbench_core::ALL_QUERIES;

fn main() {
    let (events, _) = dataset();
    println!("Table 2 — query complexity (ops = records/record-combinations explored)");
    println!();
    println!(
        "{:6} {:>24} {:>16} {:>16} {:>14}",
        "Query", "Complexity", "analytic/event", "measured/event", "paper (CMS)"
    );
    for q in ALL_QUERIES {
        // Q6b duplicates Q6a's complexity row; the paper lists Q6 once.
        if *q == hepbench_core::QueryId::Q6b {
            continue;
        }
        let row = complexity::row(*q, &events);
        println!(
            "{:6} {:>24} {:>16.2} {:>16.2} {:>14.1}",
            row.query,
            row.formula,
            row.analytic_ops_per_event,
            row.measured_ops_per_event,
            row.paper_ops_per_event
        );
    }
    println!();
    println!("note: absolute values depend on the synthetic data set's multiplicity");
    println!("calibration; the shape to check is Q6 >> Q8 > Q2..Q4 > Q1 (see EXPERIMENTS.md).");
}
