//! Regenerates **Figure 4**: the compute/IO balance analysis —
//! (a) CPU time per query and system, (b) bytes scanned per event with the
//! two "ideal" lines, (c) end-to-end scan throughput per core, and
//! (d) the per-stage breakdown from each run's span tree.

use hepbench_bench::{dataset, fmt_bytes, fmt_secs};
use hepbench_core::adapters::ExecEnv;
use hepbench_core::runner::{run_one, System};
use hepbench_core::ALL_QUERIES;

fn systems() -> Vec<(System, Option<&'static cloud_sim::InstanceType>)> {
    let big = cloud_sim::instances::by_name("m5d.24xlarge");
    let twelve = cloud_sim::instances::by_name("m5d.12xlarge");
    vec![
        (System::BigQuery, None),
        (System::AthenaV2, None),
        (System::Presto, big),
        (System::Rumble, big),
        (System::RDataFrame, twelve),
    ]
}

fn main() {
    // Tracing on: Figure 4d reads the per-stage breakdown straight off
    // each run's span tree. CPU/scan numbers still come from the same
    // accounting as before (tracing is an overlay, not a measurement
    // change).
    let env = ExecEnv {
        trace: obs::TraceCtx::enabled(),
        ..ExecEnv::seed()
    };
    let (_, table) = dataset();
    let mut rows = Vec::new();
    for q in ALL_QUERIES {
        if *q == hepbench_core::QueryId::Q6b {
            continue;
        }
        for (system, inst) in systems() {
            let m = run_one(system, inst, &table, *q, &env).expect("run");
            rows.push(m);
        }
    }

    println!("Figure 4a — total CPU time per query (seconds of busy cores)");
    print_per_query(&rows, |m| fmt_secs(m.cpu_seconds));
    println!();

    println!("Figure 4b — bytes scanned per event (ideal: compressed / uncompressed)");
    print_per_query(&rows, |m| format!("{:.1}", m.scan.bytes_per_row()));
    println!();
    println!("{:24}", "ideal lines (B/event):");
    let mut seen = std::collections::HashSet::new();
    for m in &rows {
        if seen.insert(m.query) {
            println!(
                "  {:6} compressed {:>8.1}  uncompressed {:>8.1}",
                m.query,
                m.scan.ideal_compressed_bytes as f64 / m.scan.rows.max(1) as f64,
                m.scan.ideal_uncompressed_bytes as f64 / m.scan.rows.max(1) as f64
            );
        }
    }
    println!();

    println!("Figure 4c — scan throughput per core (MB per CPU-second)");
    print_per_query(&rows, |m| {
        format!("{:.2}", m.throughput_mb_per_core_second())
    });
    println!();

    println!("Figure 4d — where the time goes (top stage from each run's span tree)");
    print_per_query_width(&rows, 22, |m| {
        m.stage_seconds
            .iter()
            .find(|(stage, _)| *stage != "query")
            .map(|(stage, secs)| format!("{stage} {}", fmt_secs(*secs)))
            .unwrap_or_else(|| "-".to_string())
    });
    println!();
    println!(
        "total table size: {} compressed / {} uncompressed",
        fmt_bytes(table.compressed_bytes() as u64),
        fmt_bytes(table.uncompressed_bytes() as u64)
    );
    println!();
    println!("shapes to check against the paper (Figure 4): CPU time ranking mirrors");
    println!("Figure 1 with Q6 >> Q8 > Q7/Q5; BigQuery's billed bytes exceed the ideal");
    println!("compressed line (8-byte pricing), Presto/Athena exceed it via whole-struct");
    println!("reads, Rumble reads the entire file; throughput collapses on Q6.");
}

fn print_per_query(
    rows: &[hepbench_core::runner::Measurement],
    f: impl Fn(&hepbench_core::runner::Measurement) -> String,
) {
    print_per_query_width(rows, 10, f)
}

fn print_per_query_width(
    rows: &[hepbench_core::runner::Measurement],
    width: usize,
    f: impl Fn(&hepbench_core::runner::Measurement) -> String,
) {
    let queries: Vec<&str> = {
        let mut qs: Vec<&str> = Vec::new();
        for m in rows {
            if !qs.contains(&m.query) {
                qs.push(m.query);
            }
        }
        qs
    };
    let systems: Vec<&str> = {
        let mut ss = Vec::new();
        for m in rows {
            if !ss.contains(&m.system) {
                ss.push(m.system);
            }
        }
        ss
    };
    print!("{:24}", "");
    for q in &queries {
        print!("{q:>width$}");
    }
    println!();
    for s in &systems {
        print!("{s:24}");
        for q in &queries {
            let m = rows
                .iter()
                .find(|m| m.system == *s && m.query == *q)
                .expect("measured");
            print!("{:>width$}", f(m));
        }
        println!();
    }
}
