//! Differential query-fuzzing and fault-injection gate.
//!
//! Three modes, all deterministic from their seeds and watchdog-guarded
//! (a hung engine fails the run instead of wedging CI):
//!
//! * `--check` — generates `HEPQUERY_FUZZ_PLANS` (default 200) seeded
//!   random plans over the CMS schema and executes every one on all seven
//!   systems under test (BigQuery/Presto/Athena SQL, JSONiq, RDataFrame,
//!   the compiled physical-IR executor, and the compiled executor on the
//!   morsel-parallel worker pool with a plan-derived steal seed),
//!   comparing each histogram **bin-for-bin** against the interpreter
//!   oracle. Any divergence or fault-free failure exits non-zero — in
//!   particular, any parallel-vs-serial compiled divergence. A second
//!   pruning arm (`HEPQUERY_FUZZ_PRUNE_PLANS`, default 60) re-runs each
//!   plan with zone-map pruning forced off and on and requires both to
//!   match the oracle, so an unsound zone map cannot hide.
//! * `--faults` — sweeps every fault class over a smaller plan budget
//!   (persistent faults must surface typed `ScanError`s, transient faults
//!   must converge to the oracle under bounded retry), then drives a
//!   [`query_service::QueryService`] with a transient injector across the
//!   (system × query) grid and asserts every request completes with the
//!   fault-free histogram while `retried > 0` shows the retry path ran.
//!   A third phase re-runs the storm against a service with **morsel
//!   recovery** on and asserts compiled-parallel requests absorb every
//!   fault below the attempt boundary: whole-query retries drop to zero
//!   while the per-response recovery counters show the morsel surface
//!   fired.
//! * default — both, with the same budgets.
//!
//! Scale knobs: `HEPQUERY_EVENTS`, `HEPQUERY_ROW_GROUP`,
//! `HEPQUERY_FUZZ_SEED`, `HEPQUERY_FUZZ_PLANS`,
//! `HEPQUERY_FUZZ_FAULT_PLANS`, `HEPQUERY_FUZZ_WATCHDOG`.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use chaos::{differential_fuzz, fault_sweep, pruning_differential_fuzz};
use hep_model::generator::build_dataset;
use hep_model::{DatasetSpec, Event};
use hepbench_core::adapters::ExecEnv;
use hepbench_core::runner::{execute_engine, System};
use hepbench_core::ALL_QUERIES;
use nf2_columnar::{FaultConfig, FaultInjector, Table};
use query_service::{QueryRequest, QueryService, ServiceConfig};

/// Systems the service-level fault phase drives (one per
/// language/dialect, like `serve_smoke`).
const SYSTEMS: &[System] = &[
    System::BigQuery,
    System::AthenaV2,
    System::Presto,
    System::Rumble,
    System::RDataFrame,
];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn dataset() -> (Vec<Event>, Arc<Table>) {
    let (events, table) = build_dataset(DatasetSpec {
        n_events: env_u64("HEPQUERY_EVENTS", 2_000) as usize,
        row_group_size: env_u64("HEPQUERY_ROW_GROUP", 256) as usize,
        seed: env_u64("HEPQUERY_SEED", 0xAD1B70),
    });
    (events, Arc::new(table))
}

/// Differential phase: every plan × every engine vs the oracle.
fn run_diff(events: &[Event], table: &Arc<Table>) -> u32 {
    let seed = env_u64("HEPQUERY_FUZZ_SEED", 0x5EED);
    let n_plans = env_u64("HEPQUERY_FUZZ_PLANS", 200) as usize;
    eprintln!("# fuzz_diff --check: {n_plans} plans, seed {seed:#x}");
    let report = differential_fuzz(seed, n_plans, events, table);
    for d in &report.divergences {
        eprintln!("FAIL: {d}");
    }
    eprintln!(
        "  {} plans x {} engines = {} comparisons, {} divergences",
        report.plans,
        chaos::ALL_ENGINES.len(),
        report.checks,
        report.divergences.len()
    );
    if report.passed() {
        eprintln!("# differential fuzz OK");
        0
    } else {
        report.divergences.len() as u32
    }
}

/// Pruning arm of the differential phase: every plan × every engine with
/// zone-map pruning forced off and on — both runs must match the oracle
/// bin-for-bin, so a zone map that over-prunes cannot hide.
fn run_pruning_diff(events: &[Event], table: &Arc<Table>) -> u32 {
    let seed = env_u64("HEPQUERY_FUZZ_SEED", 0x5EED);
    let n_plans = env_u64("HEPQUERY_FUZZ_PRUNE_PLANS", 60) as usize;
    eprintln!("# fuzz_diff --check (pruning arm): {n_plans} plans, seed {seed:#x}");
    let report = pruning_differential_fuzz(seed, n_plans, events, table);
    for d in &report.divergences {
        eprintln!("FAIL: {d}");
    }
    eprintln!(
        "  {} plans x {} engines x 2 pruning modes, {} divergences",
        report.plans,
        chaos::ALL_ENGINES.len(),
        report.divergences.len()
    );
    if report.passed() {
        eprintln!("# pruning differential fuzz OK");
        0
    } else {
        report.divergences.len() as u32
    }
}

/// Fault phase 1: adapter-level sweep of every class on every engine.
fn run_fault_sweep(events: &[Event], table: &Arc<Table>) -> u32 {
    let seed = env_u64("HEPQUERY_FUZZ_SEED", 0x5EED);
    let n_plans = env_u64("HEPQUERY_FUZZ_FAULT_PLANS", 6) as usize;
    eprintln!("# fuzz_diff --faults: sweep over {n_plans} plans, seed {seed:#x}");
    let mut failures = 0;
    let mut injected = 0;
    for report in fault_sweep(seed, n_plans, events, table) {
        for v in &report.violations {
            eprintln!("FAIL: {v}");
        }
        eprintln!(
            "  {:<20} {} runs: {} clean, {} typed errors, {} retries",
            report.class.name(),
            report.runs,
            report.clean_results,
            report.typed_errors,
            report.retries
        );
        failures += report.violations.len() as u32;
        injected += report.typed_errors + report.retries;
    }
    if injected == 0 {
        eprintln!("FAIL: fault sweep never injected a fault — dead injector?");
        failures += 1;
    }
    failures
}

/// Fault phase 2: service-level retry. Every request across the
/// (system × query) grid must complete with the fault-free histogram,
/// and the retry counter must show the transient faults actually fired.
fn run_service_faults(table: &Arc<Table>) -> u32 {
    let seed = env_u64("HEPQUERY_FUZZ_SEED", 0x5EED);
    let injector = Arc::new(FaultInjector::new(FaultConfig {
        p_io: 0.04,
        p_checksum: 0.02,
        p_truncated: 0.02,
        transient_attempts: 1,
        ..FaultConfig::off(seed)
    }));
    let service = QueryService::start(
        table.clone(),
        ServiceConfig {
            n_workers: 4,
            result_cache: false,
            fault_injector: Some(injector.clone()),
            max_retries: 64,
            retry_backoff: Duration::from_micros(200),
            ..ServiceConfig::default()
        },
    );
    let mut failures = 0;
    for &system in SYSTEMS {
        for &query in ALL_QUERIES {
            let served = match service.execute(QueryRequest::new("chaos", system, query)) {
                Ok(resp) => resp,
                Err(e) => {
                    eprintln!(
                        "FAIL: {} {} did not survive transient faults: {e}",
                        system.name(),
                        query.name()
                    );
                    failures += 1;
                    continue;
                }
            };
            let clean =
                execute_engine(system, table, query, &ExecEnv::seed()).expect("fault-free run");
            if !served.histogram.counts_equal(&clean.histogram) {
                eprintln!(
                    "FAIL: {} {} served a wrong histogram under faults",
                    system.name(),
                    query.name()
                );
                failures += 1;
            }
        }
    }
    let snap = service.stats();
    let counters = injector.counters();
    eprintln!(
        "  service: {} completed, {} failed, {} retries; injector {} errors, {} recovered",
        snap.completed,
        snap.failed,
        snap.retried,
        counters.errors(),
        counters.recovered
    );
    if snap.retried == 0 {
        eprintln!("FAIL: service never retried — transient faults did not fire");
        failures += 1;
    }
    if failures == 0 {
        eprintln!("# fault injection OK");
    }
    failures
}

/// Fault phase 3: the same transient storm against a service with
/// **morsel recovery** on. Compiled-parallel requests must absorb every
/// fault below the attempt boundary: zero whole-query retries, recovery
/// counters > 0, fault-free histograms.
fn run_service_morsel_recovery(table: &Arc<Table>) -> u32 {
    let seed = env_u64("HEPQUERY_FUZZ_SEED", 0x5EED);
    let injector = Arc::new(FaultInjector::new(FaultConfig {
        p_io: 0.15,
        transient_attempts: 1,
        ..FaultConfig::off(seed ^ 0x4ec0)
    }));
    let service = QueryService::start(
        table.clone(),
        ServiceConfig {
            n_workers: 2,
            result_cache: false,
            morsel_recovery: true,
            fault_injector: Some(injector.clone()),
            ..ServiceConfig::default()
        },
    );
    let mut failures = 0;
    let mut interventions = 0;
    // Q6 is the only query the SQL frontend lowers, and Presto/Athena
    // share the canonical template — the grid that actually reaches the
    // compiled-parallel morsel path.
    for &system in &[System::Presto, System::AthenaV2] {
        for query in [hepbench_core::QueryId::Q6a, hepbench_core::QueryId::Q6b] {
            let req = QueryRequest::new("chaos", system, query)
                .via_compiled()
                .with_parallel_workers(4);
            let served = match service.execute(req) {
                Ok(resp) => resp,
                Err(e) => {
                    eprintln!(
                        "FAIL: {} {} compiled-parallel did not recover at morsel level: {e}",
                        system.name(),
                        query.name()
                    );
                    failures += 1;
                    continue;
                }
            };
            let clean =
                execute_engine(system, table, query, &ExecEnv::seed()).expect("fault-free run");
            if !served.histogram.counts_equal(&clean.histogram) {
                eprintln!(
                    "FAIL: {} {} served a wrong histogram under morsel recovery",
                    system.name(),
                    query.name()
                );
                failures += 1;
            }
            interventions += served.stats.recovery.interventions();
        }
    }
    let snap = service.stats();
    eprintln!(
        "  morsel recovery: {} completed, {} whole-query retries, {} morsel interventions",
        snap.completed, snap.retried, interventions
    );
    // The whole point: transient faults that previously cost whole-query
    // retries are absorbed per morsel on the compiled-parallel path.
    if snap.retried != 0 {
        eprintln!(
            "FAIL: {} whole-query retries despite morsel recovery",
            snap.retried
        );
        failures += 1;
    }
    if interventions == 0 {
        eprintln!("FAIL: morsel recovery never intervened — faults not routed to morsels?");
        failures += 1;
    }
    if failures == 0 {
        eprintln!("# morsel-recovery service phase OK");
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let faults = args.iter().any(|a| a == "--faults");
    let both = !check && !faults;
    let watchdog = Duration::from_secs(env_u64("HEPQUERY_FUZZ_WATCHDOG", 600));
    let (done_tx, done_rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let (events, table) = dataset();
        let mut failures = 0;
        if check || both {
            failures += run_diff(&events, &table);
            failures += run_pruning_diff(&events, &table);
        }
        if faults || both {
            failures += run_fault_sweep(&events, &table);
            failures += run_service_faults(&table);
            failures += run_service_morsel_recovery(&table);
        }
        let _ = done_tx.send(failures);
    });
    let failures = match done_rx.recv_timeout(watchdog) {
        Ok(f) => f,
        Err(_) => {
            eprintln!(
                "FAIL: fuzz_diff did not finish within {}s — hung engine?",
                watchdog.as_secs()
            );
            std::process::exit(1);
        }
    };
    worker.join().expect("fuzz worker");
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
