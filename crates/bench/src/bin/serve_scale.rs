//! Open-loop serving scale study (ROADMAP item 4): heavy-tailed load,
//! zipfian tenants, and p99/p999 SLO gates.
//!
//! The harness self-calibrates the service's saturation capacity with a
//! short closed-loop run, derives an SLO from the calibrated tail
//! (4 × the p99 single-query latency of the zipfian mix), then sweeps
//! offered load across a multiplier grid **open-loop** — every request
//! timestamped with its intended bounded-Pareto arrival instant
//! ([`hepbench_bench::loadgen`]), so queue delay under overload is
//! charged to latency instead of silently slowing the generator down
//! (no coordinated omission). Each grid point runs twice: once with
//! every overload knob off (no deadline, no shedding, no breakers, no
//! hedging — the queue just grows) and once with the knobs on, which is
//! exactly the contrast the gate asserts.
//!
//! Modes:
//!
//! * default — full multiplier grid (0.25×…4× capacity), tens of
//!   thousands of requests per point over thousands of tenants; merges
//!   a `"serve_scale"` section into `BENCH_smoke.json` and writes the
//!   full goodput/latency curves to `serve_scale_curves.json` (or
//!   `HEPQUERY_SCALE_CURVES`).
//! * `--check` — reduced request budget under a watchdog (a deadlock
//!   fails the run instead of hanging CI). Gates: every submitted
//!   request accounted for exactly once, client-side and service-side
//!   completion accounting agree, zero engine failures, **knobs-on
//!   goodput ≥ knobs-off goodput at the overload point**, and the
//!   knobs-on SLO compliance ≥ 99 % below the knee. Non-zero exit on
//!   any violation.
//!
//! Scale knobs: `HEPQUERY_EVENTS`, `HEPQUERY_ROW_GROUP`, `HEPQUERY_SEED`,
//! `HEPQUERY_SCALE_REQS` (requests per grid point),
//! `HEPQUERY_SCALE_TENANTS`, `HEPQUERY_SCALE_WORKERS`,
//! `HEPQUERY_SCALE_SUBMITTERS`, `HEPQUERY_SERVE_WATCHDOG` (seconds).

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hep_model::generator::build_dataset;
use hep_model::DatasetSpec;
use hepbench_bench::loadgen::{
    query_mix, run_open_loop, LoadConfig, OpenLoopOutcome, Schedule, SplitMix64, Zipf,
};
use hepbench_bench::merge_section;
use nf2_columnar::Table;
use query_service::{BreakerConfig, HedgeConfig, QueryRequest, QueryService, ServiceConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn spec(default_events: usize) -> DatasetSpec {
    let n_events = env_usize("HEPQUERY_EVENTS", default_events);
    DatasetSpec {
        n_events,
        row_group_size: env_usize("HEPQUERY_ROW_GROUP", 256),
        seed: std::env::var("HEPQUERY_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0xAD1B70),
    }
}

/// The study's shared serving shape. The queue is effectively unbounded
/// so that *overload behaviour is the knobs' job*: with everything off
/// the backlog simply grows (the classic unprotected service), with the
/// knobs on the deadline/shedding/breaker/hedge machinery from the
/// overload-protection layer has to hold the SLO.
fn service_config(n_workers: usize, knobs_on: bool, slo: Duration) -> ServiceConfig {
    let base = ServiceConfig {
        n_workers,
        queue_depth: 1 << 20,
        // Every request pays real execution: a result cache would make
        // the 45-entry grid free after one pass and hide the knee.
        result_cache: false,
        intra_query_threads: 1,
        ..ServiceConfig::default()
    };
    if knobs_on {
        ServiceConfig {
            default_deadline: Some(slo.mul_f64(0.8)),
            load_shedding: true,
            breaker: Some(BreakerConfig::default()),
            hedge: Some(HedgeConfig {
                percentile: 0.95,
                min_delay: slo.mul_f64(0.5),
            }),
            ..base
        }
    } else {
        ServiceConfig {
            default_deadline: None,
            load_shedding: false,
            breaker: None,
            hedge: None,
            ..base
        }
    }
}

struct Calibration {
    /// Closed-loop saturation throughput of the zipfian mix (QPS).
    capacity_qps: f64,
    /// The study's SLO: 4 × the calibrated p99, floored at 25 ms.
    slo: Duration,
    /// Mean single-query latency of the mix (seconds).
    mean_seconds: f64,
}

/// Closed-loop capacity probe: `n_workers` clients × the zipfian mix,
/// one in flight per worker, so throughput ≈ saturation capacity and
/// the completed-latency histogram ≈ the execution-time distribution.
fn calibrate(table: &Arc<Table>, n_workers: usize, samples: usize, seed: u64) -> Calibration {
    let service = QueryService::start(
        table.clone(),
        service_config(n_workers, false, Duration::ZERO),
    );
    let mix = query_mix();
    let zipf = Zipf::new(mix.len(), LoadConfig::default().mix_zipf_s);
    let mut rng = SplitMix64::new(seed ^ 0xCA11_B8A7E);
    let draws: Vec<usize> = (0..samples).map(|_| zipf.sample(rng.unit_f64())).collect();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for k in 0..n_workers.max(1) {
            let (draws, mix, service) = (&draws, &mix, &service);
            scope.spawn(move || {
                for &slot in draws.iter().skip(k).step_by(n_workers.max(1)) {
                    let (system, query) = mix[slot];
                    service
                        .execute(QueryRequest::new("calibrate", system, query))
                        .expect("calibration query");
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let hist = service
        .latency_histogram("completed")
        .expect("calibration produced completions");
    Calibration {
        capacity_qps: samples as f64 / wall,
        slo: Duration::from_secs_f64((4.0 * hist.quantile(0.99)).max(0.025)),
        mean_seconds: hist.mean(),
    }
}

/// One grid point's results.
struct Point {
    multiplier: f64,
    knobs_on: bool,
    offered_qps: f64,
    schedule_digest: u64,
    outcome: OpenLoopOutcome,
    /// Completions per the *service's* per-outcome histogram — must
    /// equal the client-side count (accounting cross-check).
    service_completed: u64,
    hedges_launched: u64,
    hedge_wins: u64,
    cost_per_1k_usd: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    table: &Arc<Table>,
    cal: &Calibration,
    multiplier: f64,
    knobs_on: bool,
    n_requests: usize,
    n_tenants: usize,
    n_workers: usize,
    n_submitters: usize,
    seed: u64,
) -> Point {
    let service = QueryService::start(table.clone(), service_config(n_workers, knobs_on, cal.slo));
    let offered_qps = multiplier * cal.capacity_qps;
    let cfg = LoadConfig {
        seed,
        n_requests,
        offered_qps,
        n_tenants,
        ..LoadConfig::default()
    };
    let schedule = Schedule::generate(&cfg);
    let outcome = run_open_loop(&service, &schedule, n_submitters, cal.slo);
    let metrics = service.metrics_snapshot();
    let service_completed = service
        .latency_histogram("completed")
        .map_or(0, |h| h.count());
    let cost_per_1k_usd = cloud_sim::cost_per_1k_queries(outcome.total_cost_usd, outcome.completed);
    eprintln!(
        "  {:>5.2}x knobs {:>3}: offered {:>7.1} qps, {} submitted, {} completed \
         ({} in SLO), {} shed, {} rejected, {} timed out, {} cancelled; \
         goodput {:>7.1} qps, p99 {:.1} ms, ${:.4}/1k",
        multiplier,
        if knobs_on { "on" } else { "off" },
        offered_qps,
        outcome.submitted,
        outcome.completed,
        outcome.within_slo,
        outcome.shedded,
        outcome.rejected,
        outcome.timed_out,
        outcome.cancelled,
        outcome.goodput_qps(),
        outcome.latency.quantile(0.99) * 1e3,
        cost_per_1k_usd,
    );
    Point {
        multiplier,
        knobs_on,
        offered_qps,
        schedule_digest: schedule.digest(),
        outcome,
        service_completed,
        hedges_launched: metrics.counter("hedges_launched"),
        hedge_wins: metrics.counter("hedge_wins"),
        cost_per_1k_usd,
    }
}

fn point_json(p: &Point) -> String {
    let o = &p.outcome;
    format!(
        "{{ \"multiplier\": {:.2}, \"knobs\": \"{}\", \"offered_qps\": {:.2}, \
         \"schedule_digest\": \"{:#018x}\", \"submitted\": {}, \"completed\": {}, \
         \"within_slo\": {}, \"shedded\": {}, \"rejected\": {}, \"breaker_rejected\": {}, \
         \"timed_out\": {}, \"cancelled\": {}, \"failed\": {}, \"goodput_qps\": {:.2}, \
         \"p50_seconds\": {:.6}, \"p99_seconds\": {:.6}, \"p999_seconds\": {:.6}, \
         \"hedges_launched\": {}, \"hedge_wins\": {}, \"total_cost_usd\": {:.6}, \
         \"cost_per_1k_usd\": {:.6}, \"wall_seconds\": {:.3} }}",
        p.multiplier,
        if p.knobs_on { "on" } else { "off" },
        p.offered_qps,
        p.schedule_digest,
        o.submitted,
        o.completed,
        o.within_slo,
        o.shedded,
        o.rejected,
        o.breaker_rejected,
        o.timed_out,
        o.cancelled,
        o.failed,
        o.goodput_qps(),
        o.latency.quantile(0.5),
        o.latency.quantile(0.99),
        o.latency.quantile(0.999),
        p.hedges_launched,
        p.hedge_wins,
        o.total_cost_usd,
        p.cost_per_1k_usd,
        o.wall_seconds,
    )
}

fn emit(spec: &DatasetSpec, n_tenants: usize, cal: &Calibration, points: &[Point]) {
    let rows: Vec<String> = points.iter().map(point_json).collect();
    let payload = format!(
        "{{\n    \"events\": {},\n    \"tenants\": {},\n    \"capacity_qps\": {:.2},\n    \
         \"slo_seconds\": {:.6},\n    \"mean_exec_seconds\": {:.6},\n    \"points\": [\n      {}\n    ]\n  }}",
        spec.n_events,
        n_tenants,
        cal.capacity_qps,
        cal.slo.as_secs_f64(),
        cal.mean_seconds,
        rows.join(",\n      "),
    );
    let out = std::env::var("BENCH_SMOKE_OUT").unwrap_or_else(|_| "BENCH_smoke.json".to_string());
    merge_section(&out, "serve_scale", &payload);
    let curves = std::env::var("HEPQUERY_SCALE_CURVES")
        .unwrap_or_else(|_| "serve_scale_curves.json".to_string());
    if let Some(parent) = std::path::Path::new(&curves).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create curves dir");
        }
    }
    let standalone = format!(
        "{{\n  \"capacity_qps\": {:.2},\n  \"slo_seconds\": {:.6},\n  \"points\": [\n    {}\n  ]\n}}\n",
        cal.capacity_qps,
        cal.slo.as_secs_f64(),
        rows.join(",\n    "),
    );
    std::fs::write(&curves, standalone).expect("write curves json");
    eprintln!("# wrote goodput/latency curves to {curves}");
}

/// Runs the whole study: calibrate once, then one knobs-off and one
/// knobs-on replay per multiplier. Overload points (multiplier > 1) get
/// their request count raised so the backlog a knobs-off service builds
/// dwarfs the SLO — otherwise a short run under-states the damage.
fn sweep(
    table: &Arc<Table>,
    multipliers: &[f64],
    base_requests: usize,
    n_tenants: usize,
    cal: &Calibration,
) -> Vec<Point> {
    let n_workers = env_usize("HEPQUERY_SCALE_WORKERS", 4);
    let n_submitters = env_usize("HEPQUERY_SCALE_SUBMITTERS", 4);
    let seed = env_usize("HEPQUERY_SEED", 0xAD1B70) as u64;
    let mut points = Vec::new();
    for &m in multipliers {
        let n_requests = if m > 1.0 {
            let backlog_bound = (10.0 * cal.capacity_qps * cal.slo.as_secs_f64()).ceil() as usize;
            backlog_bound.clamp(base_requests, base_requests.max(24_000))
        } else {
            base_requests
        };
        for knobs_on in [false, true] {
            points.push(run_point(
                table,
                cal,
                m,
                knobs_on,
                n_requests,
                n_tenants,
                n_workers,
                n_submitters,
                seed,
            ));
        }
    }
    points
}

fn run_default() {
    let spec = spec(4_096);
    let n_tenants = env_usize("HEPQUERY_SCALE_TENANTS", 2_000);
    let base_requests = env_usize("HEPQUERY_SCALE_REQS", 20_000);
    eprintln!(
        "# serve_scale: {} events, {} tenants, {} requests per point",
        spec.n_events, n_tenants, base_requests
    );
    let (_, table) = build_dataset(spec);
    let table = Arc::new(table);
    let n_workers = env_usize("HEPQUERY_SCALE_WORKERS", 4);
    let cal = calibrate(&table, n_workers, 1_000, spec.seed);
    eprintln!(
        "# calibrated: capacity {:.1} qps, mean {:.2} ms, SLO {:.1} ms",
        cal.capacity_qps,
        cal.mean_seconds * 1e3,
        cal.slo.as_secs_f64() * 1e3
    );
    let points = sweep(
        &table,
        &[0.25, 0.5, 1.0, 2.0, 4.0],
        base_requests,
        n_tenants,
        &cal,
    );
    emit(&spec, n_tenants, &cal, &points);
}

/// CI gate (see module docs for the exact assertions).
fn run_check() -> i32 {
    let spec = spec(1_000);
    let n_tenants = env_usize("HEPQUERY_SCALE_TENANTS", 1_000);
    let base_requests = env_usize("HEPQUERY_SCALE_REQS", 800);
    eprintln!(
        "# serve_scale --check: {} events, {} tenants, {} requests per point",
        spec.n_events, n_tenants, base_requests
    );
    let (done_tx, done_rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let (_, table) = build_dataset(spec);
        let table = Arc::new(table);
        let n_workers = env_usize("HEPQUERY_SCALE_WORKERS", 4);
        let cal = calibrate(&table, n_workers, 400, spec.seed);
        eprintln!(
            "# calibrated: capacity {:.1} qps, mean {:.2} ms, SLO {:.1} ms",
            cal.capacity_qps,
            cal.mean_seconds * 1e3,
            cal.slo.as_secs_f64() * 1e3
        );
        let points = sweep(&table, &[0.4, 3.0], base_requests, n_tenants, &cal);
        emit(&spec, n_tenants, &cal, &points);
        let _ = done_tx.send((cal, points));
    });
    let watchdog = Duration::from_secs(env_usize("HEPQUERY_SERVE_WATCHDOG", 600) as u64);
    let Ok((cal, points)) = done_rx.recv_timeout(watchdog) else {
        eprintln!(
            "FAIL: scale sweep did not finish within {}s — deadlock under load?",
            watchdog.as_secs()
        );
        return 1;
    };
    worker.join().expect("sweep thread");

    let mut failures = 0;
    for p in &points {
        let o = &p.outcome;
        let label = format!(
            "{:.2}x knobs {}",
            p.multiplier,
            if p.knobs_on { "on" } else { "off" }
        );
        if o.accounted() != o.submitted {
            eprintln!(
                "FAIL [{label}]: {} submitted but {} accounted for",
                o.submitted,
                o.accounted()
            );
            failures += 1;
        }
        if p.service_completed != o.completed {
            eprintln!(
                "FAIL [{label}]: service histogram says {} completed, clients saw {}",
                p.service_completed, o.completed
            );
            failures += 1;
        }
        if o.failed > 0 {
            eprintln!("FAIL [{label}]: {} engine failures", o.failed);
            failures += 1;
        }
    }
    let top = points.iter().map(|p| p.multiplier).fold(f64::MIN, f64::max);
    let bottom = points.iter().map(|p| p.multiplier).fold(f64::MAX, f64::min);
    let at = |m: f64, knobs: bool| {
        points
            .iter()
            .find(|p| p.multiplier == m && p.knobs_on == knobs)
            .expect("grid point")
    };
    let (over_on, over_off) = (at(top, true), at(top, false));
    if over_on.outcome.goodput_qps() < over_off.outcome.goodput_qps() {
        eprintln!(
            "FAIL: at {top:.2}x offered load, knobs-on goodput {:.1} qps < knobs-off {:.1} qps",
            over_on.outcome.goodput_qps(),
            over_off.outcome.goodput_qps()
        );
        failures += 1;
    }
    if over_on.outcome.within_slo == 0 {
        eprintln!("FAIL: knobs-on served nothing within the SLO under overload");
        failures += 1;
    }
    let knee = at(bottom, true);
    if knee.outcome.completed == 0
        || (knee.outcome.within_slo as f64) < 0.99 * knee.outcome.completed as f64
    {
        eprintln!(
            "FAIL: below the knee ({bottom:.2}x), knobs-on SLO compliance {}/{} < 99%",
            knee.outcome.within_slo, knee.outcome.completed
        );
        failures += 1;
    }
    eprintln!(
        "  SLO {:.1} ms: overload goodput on/off = {:.1}/{:.1} qps; \
         knee p99 {:.1} ms, compliance {}/{}",
        cal.slo.as_secs_f64() * 1e3,
        over_on.outcome.goodput_qps(),
        over_off.outcome.goodput_qps(),
        knee.outcome.latency.quantile(0.99) * 1e3,
        knee.outcome.within_slo,
        knee.outcome.completed,
    );
    if failures == 0 {
        eprintln!("# serve_scale --check OK");
        0
    } else {
        failures
    }
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        std::process::exit(run_check());
    }
    run_default();
}
