//! Regenerates **Figure 2**: end-to-end running time vs data-set size.
//!
//! The paper sweeps 1000·2^i events (i = 0..15) plus the full data set; we
//! sweep power-of-two prefixes of the generated data set (the columnar
//! `Table::head` makes the prefixes row-group-aligned, preserving the
//! parallelization-granularity effects that create the paper's plateau).

use std::sync::Arc;

use hepbench_bench::{dataset, fmt_secs};
use hepbench_core::adapters::ExecEnv;
use hepbench_core::runner::{run_one, System};
use hepbench_core::QueryId;

/// The systems of Figure 2, with their best instances (paper §4.2:
/// m5d.12xlarge for RDataFrame, m5d.24xlarge otherwise).
fn systems() -> Vec<(System, Option<&'static cloud_sim::InstanceType>)> {
    let big = cloud_sim::instances::by_name("m5d.24xlarge");
    let twelve = cloud_sim::instances::by_name("m5d.12xlarge");
    vec![
        (System::BigQuery, None),
        (System::BigQueryExternal, None),
        (System::AthenaV2, None),
        (System::AthenaV1, None),
        (System::Presto, big),
        (System::Rumble, big),
        (System::RDataFrame, twelve),
    ]
}

fn main() {
    let (_, table) = dataset();
    let env = ExecEnv::seed();
    let queries = [
        QueryId::Q1,
        QueryId::Q4,
        QueryId::Q5,
        QueryId::Q6a,
        QueryId::Q8,
    ];
    println!("Figure 2 — running time vs data-set size");
    for q in queries {
        println!();
        println!("== {}", q.name());
        // Size sweep: powers of two up to the full set.
        let mut sizes = Vec::new();
        let mut n = 1024usize;
        while n < table.n_rows() {
            sizes.push(n);
            n *= 4;
        }
        sizes.push(table.n_rows());
        print!("{:24}", "events:");
        for s in &sizes {
            print!("{s:>12}");
        }
        println!();
        for (system, inst) in systems() {
            print!("{:24}", system.name());
            for s in &sizes {
                let head = Arc::new(table.head(*s));
                let m = run_one(system, inst, &head, q, &env).expect("run");
                print!("{:>12}", fmt_secs(m.wall_seconds));
            }
            println!();
        }
    }
    println!();
    println!("shapes to check against the paper (Figure 2): a plateau once data");
    println!("outgrows one row group (parallelism is across row groups only); QaaS");
    println!("times nearly constant; self-managed times rising again once there are");
    println!("more row groups than cores.");
}
