//! Regenerates **Figure 2** (running time vs data-set size) and the
//! intra-query **scaling study** over the morsel-parallel compiled
//! executor (paper Figure 4c: per-core throughput vs core count).
//!
//! Two modes:
//!
//! * Default — two studies back to back:
//!   1. The paper's Figure 2 sweep: power-of-two prefixes of the data
//!      set through every system's calibrated paper deployment
//!      (`Table::head` keeps prefixes row-group-aligned, preserving the
//!      parallelization-granularity plateau).
//!   2. The scaling study: sharded data sets at ≥3 scales
//!      ([`SHARD_LADDER`]) × ≥3 worker counts ([`WORKERS`]) over three
//!      compiled plans (two scan-bound, one compute-bound trijet), each
//!      point checked **byte-identical** to the serial executor, with
//!      events/s, per-core events/s, steal counts, and the simulated
//!      self-managed cost on the smallest m5d instance with enough
//!      cores. The study is merged as a `"scaling"` section into
//!      `BENCH_SMOKE_OUT` (default `BENCH_smoke.json`).
//!
//! * `--check` — the CI gate, watchdog-guarded
//!   (`HEPQUERY_SCALING_WATCHDOG`, default 600 s). Always enforced:
//!   byte-identity of every (scale × plan × workers × steal-seed) point
//!   against serial execution, and an end-to-end engine check that the
//!   SQL engine at 4 workers reproduces the serial histogram *and*
//!   `ScanStats` (no double-billed morsels). On hosts with ≥
//!   [`MIN_CORES_FOR_SPEEDUP_GATES`] cores it additionally requires ≥
//!   [`MIN_PAR_SPEEDUP`]× speedup at 4 workers on the compute-bound
//!   trijet plan and near-monotone non-increasing wall times on the
//!   scan-bound plans; on smaller hosts those two gates are skipped
//!   loudly (the determinism gates still run).
//!
//! Scale knobs: `HEPQUERY_EVENTS` (events **per shard**),
//! `HEPQUERY_ROW_GROUP`, `HEPQUERY_SEED`, `HEPQUERY_SCALING_WATCHDOG`.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use engine_sql::{Dialect, SqlOptions};
use exec_par::ParOptions;
use hep_model::{build_sharded_table, ShardedSpec};
use hepbench_bench::{dataset, fmt_secs, fmt_usd};
use hepbench_core::adapters::{run_sql_env, ExecEnv};
use hepbench_core::runner::{run_one, System};
use hepbench_core::QueryId;
use nested_value::Path;
use nf2_columnar::{ScalarPredicate, SelCmp, SelValue, Table};
use physical_ir::{ComputeNode, FilterNode, PhysPlan, TrijetCompute, TrijetPlot};
use physics::HistSpec;

/// Shard counts of the scaling ladder (data volume = shards × events
/// per shard); three scales as in the paper's size sweeps.
const SHARD_LADDER: [usize; 3] = [1, 2, 4];

/// Worker counts of each scaling curve.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Timed runs per point; the minimum wall time is kept.
const RUNS: usize = 3;

/// Steal seeds the `--check` byte-identity sweep runs each point under.
const STEAL_SEEDS: [u64; 2] = [0x5EED, u64::MAX];

/// The 4-worker speedup the compute-bound plan must reach in `--check`.
const MIN_PAR_SPEEDUP: f64 = 2.0;

/// Wall times on scan-bound plans may rise by at most this factor per
/// added-worker step in `--check` (slack for scheduler noise on top of
/// "monotone non-increasing").
const MONOTONE_SLACK: f64 = 1.15;

/// Speedup/monotonicity gates only run with at least this many cores;
/// the container running the gate must actually have the parallelism
/// the gate asserts.
const MIN_CORES_FOR_SPEEDUP_GATES: usize = 4;

/// One compiled plan of the scaling study.
struct ScalePlan {
    name: &'static str,
    /// Scan-bound plans gate on monotone wall times; the compute-bound
    /// trijet plan gates on absolute speedup.
    scan_bound: bool,
    plan: PhysPlan,
}

/// The three studied plans: two scan-bound fills (Q1/Q2-shaped) and the
/// compute-bound Q6 trijet kernel.
fn plans() -> Vec<ScalePlan> {
    vec![
        ScalePlan {
            name: "q1-metpt",
            scan_bound: true,
            plan: PhysPlan {
                filters: vec![FilterNode::Scalar(ScalarPredicate {
                    leaf: Path::parse("MET.pt"),
                    cmp: SelCmp::Gt,
                    value: SelValue::Float(0.0),
                })],
                compute: ComputeNode::ScalarFill {
                    leaf: Path::parse("MET.pt"),
                },
                spec: HistSpec::new(100, 0.0, 200.0),
            },
        },
        ScalePlan {
            name: "q2-jetpt",
            scan_bound: true,
            plan: PhysPlan {
                filters: vec![],
                compute: ComputeNode::ListFill {
                    leaf: Path::parse("Jet.pt"),
                    elem: None,
                },
                spec: HistSpec::new(100, 15.0, 60.0),
            },
        },
        ScalePlan {
            name: "q6-trijet",
            scan_bound: false,
            plan: PhysPlan {
                filters: vec![FilterNode::ListCount {
                    leaf: Path::parse("Jet.pt"),
                    elem: None,
                    cmp: SelCmp::Ge,
                    count: 3,
                }],
                compute: ComputeNode::Trijet(TrijetCompute {
                    pt: Path::parse("Jet.pt"),
                    eta: Path::parse("Jet.eta"),
                    phi: Path::parse("Jet.phi"),
                    mass: Path::parse("Jet.mass"),
                    btag: Path::parse("Jet.btag"),
                    top_mass: 172.5,
                    plot: TrijetPlot::Pt,
                }),
                spec: HistSpec::new(100, 15.0, 40.0),
            },
        },
    ]
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The sharded base spec: `HEPQUERY_EVENTS` is the per-shard event
/// count so the ladder scales data volume without changing per-shard
/// content (shard seeds are shard-count-independent).
fn sharded_spec(default_events_per_shard: usize) -> ShardedSpec {
    let events_per_shard = env_usize("HEPQUERY_EVENTS", default_events_per_shard);
    ShardedSpec {
        events_per_shard,
        shards: 1,
        row_group_size: env_usize("HEPQUERY_ROW_GROUP", (events_per_shard / 32).max(1)),
        seed: env_usize("HEPQUERY_SEED", 0xAD1B70) as u64,
    }
}

/// One measured point of the scaling study.
struct ScalePoint {
    query: &'static str,
    scan_bound: bool,
    shards: usize,
    events: usize,
    workers: usize,
    effective_workers: usize,
    wall_seconds: f64,
    events_per_sec: f64,
    events_per_sec_per_core: f64,
    morsels: u64,
    steals: u64,
    instance: &'static str,
    cost_usd: f64,
}

/// Smallest m5d instance with at least `workers` physical cores (the
/// self-managed deployment the point's cost is simulated on).
fn instance_for(workers: usize) -> &'static cloud_sim::InstanceType {
    cloud_sim::instances::M5D_CATALOG
        .iter()
        .find(|i| i.cores >= workers)
        .unwrap_or_else(|| cloud_sim::instances::M5D_CATALOG.last().expect("catalog"))
}

/// Runs one (plan × table × workers) point `RUNS` times, asserts every
/// run's bins are byte-identical to `serial`, and returns the
/// min-of-runs measurement.
fn measure_point(
    sp: &ScalePlan,
    table: &Arc<Table>,
    shards: usize,
    workers: usize,
    steal_seed: u64,
    serial: &[i64],
) -> ScalePoint {
    let opts = ParOptions {
        workers,
        steal_seed,
        recovery: None,
    };
    let mut wall = f64::INFINITY;
    let mut stats = exec_par::ParStats::default();
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let (bins, s) = exec_par::execute(
            &sp.plan,
            table,
            None,
            &obs::TraceCtx::disabled(),
            &obs::CancelToken::none(),
            None,
            &opts,
        )
        .expect("parallel execution");
        wall = wall.min(t0.elapsed().as_secs_f64());
        assert_eq!(
            bins, serial,
            "{}: parallel bins diverged from serial at {workers} workers (seed {steal_seed:#x})",
            sp.name
        );
        stats = s;
    }
    let events = table.n_rows();
    let inst = instance_for(workers);
    ScalePoint {
        query: sp.name,
        scan_bound: sp.scan_bound,
        shards,
        events,
        workers,
        effective_workers: stats.workers,
        wall_seconds: wall,
        events_per_sec: events as f64 / wall,
        events_per_sec_per_core: events as f64 / wall / stats.workers as f64,
        morsels: stats.morsels,
        steals: stats.steals,
        instance: inst.name,
        cost_usd: cloud_sim::pricing::self_managed_cost_usd(wall, inst),
    }
}

/// Runs the full scaling grid (ladder × plans × workers); every point
/// is byte-identity-checked against serial execution on the way.
fn run_grid(base: ShardedSpec, steal_seed: u64) -> Vec<ScalePoint> {
    let mut points = Vec::new();
    for shards in SHARD_LADDER {
        let spec = base.with_shards(shards);
        let table = Arc::new(build_sharded_table(spec));
        eprintln!(
            "# scale: {} shards x {} events = {} events, {} row groups",
            shards,
            spec.events_per_shard,
            table.n_rows(),
            table.row_groups().len()
        );
        for sp in plans() {
            let serial = physical_ir::execute(
                &sp.plan,
                &table,
                None,
                &obs::TraceCtx::disabled(),
                &obs::CancelToken::none(),
            )
            .expect("serial execution");
            for workers in WORKERS {
                let p = measure_point(&sp, &table, shards, workers, steal_seed, &serial);
                eprintln!(
                    "  {:10} w={:2} (eff {:2}): {:>10} wall, {:>12.0} ev/s, {:>12.0} ev/s/core, {:3} morsels, {:3} steals, {} {}",
                    p.query,
                    p.workers,
                    p.effective_workers,
                    fmt_secs(p.wall_seconds),
                    p.events_per_sec,
                    p.events_per_sec_per_core,
                    p.morsels,
                    p.steals,
                    p.instance,
                    fmt_usd(p.cost_usd),
                );
                points.push(p);
            }
        }
    }
    points
}

/// End-to-end determinism check through the SQL engine: 4 requested
/// workers must reproduce the serial histogram **and** `ScanStats`
/// (scan accounting is a serial pre-pass; a stolen morsel must never be
/// billed twice). Returns failure count.
fn check_engine_determinism(table: &Arc<Table>) -> usize {
    let mut failures = 0;
    for q in [QueryId::Q1, QueryId::Q5, QueryId::Q6a] {
        let run = |workers: Option<usize>| {
            run_sql_env(
                Dialect::presto(),
                table,
                q,
                SqlOptions::default(),
                &ExecEnv {
                    parallel_workers: workers,
                    ..ExecEnv::seed()
                },
            )
            .unwrap_or_else(|e| panic!("{e}"))
        };
        let serial = run(None);
        let par = run(Some(4));
        if !par.histogram.counts_equal(&serial.histogram) {
            eprintln!("# FAIL: {} histogram diverged at 4 workers", q.name());
            failures += 1;
        }
        if par.stats.scan != serial.stats.scan {
            eprintln!(
                "# FAIL: {} scan accounting perturbed by parallelism (double-billing?)",
                q.name()
            );
            failures += 1;
        }
    }
    if failures == 0 {
        eprintln!("# engine determinism: histograms and ScanStats identical at 4 workers");
    }
    failures
}

/// The `--check` speedup/monotonicity gates over a measured grid.
/// Byte-identity was already asserted while measuring.
fn check_gates(points: &[ScalePoint]) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < MIN_CORES_FOR_SPEEDUP_GATES {
        eprintln!(
            "# SKIP: host has {cores} core(s) < {MIN_CORES_FOR_SPEEDUP_GATES}; speedup and \
             monotonicity gates skipped (byte-identity and billing gates still enforced)"
        );
        return 0;
    }
    let mut failures = 0;
    let max_shards = *SHARD_LADDER.last().expect("ladder");
    // Gate 1: the compute-bound trijet plan must reach MIN_PAR_SPEEDUP
    // at 4 workers on the largest scale.
    let wall_at = |query: &str, workers: usize| {
        points
            .iter()
            .find(|p| p.query == query && p.shards == max_shards && p.workers == workers)
            .map(|p| p.wall_seconds)
            .expect("grid point")
    };
    let speedup = wall_at("q6-trijet", 1) / wall_at("q6-trijet", 4);
    if speedup < MIN_PAR_SPEEDUP {
        eprintln!(
            "# FAIL: q6-trijet speedup at 4 workers is {speedup:.2}x < {MIN_PAR_SPEEDUP:.1}x"
        );
        failures += 1;
    } else {
        eprintln!("# q6-trijet speedup at 4 workers: {speedup:.2}x (gate {MIN_PAR_SPEEDUP:.1}x)");
    }
    // Gate 2: scan-bound walls must be (near-)monotone non-increasing
    // in the worker count at every scale.
    for sp in plans().iter().filter(|s| s.scan_bound) {
        for shards in SHARD_LADDER {
            let walls: Vec<(usize, f64)> = points
                .iter()
                .filter(|p| p.query == sp.name && p.shards == shards)
                .map(|p| (p.workers, p.wall_seconds))
                .collect();
            for pair in walls.windows(2) {
                let (w0, t0) = pair[0];
                let (w1, t1) = pair[1];
                if t1 > t0 * MONOTONE_SLACK {
                    eprintln!(
                        "# FAIL: {} at {shards} shards: wall rose {} -> {} going {w0} -> {w1} \
                         workers (> {MONOTONE_SLACK:.2}x slack)",
                        sp.name,
                        fmt_secs(t0),
                        fmt_secs(t1)
                    );
                    failures += 1;
                }
            }
        }
    }
    if failures == 0 {
        eprintln!("# scan-bound wall times monotone non-increasing within {MONOTONE_SLACK:.2}x");
    }
    failures
}

/// Merges `payload` under `"key"` into the smoke JSON at `path`,
/// replacing an existing section of the same key.
fn merge_section(path: &str, key: &str, payload: &str) {
    let content = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
    let marker = format!(",\n  \"{key}\":");
    let base = if let Some(pos) = content.find(&marker) {
        content[..pos].to_string()
    } else {
        let mut c = content.trim_end().to_string();
        if c.ends_with('}') {
            c.pop();
        }
        c.trim_end().to_string()
    };
    let sep = if base.trim_end().ends_with('{') {
        ""
    } else {
        ","
    };
    let json = format!("{base}{sep}\n  \"{key}\": {payload}\n}}\n");
    std::fs::write(path, &json).expect("write smoke json");
    eprintln!("# merged {key} section into {path}");
}

/// Serializes the scaling grid as the `"scaling"` BENCH section.
fn scaling_json(base: ShardedSpec, points: &[ScalePoint]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "    \"events_per_shard\": {}, \"row_group_size\": {}, \"seed\": {}, \"runs_per_point\": {RUNS},\n",
        base.events_per_shard, base.row_group_size, base.seed
    ));
    s.push_str("    \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "      {{ \"query\": \"{}\", \"scan_bound\": {}, \"shards\": {}, \"events\": {}, \
             \"intra_query_threads\": {}, \"effective_workers\": {}, \"wall_seconds\": {:.6}, \
             \"events_per_sec\": {:.1}, \"events_per_sec_per_core\": {:.1}, \"morsels\": {}, \
             \"steals\": {}, \"instance\": \"{}\", \"cost_usd\": {:.8} }}{}\n",
            p.query,
            p.scan_bound,
            p.shards,
            p.events,
            p.workers,
            p.effective_workers,
            p.wall_seconds,
            p.events_per_sec,
            p.events_per_sec_per_core,
            p.morsels,
            p.steals,
            p.instance,
            p.cost_usd,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str("    ]\n  }");
    s
}

/// The systems of Figure 2, with their best instances (paper §4.2:
/// m5d.12xlarge for RDataFrame, m5d.24xlarge otherwise).
fn systems() -> Vec<(System, Option<&'static cloud_sim::InstanceType>)> {
    let big = cloud_sim::instances::by_name("m5d.24xlarge");
    let twelve = cloud_sim::instances::by_name("m5d.12xlarge");
    vec![
        (System::BigQuery, None),
        (System::BigQueryExternal, None),
        (System::AthenaV2, None),
        (System::AthenaV1, None),
        (System::Presto, big),
        (System::Rumble, big),
        (System::RDataFrame, twelve),
    ]
}

/// The paper's Figure 2 table: running time vs data-set size for every
/// calibrated paper deployment.
fn figure2_table() {
    let (_, table) = dataset();
    let env = ExecEnv::seed();
    let queries = [
        QueryId::Q1,
        QueryId::Q4,
        QueryId::Q5,
        QueryId::Q6a,
        QueryId::Q8,
    ];
    println!("Figure 2 — running time vs data-set size");
    for q in queries {
        println!();
        println!("== {}", q.name());
        // Size sweep: powers of two up to the full set.
        let mut sizes = Vec::new();
        let mut n = 1024usize;
        while n < table.n_rows() {
            sizes.push(n);
            n *= 4;
        }
        sizes.push(table.n_rows());
        print!("{:24}", "events:");
        for s in &sizes {
            print!("{s:>12}");
        }
        println!();
        for (system, inst) in systems() {
            print!("{:24}", system.name());
            for s in &sizes {
                let head = Arc::new(table.head(*s));
                let m = run_one(system, inst, &head, q, &env).expect("run");
                print!("{:>12}", fmt_secs(m.wall_seconds));
            }
            println!();
        }
    }
    println!();
    println!("shapes to check against the paper (Figure 2): a plateau once data");
    println!("outgrows one row group (parallelism is across row groups only); QaaS");
    println!("times nearly constant; self-managed times rising again once there are");
    println!("more row groups than cores.");
}

/// The CI gate body; returns the failure count.
fn check(base: ShardedSpec) -> usize {
    eprintln!(
        "# fig2_scaling --check: {} events/shard, shards {:?}, workers {:?}, row group {}",
        base.events_per_shard, SHARD_LADDER, WORKERS, base.row_group_size
    );
    let mut failures = 0;
    // Byte-identity under two adversarial steal seeds (asserted inside
    // the grid runs): the first grid exercises one steal schedule purely
    // for identity, the second supplies the measured points the
    // speedup/monotonicity gates run on.
    run_grid(base, STEAL_SEEDS[0]);
    let points = run_grid(base, STEAL_SEEDS[1]);
    failures += check_gates(&points);
    let table = Arc::new(build_sharded_table(
        base.with_shards(*SHARD_LADDER.last().expect("ladder")),
    ));
    failures += check_engine_determinism(&table);
    failures
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    if check_mode {
        let base = sharded_spec(2_048);
        let watchdog = Duration::from_secs(
            std::env::var("HEPQUERY_SCALING_WATCHDOG")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(600),
        );
        let (done_tx, done_rx) = mpsc::channel();
        let worker = std::thread::spawn(move || {
            let _ = done_tx.send(check(base));
        });
        let failures = match done_rx.recv_timeout(watchdog) {
            Ok(f) => f,
            Err(_) => {
                eprintln!(
                    "FAIL: fig2_scaling --check did not finish within {}s — hung worker pool?",
                    watchdog.as_secs()
                );
                std::process::exit(1);
            }
        };
        worker.join().expect("check worker");
        if failures > 0 {
            eprintln!("# FAIL: {failures} scaling gate(s) not met");
            std::process::exit(1);
        }
        eprintln!("# OK: parallel execution deterministic and within the scaling gates");
        return;
    }
    // Default: the scaling study first (it also emits the BENCH
    // section), then the paper's Figure 2 table.
    let base = sharded_spec(16_384);
    eprintln!(
        "# scaling study: {} events/shard, shards {:?}, workers {:?}, row group {}",
        base.events_per_shard, SHARD_LADDER, WORKERS, base.row_group_size
    );
    let points = run_grid(base, 0x5EED);
    let table = Arc::new(build_sharded_table(
        base.with_shards(*SHARD_LADDER.last().expect("ladder")),
    ));
    if check_engine_determinism(&table) > 0 {
        std::process::exit(1);
    }
    let out = std::env::var("BENCH_SMOKE_OUT").unwrap_or_else(|_| "BENCH_smoke.json".to_string());
    merge_section(&out, "scaling", &scaling_json(base, &points));
    println!();
    figure2_table();
}
