//! Concurrent-serving smoke harness: drives a [`query_service::QueryService`]
//! with a mixed multi-tenant workload and reports QPS, latency percentiles
//! and cache hit rates.
//!
//! Three modes:
//!
//! * default — 32 client threads, each issuing a stream of requests drawn
//!   from (system × ADL query) round-robin under tenants `t0..t3`; merges
//!   a `"serving"` section into `BENCH_smoke.json` next to the per-engine
//!   numbers `perf_smoke` writes.
//! * `--check` — small data set, watchdog-guarded (a stuck admission queue
//!   fails the run instead of hanging CI), asserts that repeated queries
//!   hit the result cache and that every submitted request is accounted
//!   for. Non-zero exit on any violation.
//! * `--overload` — watchdog-guarded overload gate: a saturating
//!   deadline-storm workload must produce zero deadline overshoots beyond
//!   one row group of work; load shedding and an open circuit breaker
//!   must reject without touching the scan layer; hedged execution must
//!   win at least one race. Merges an `"overload"` section into
//!   `BENCH_smoke.json`. Non-zero exit on any violation.
//!
//! Scale knobs: `HEPQUERY_EVENTS`, `HEPQUERY_ROW_GROUP`, `HEPQUERY_SEED`,
//! `HEPQUERY_SERVE_CLIENTS`, `HEPQUERY_SERVE_REQS`.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hep_model::generator::build_dataset;
use hep_model::DatasetSpec;
use hepbench_bench::merge_section;
use hepbench_core::runner::System;
use hepbench_core::ALL_QUERIES;
use nf2_columnar::{FaultClass, FaultConfig, FaultInjector};
use query_service::{
    BreakerConfig, BreakerState, HedgeConfig, QueryRequest, QueryService, ServiceConfig,
    ServiceError,
};

/// Systems the mixed workload draws from (one per language/dialect).
const SYSTEMS: &[System] = &[
    System::BigQuery,
    System::AthenaV2,
    System::Presto,
    System::Rumble,
    System::RDataFrame,
];

const TENANTS: usize = 4;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn spec(default_events: usize) -> DatasetSpec {
    let n_events = env_usize("HEPQUERY_EVENTS", default_events);
    DatasetSpec {
        n_events,
        row_group_size: env_usize("HEPQUERY_ROW_GROUP", 256),
        seed: std::env::var("HEPQUERY_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0xAD1B70),
    }
}

struct WorkloadReport {
    requests: usize,
    served: usize,
    rejected: usize,
    timed_out: usize,
    failed: usize,
    result_hits: usize,
}

/// Drives `clients` threads, each submitting `reqs_per_client` requests
/// drawn round-robin from the (system × query) grid, and waits for every
/// response.
fn drive(service: &QueryService, clients: usize, reqs_per_client: usize) -> WorkloadReport {
    let mix: Vec<(System, hepbench_core::QueryId)> = SYSTEMS
        .iter()
        .flat_map(|&s| ALL_QUERIES.iter().map(move |&q| (s, q)))
        .collect();
    let outcomes: Vec<Result<bool, ServiceError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let mix = &mix;
                scope.spawn(move || {
                    let tenant = format!("t{}", c % TENANTS);
                    (0..reqs_per_client)
                        .map(|r| {
                            let (system, query) = mix[(c * reqs_per_client + r) % mix.len()];
                            service
                                .execute(QueryRequest::new(tenant.clone(), system, query))
                                .map(|resp| resp.from_result_cache)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let mut report = WorkloadReport {
        requests: outcomes.len(),
        served: 0,
        rejected: 0,
        timed_out: 0,
        failed: 0,
        result_hits: 0,
    };
    for outcome in outcomes {
        match outcome {
            Ok(from_cache) => {
                report.served += 1;
                if from_cache {
                    report.result_hits += 1;
                }
            }
            Err(ServiceError::QueryRejected { .. }) => report.rejected += 1,
            Err(ServiceError::QueryTimedOut { .. }) => report.timed_out += 1,
            Err(_) => report.failed += 1,
        }
    }
    report
}

fn rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

fn run_default() {
    let spec = spec(4_096);
    let clients = env_usize("HEPQUERY_SERVE_CLIENTS", 32);
    let reqs = env_usize("HEPQUERY_SERVE_REQS", 4);
    eprintln!(
        "# serve_smoke: {} events, {clients} clients x {reqs} requests, tenants t0..t{}",
        spec.n_events,
        TENANTS - 1
    );
    let (_, table) = build_dataset(spec);
    let service = QueryService::start(Arc::new(table), ServiceConfig::default());
    let report = drive(&service, clients, reqs);
    let snap = service.stats();
    let (rc_hits, rc_misses) = service.result_cache_counters().unwrap_or((0, 0));
    let cc = service.chunk_cache_counters().unwrap_or_default();
    eprintln!(
        "  {} served / {} requests in {:.2}s: {:.1} qps, p50 {:.1} ms, p95 {:.1} ms",
        report.served,
        report.requests,
        snap.elapsed_seconds,
        snap.qps,
        snap.p50_seconds * 1e3,
        snap.p95_seconds * 1e3
    );
    eprintln!(
        "  result cache {:.0}% hit ({rc_hits}/{}), chunk cache {:.0}% hit ({}/{}), {} evictions",
        100.0 * rate(rc_hits, rc_misses),
        rc_hits + rc_misses,
        100.0 * rate(cc.hits, cc.misses),
        cc.hits,
        cc.hits + cc.misses,
        cc.evictions
    );
    let serving = format!(
        "{{\n    \"events\": {},\n    \"clients\": {clients},\n    \"requests\": {},\n    \"completed\": {},\n    \"rejected\": {},\n    \"timed_out\": {},\n    \"failed\": {},\n    \"qps\": {:.2},\n    \"p50_seconds\": {:.6},\n    \"p95_seconds\": {:.6},\n    \"mean_queue_seconds\": {:.6},\n    \"result_cache\": {{ \"hits\": {rc_hits}, \"misses\": {rc_misses}, \"hit_rate\": {:.4} }},\n    \"chunk_cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.4} }}\n  }}",
        spec.n_events,
        report.requests,
        snap.completed,
        snap.rejected,
        snap.timed_out,
        snap.failed,
        snap.qps,
        snap.p50_seconds,
        snap.p95_seconds,
        snap.mean_queue_seconds,
        rate(rc_hits, rc_misses),
        cc.hits,
        cc.misses,
        cc.evictions,
        rate(cc.hits, cc.misses),
    );
    let out = std::env::var("BENCH_SMOKE_OUT").unwrap_or_else(|_| "BENCH_smoke.json".to_string());
    merge_section(&out, "serving", &serving);
}

/// CI gate: finishes under a watchdog (admission control must not
/// deadlock), every request is accounted for, and a repeated workload
/// produces result-cache hits.
fn run_check() -> i32 {
    let spec = spec(1_500);
    let clients = env_usize("HEPQUERY_SERVE_CLIENTS", 8);
    let reqs = env_usize("HEPQUERY_SERVE_REQS", 3);
    eprintln!(
        "# serve_smoke --check: {} events, {clients} clients x {reqs} requests",
        spec.n_events
    );
    let (done_tx, done_rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let (_, table) = build_dataset(spec);
        let service = QueryService::start(Arc::new(table), ServiceConfig::default());
        let first = drive(&service, clients, reqs);
        // Re-issue the same workload: every request that executed the
        // first time must now be a result-cache hit.
        let second = drive(&service, clients, reqs);
        let snap = service.stats();
        let counters = service.result_cache_counters().unwrap_or((0, 0));
        let _ = done_tx.send((first, second, snap, counters));
    });
    let watchdog = Duration::from_secs(env_usize("HEPQUERY_SERVE_WATCHDOG", 600) as u64);
    let (first, second, snap, (rc_hits, rc_misses)) = match done_rx.recv_timeout(watchdog) {
        Ok(r) => r,
        Err(_) => {
            eprintln!(
                "FAIL: workload did not finish within {}s — admission deadlock?",
                watchdog.as_secs()
            );
            return 1;
        }
    };
    worker.join().expect("workload thread");
    let mut failures = 0;
    let accounted = snap.completed + snap.rejected + snap.timed_out + snap.failed;
    if accounted != snap.submitted {
        eprintln!(
            "FAIL: {} submitted but only {accounted} accounted for",
            snap.submitted
        );
        failures += 1;
    }
    if first.served + second.served == 0 {
        eprintln!("FAIL: no request was served");
        failures += 1;
    }
    if second.result_hits == 0 {
        eprintln!("FAIL: repeated workload produced no result-cache hit");
        failures += 1;
    }
    if first.failed + second.failed > 0 {
        eprintln!("FAIL: {} engine failures", first.failed + second.failed);
        failures += 1;
    }
    eprintln!(
        "  round 1: {}/{} served ({} cache hits); round 2: {}/{} served ({} cache hits)",
        first.served,
        first.requests,
        first.result_hits,
        second.served,
        second.requests,
        second.result_hits
    );
    eprintln!(
        "  result cache: {rc_hits} hits / {rc_misses} misses; {} completed, {} rejected, {} timed out",
        snap.completed, snap.rejected, snap.timed_out
    );
    if failures == 0 {
        eprintln!("# serve_smoke --check OK");
        0
    } else {
        failures
    }
}

/// Outcome of the overload gate's deadline-storm scenario.
struct StormReport {
    requests: usize,
    cancelled: usize,
    timed_out: usize,
    rejected: usize,
    completed: usize,
    max_overshoot_seconds: f64,
    full_scans_cancelled: usize,
}

/// Saturates a latency-stormed service with short-deadline requests and
/// measures deadline overshoot per response. With every physical chunk
/// read slowed, a wide query cannot finish inside the deadline, so its
/// token must stop it — and nothing (cancelled, timed out, or a narrow
/// query that legitimately completes) may run past the deadline by more
/// than one row group of (artificially slow) work.
fn deadline_storm(table: &Arc<nf2_columnar::Table>, n_rows: u64) -> StormReport {
    const DEADLINE: Duration = Duration::from_millis(40);
    // One row group of work under the storm: each of the projection's
    // chunk reads sleeps 5 ms; the widest benchmark projection stays
    // well under 30 chunks per group.
    const GROUP_BUDGET: Duration = Duration::from_millis(150);
    let service = QueryService::start(
        table.clone(),
        ServiceConfig {
            n_workers: 2,
            queue_depth: 64,
            result_cache: false,
            chunk_cache_bytes: 0,
            max_retries: 0,
            fault_injector: Some(Arc::new(FaultInjector::new(FaultConfig {
                latency: Duration::from_millis(5),
                ..FaultConfig::only(FaultClass::Latency, 1.0, 0xDEAD)
            }))),
            ..ServiceConfig::default()
        },
    );
    let mix: Vec<(System, hepbench_core::QueryId)> = SYSTEMS
        .iter()
        .flat_map(|&s| ALL_QUERIES.iter().map(move |&q| (s, q)))
        .collect();
    let clients = 6;
    let reqs = 2;
    let outcomes: Vec<(Result<f64, ServiceError>, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let mix = &mix;
                let service = &service;
                scope.spawn(move || {
                    let tenant = format!("t{}", c % TENANTS);
                    (0..reqs)
                        .map(|r| {
                            let (system, query) = mix[(c * reqs + r) % mix.len()];
                            let t0 = Instant::now();
                            let outcome = service
                                .execute(QueryRequest {
                                    deadline: Some(DEADLINE),
                                    ..QueryRequest::new(tenant.clone(), system, query)
                                })
                                .map(|resp| resp.total_seconds);
                            (outcome, t0.elapsed().as_secs_f64())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("storm client"))
            .collect()
    });
    let mut report = StormReport {
        requests: outcomes.len(),
        cancelled: 0,
        timed_out: 0,
        rejected: 0,
        completed: 0,
        max_overshoot_seconds: 0.0,
        full_scans_cancelled: 0,
    };
    for (outcome, elapsed) in outcomes {
        let overshoot = elapsed - DEADLINE.as_secs_f64() - GROUP_BUDGET.as_secs_f64();
        match outcome {
            // A narrow projection can finish inside the deadline — fine,
            // but a completion is held to the same overshoot bound: the
            // token must have stopped it had it run long.
            Ok(_) => {
                report.completed += 1;
                report.max_overshoot_seconds = report.max_overshoot_seconds.max(overshoot);
            }
            Err(ServiceError::Cancelled { rows_processed, .. }) => {
                report.cancelled += 1;
                report.max_overshoot_seconds = report.max_overshoot_seconds.max(overshoot);
                if rows_processed >= n_rows {
                    report.full_scans_cancelled += 1;
                }
            }
            Err(ServiceError::QueryTimedOut { .. }) => {
                report.timed_out += 1;
                report.max_overshoot_seconds = report.max_overshoot_seconds.max(overshoot);
            }
            Err(_) => report.rejected += 1,
        }
    }
    report
}

/// CI overload gate: deadline storms cannot overshoot by more than one
/// row group of work, shedding and breakers reject in O(µs) without a
/// scan, hedging wins at least one race. Watchdogged like `--check`.
fn run_overload() -> i32 {
    let spec = spec(1_500);
    eprintln!("# serve_smoke --overload: {} events", spec.n_events);
    let (done_tx, done_rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let (_, table) = build_dataset(spec);
        let n_rows = table.n_rows() as u64;
        let table = Arc::new(table);

        let storm = deadline_storm(&table, n_rows);

        // Load shedding: prime the execution-time EWMA, pile a backlog
        // onto one worker, then measure how fast hopeless requests are
        // refused.
        let service = QueryService::start(
            table.clone(),
            ServiceConfig {
                n_workers: 1,
                result_cache: false,
                load_shedding: true,
                ..ServiceConfig::default()
            },
        );
        service
            .execute(QueryRequest::new(
                "t0",
                System::BigQuery,
                hepbench_core::QueryId::Q1,
            ))
            .expect("priming query");
        let backlog: Vec<_> = (0..8)
            .map(|_| {
                service
                    .submit(QueryRequest::new(
                        "t0",
                        System::Rumble,
                        hepbench_core::QueryId::Q5,
                    ))
                    .expect("backlog submit")
            })
            .collect();
        let mut shed = 0usize;
        let mut shed_micros_max = 0.0f64;
        for _ in 0..8 {
            let t0 = Instant::now();
            let outcome = service.submit(QueryRequest {
                deadline: Some(Duration::from_nanos(1)),
                ..QueryRequest::new("t1", System::BigQuery, hepbench_core::QueryId::Q1)
            });
            let micros = t0.elapsed().as_secs_f64() * 1e6;
            if matches!(outcome, Err(ServiceError::QueryShedded { .. })) {
                shed += 1;
                shed_micros_max = shed_micros_max.max(micros);
            }
        }
        for t in backlog {
            let _ = t.wait();
        }
        drop(service);

        // Circuit breaker: a persistent I/O-fault storm must open the
        // breaker, after which admission rejects without executing.
        let service = QueryService::start(
            table.clone(),
            ServiceConfig {
                n_workers: 1,
                result_cache: false,
                chunk_cache_bytes: 0,
                max_retries: 0,
                fault_injector: Some(Arc::new(FaultInjector::new(FaultConfig {
                    transient_attempts: 0,
                    ..FaultConfig::only(FaultClass::Io, 1.0, 0xB0B0)
                }))),
                breaker: Some(BreakerConfig {
                    cooldown: Duration::from_secs(600),
                    ..BreakerConfig::default()
                }),
                ..ServiceConfig::default()
            },
        );
        for _ in 0..8 {
            let _ = service.execute(QueryRequest::new(
                "t0",
                System::BigQuery,
                hepbench_core::QueryId::Q1,
            ));
        }
        let breaker_open = service.breaker_state(System::BigQuery) == Some(BreakerState::Open);
        let t0 = Instant::now();
        let breaker_rejects = matches!(
            service.submit(QueryRequest::new(
                "t0",
                System::BigQuery,
                hepbench_core::QueryId::Q1
            )),
            Err(ServiceError::CircuitOpen { .. })
        );
        let breaker_reject_micros = t0.elapsed().as_secs_f64() * 1e6;
        drop(service);

        // Hedging: each race gets a fresh service so the execution-time
        // sample pool is empty and the zero floor delay launches the
        // hedge at t≈0 — the two identical attempts race on scheduling
        // alone, so over enough races the hedge must win at least one.
        let mut hedge_wins = 0u64;
        let mut hedge_launched = 0u64;
        for i in 0..60 {
            let service = QueryService::start(
                table.clone(),
                ServiceConfig {
                    n_workers: 1,
                    result_cache: false,
                    chunk_cache_bytes: 0,
                    hedge: Some(HedgeConfig {
                        percentile: 0.99,
                        min_delay: Duration::ZERO,
                    }),
                    ..ServiceConfig::default()
                },
            );
            service
                .execute(QueryRequest::new(
                    "t0",
                    SYSTEMS[i % SYSTEMS.len()],
                    hepbench_core::QueryId::Q2,
                ))
                .expect("hedged query");
            let m = service.metrics_snapshot();
            hedge_wins += m.counter("hedge_wins");
            hedge_launched += m.counter("hedges_launched");
            if hedge_wins > 0 && i >= 9 {
                break;
            }
        }
        let _ = done_tx.send((
            storm,
            shed,
            shed_micros_max,
            breaker_open,
            breaker_rejects,
            breaker_reject_micros,
            hedge_launched,
            hedge_wins,
        ));
    });
    let watchdog = Duration::from_secs(env_usize("HEPQUERY_SERVE_WATCHDOG", 600) as u64);
    let Ok((
        storm,
        shed,
        shed_micros_max,
        breaker_open,
        breaker_rejects,
        breaker_reject_micros,
        hedge_launched,
        hedge_wins,
    )) = done_rx.recv_timeout(watchdog)
    else {
        eprintln!(
            "FAIL: overload scenarios did not finish within {}s — cancellation stuck?",
            watchdog.as_secs()
        );
        return 1;
    };
    worker.join().expect("overload thread");
    let mut failures = 0;
    if storm.cancelled == 0 {
        eprintln!("FAIL: deadline storm cancelled no running query");
        failures += 1;
    }
    if storm.max_overshoot_seconds > 0.0 {
        eprintln!(
            "FAIL: a deadline overshot its budget + one row group by {:.3}s",
            storm.max_overshoot_seconds
        );
        failures += 1;
    }
    if storm.full_scans_cancelled > 0 {
        eprintln!(
            "FAIL: {} cancellations reported a full scan's worth of rows",
            storm.full_scans_cancelled
        );
        failures += 1;
    }
    if shed == 0 {
        eprintln!("FAIL: load shedding never fired under a saturated queue");
        failures += 1;
    }
    if !breaker_open {
        eprintln!("FAIL: breaker did not open under a persistent fault storm");
        failures += 1;
    }
    if !breaker_rejects {
        eprintln!("FAIL: open breaker did not reject at admission");
        failures += 1;
    }
    if hedge_wins == 0 {
        eprintln!("FAIL: hedging never won a race ({hedge_launched} launched)");
        failures += 1;
    }
    eprintln!(
        "  storm: {} requests, {} cancelled, {} timed out, {} completed, {} rejected, \
         max overshoot {:.3}s",
        storm.requests,
        storm.cancelled,
        storm.timed_out,
        storm.completed,
        storm.rejected,
        (storm.max_overshoot_seconds).max(0.0)
    );
    eprintln!(
        "  shed {shed}/8 (slowest {shed_micros_max:.0}µs); breaker open={breaker_open}, \
         rejected in {breaker_reject_micros:.0}µs; hedges {hedge_launched} launched, \
         {hedge_wins} wins"
    );
    let payload = format!(
        "{{\n    \"storm_requests\": {},\n    \"storm_cancelled\": {},\n    \"storm_timed_out\": {},\n    \"storm_completed\": {},\n    \"storm_rejected\": {},\n    \"storm_max_overshoot_seconds\": {:.6},\n    \"shed\": {shed},\n    \"shed_reject_micros_max\": {shed_micros_max:.1},\n    \"breaker_open\": {breaker_open},\n    \"breaker_reject_micros\": {breaker_reject_micros:.1},\n    \"hedges_launched\": {hedge_launched},\n    \"hedge_wins\": {hedge_wins}\n  }}",
        storm.requests,
        storm.cancelled,
        storm.timed_out,
        storm.completed,
        storm.rejected,
        storm.max_overshoot_seconds.max(0.0),
    );
    let out = std::env::var("BENCH_SMOKE_OUT").unwrap_or_else(|_| "BENCH_smoke.json".to_string());
    merge_section(&out, "overload", &payload);
    if failures == 0 {
        eprintln!("# serve_smoke --overload OK");
        0
    } else {
        failures
    }
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        std::process::exit(run_check());
    }
    if std::env::args().any(|a| a == "--overload") {
        std::process::exit(run_overload());
    }
    run_default();
}
