//! Concurrent-serving smoke harness: drives a [`query_service::QueryService`]
//! with a mixed multi-tenant workload and reports QPS, latency percentiles
//! and cache hit rates.
//!
//! Two modes:
//!
//! * default — 32 client threads, each issuing a stream of requests drawn
//!   from (system × ADL query) round-robin under tenants `t0..t3`; merges
//!   a `"serving"` section into `BENCH_smoke.json` next to the per-engine
//!   numbers `perf_smoke` writes.
//! * `--check` — small data set, watchdog-guarded (a stuck admission queue
//!   fails the run instead of hanging CI), asserts that repeated queries
//!   hit the result cache and that every submitted request is accounted
//!   for. Non-zero exit on any violation.
//!
//! Scale knobs: `HEPQUERY_EVENTS`, `HEPQUERY_ROW_GROUP`, `HEPQUERY_SEED`,
//! `HEPQUERY_SERVE_CLIENTS`, `HEPQUERY_SERVE_REQS`.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use hep_model::generator::build_dataset;
use hep_model::DatasetSpec;
use hepbench_core::runner::System;
use hepbench_core::ALL_QUERIES;
use query_service::{QueryRequest, QueryService, ServiceConfig, ServiceError};

/// Systems the mixed workload draws from (one per language/dialect).
const SYSTEMS: &[System] = &[
    System::BigQuery,
    System::AthenaV2,
    System::Presto,
    System::Rumble,
    System::RDataFrame,
];

const TENANTS: usize = 4;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn spec(default_events: usize) -> DatasetSpec {
    let n_events = env_usize("HEPQUERY_EVENTS", default_events);
    DatasetSpec {
        n_events,
        row_group_size: env_usize("HEPQUERY_ROW_GROUP", 256),
        seed: std::env::var("HEPQUERY_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0xAD1B70),
    }
}

struct WorkloadReport {
    requests: usize,
    served: usize,
    rejected: usize,
    timed_out: usize,
    failed: usize,
    result_hits: usize,
}

/// Drives `clients` threads, each submitting `reqs_per_client` requests
/// drawn round-robin from the (system × query) grid, and waits for every
/// response.
fn drive(service: &QueryService, clients: usize, reqs_per_client: usize) -> WorkloadReport {
    let mix: Vec<(System, hepbench_core::QueryId)> = SYSTEMS
        .iter()
        .flat_map(|&s| ALL_QUERIES.iter().map(move |&q| (s, q)))
        .collect();
    let outcomes: Vec<Result<bool, ServiceError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let mix = &mix;
                scope.spawn(move || {
                    let tenant = format!("t{}", c % TENANTS);
                    (0..reqs_per_client)
                        .map(|r| {
                            let (system, query) = mix[(c * reqs_per_client + r) % mix.len()];
                            service
                                .execute(QueryRequest::new(tenant.clone(), system, query))
                                .map(|resp| resp.from_result_cache)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let mut report = WorkloadReport {
        requests: outcomes.len(),
        served: 0,
        rejected: 0,
        timed_out: 0,
        failed: 0,
        result_hits: 0,
    };
    for outcome in outcomes {
        match outcome {
            Ok(from_cache) => {
                report.served += 1;
                if from_cache {
                    report.result_hits += 1;
                }
            }
            Err(ServiceError::QueryRejected { .. }) => report.rejected += 1,
            Err(ServiceError::QueryTimedOut { .. }) => report.timed_out += 1,
            Err(_) => report.failed += 1,
        }
    }
    report
}

fn rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// Merges a `"serving"` object into the (possibly existing) smoke JSON,
/// replacing any previous `"serving"` section.
fn merge_serving_section(path: &str, serving: &str) {
    let content = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
    let base = if let Some(pos) = content.find(",\n  \"serving\":") {
        content[..pos].to_string()
    } else {
        let mut c = content.trim_end().to_string();
        if c.ends_with('}') {
            c.pop();
        }
        c.trim_end().to_string()
    };
    let sep = if base.trim_end().ends_with('{') {
        ""
    } else {
        ","
    };
    let json = format!("{base}{sep}\n  \"serving\": {serving}\n}}\n");
    std::fs::write(path, &json).expect("write smoke json");
    eprintln!("# merged serving section into {path}");
}

fn run_default() {
    let spec = spec(4_096);
    let clients = env_usize("HEPQUERY_SERVE_CLIENTS", 32);
    let reqs = env_usize("HEPQUERY_SERVE_REQS", 4);
    eprintln!(
        "# serve_smoke: {} events, {clients} clients x {reqs} requests, tenants t0..t{}",
        spec.n_events,
        TENANTS - 1
    );
    let (_, table) = build_dataset(spec);
    let service = QueryService::start(Arc::new(table), ServiceConfig::default());
    let report = drive(&service, clients, reqs);
    let snap = service.stats();
    let (rc_hits, rc_misses) = service.result_cache_counters().unwrap_or((0, 0));
    let cc = service.chunk_cache_counters().unwrap_or_default();
    eprintln!(
        "  {} served / {} requests in {:.2}s: {:.1} qps, p50 {:.1} ms, p95 {:.1} ms",
        report.served,
        report.requests,
        snap.elapsed_seconds,
        snap.qps,
        snap.p50_seconds * 1e3,
        snap.p95_seconds * 1e3
    );
    eprintln!(
        "  result cache {:.0}% hit ({rc_hits}/{}), chunk cache {:.0}% hit ({}/{}), {} evictions",
        100.0 * rate(rc_hits, rc_misses),
        rc_hits + rc_misses,
        100.0 * rate(cc.hits, cc.misses),
        cc.hits,
        cc.hits + cc.misses,
        cc.evictions
    );
    let serving = format!(
        "{{\n    \"events\": {},\n    \"clients\": {clients},\n    \"requests\": {},\n    \"completed\": {},\n    \"rejected\": {},\n    \"timed_out\": {},\n    \"failed\": {},\n    \"qps\": {:.2},\n    \"p50_seconds\": {:.6},\n    \"p95_seconds\": {:.6},\n    \"mean_queue_seconds\": {:.6},\n    \"result_cache\": {{ \"hits\": {rc_hits}, \"misses\": {rc_misses}, \"hit_rate\": {:.4} }},\n    \"chunk_cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.4} }}\n  }}",
        spec.n_events,
        report.requests,
        snap.completed,
        snap.rejected,
        snap.timed_out,
        snap.failed,
        snap.qps,
        snap.p50_seconds,
        snap.p95_seconds,
        snap.mean_queue_seconds,
        rate(rc_hits, rc_misses),
        cc.hits,
        cc.misses,
        cc.evictions,
        rate(cc.hits, cc.misses),
    );
    let out = std::env::var("BENCH_SMOKE_OUT").unwrap_or_else(|_| "BENCH_smoke.json".to_string());
    merge_serving_section(&out, &serving);
}

/// CI gate: finishes under a watchdog (admission control must not
/// deadlock), every request is accounted for, and a repeated workload
/// produces result-cache hits.
fn run_check() -> i32 {
    let spec = spec(1_500);
    let clients = env_usize("HEPQUERY_SERVE_CLIENTS", 8);
    let reqs = env_usize("HEPQUERY_SERVE_REQS", 3);
    eprintln!(
        "# serve_smoke --check: {} events, {clients} clients x {reqs} requests",
        spec.n_events
    );
    let (done_tx, done_rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let (_, table) = build_dataset(spec);
        let service = QueryService::start(Arc::new(table), ServiceConfig::default());
        let first = drive(&service, clients, reqs);
        // Re-issue the same workload: every request that executed the
        // first time must now be a result-cache hit.
        let second = drive(&service, clients, reqs);
        let snap = service.stats();
        let counters = service.result_cache_counters().unwrap_or((0, 0));
        let _ = done_tx.send((first, second, snap, counters));
    });
    let watchdog = Duration::from_secs(env_usize("HEPQUERY_SERVE_WATCHDOG", 600) as u64);
    let (first, second, snap, (rc_hits, rc_misses)) = match done_rx.recv_timeout(watchdog) {
        Ok(r) => r,
        Err(_) => {
            eprintln!(
                "FAIL: workload did not finish within {}s — admission deadlock?",
                watchdog.as_secs()
            );
            return 1;
        }
    };
    worker.join().expect("workload thread");
    let mut failures = 0;
    let accounted = snap.completed + snap.rejected + snap.timed_out + snap.failed;
    if accounted != snap.submitted {
        eprintln!(
            "FAIL: {} submitted but only {accounted} accounted for",
            snap.submitted
        );
        failures += 1;
    }
    if first.served + second.served == 0 {
        eprintln!("FAIL: no request was served");
        failures += 1;
    }
    if second.result_hits == 0 {
        eprintln!("FAIL: repeated workload produced no result-cache hit");
        failures += 1;
    }
    if first.failed + second.failed > 0 {
        eprintln!("FAIL: {} engine failures", first.failed + second.failed);
        failures += 1;
    }
    eprintln!(
        "  round 1: {}/{} served ({} cache hits); round 2: {}/{} served ({} cache hits)",
        first.served,
        first.requests,
        first.result_hits,
        second.served,
        second.requests,
        second.result_hits
    );
    eprintln!(
        "  result cache: {rc_hits} hits / {rc_misses} misses; {} completed, {} rejected, {} timed out",
        snap.completed, snap.rejected, snap.timed_out
    );
    if failures == 0 {
        eprintln!("# serve_smoke --check OK");
        0
    } else {
        failures
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    if check {
        std::process::exit(run_check());
    }
    run_default();
}
