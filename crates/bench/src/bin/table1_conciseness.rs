//! Regenerates **Table 1**: the functionality matrix (star ratings per
//! requirement) and the conciseness metrics of the five query
//! implementations.

use hepbench_core::capabilities::{stars, ALL_REQUIREMENTS};
use hepbench_core::metrics::all_language_metrics;
use hepbench_core::queries::ALL_LANGUAGES;

fn main() {
    println!("Table 1 — functionality of general-purpose systems for HEP analyses");
    println!();
    print!("{:32}", "");
    for lang in ALL_LANGUAGES {
        print!("{:>12}", lang.name());
    }
    println!();
    for req in ALL_REQUIREMENTS {
        print!("{:32}", req.label());
        for lang in ALL_LANGUAGES {
            let cell = match stars(*lang, *req) {
                None => "-".to_string(),
                Some(n) => "*".repeat(n as usize),
            };
            print!("{cell:>12}");
        }
        println!();
    }
    println!();
    println!(
        "Conciseness metrics over all {} query outputs:",
        hepbench_core::ALL_QUERIES.len()
    );
    println!();
    let metrics = all_language_metrics();
    print!("{:32}", "");
    for m in &metrics {
        print!("{:>12}", m.language.name());
    }
    println!();
    let row = |label: &str, f: &dyn Fn(&hepbench_core::metrics::LanguageMetrics) -> String| {
        print!("{label:32}");
        for m in &metrics {
            print!("{:>12}", f(m));
        }
        println!();
    };
    row("#characters", &|m| {
        format!("{:.1}k", m.characters as f64 / 1000.0)
    });
    row("#lines", &|m| m.lines.to_string());
    row("#clauses", &|m| m.clauses.to_string());
    row("#avg clauses/query", &|m| {
        format!("{:.1}", m.avg_clauses_per_query)
    });
    row("#unique clauses", &|m| m.unique_clauses.to_string());
    row("#avg unique clauses/query", &|m| {
        format!("{:.1}", m.avg_unique_clauses_per_query)
    });
    println!();
    println!(
        "paper (Table 1):      chars  Athena 6.8k  BigQuery 3.4k  Presto 6.7k  JSONiq 3.8k  RDataFrame 11k"
    );
    println!(
        "                 avg clauses  Athena 26.9  BigQuery 15.7  Presto 18.7  JSONiq  6.2  RDataFrame 14.9"
    );
}
