//! Regenerates **Figure 1**: the running-time / cost trade-off of every
//! system on every query.
//!
//! Self-managed systems (Presto, Rumble, RDataFrame) are swept across the
//! `m5d` instance series; QaaS systems are single points. Engines really
//! execute each query on the generated data set (results are validated
//! against the reference); wall times and costs come from the cloud
//! simulator as described in DESIGN.md.

use hepbench_bench::{dataset, fmt_secs, fmt_usd};
use hepbench_core::adapters::ExecEnv;
use hepbench_core::runner::{run_one, System, ALL_SYSTEMS};
use hepbench_core::{reference, ALL_QUERIES};

fn main() {
    let (events, table) = dataset();
    let env = ExecEnv::seed();
    println!("Figure 1 — running time vs cost per query and system");
    for q in ALL_QUERIES {
        // Like the paper, Q6b is omitted: "nearly identical results as Q6a".
        if *q == hepbench_core::QueryId::Q6b {
            continue;
        }
        let expect = reference::run(*q, &events).hist;
        println!();
        println!("== {} — {}", q.name(), q.description());
        println!(
            "{:24} {:>14} {:>12} {:>12} {:>10}",
            "system", "instance", "wall", "cost", "entries"
        );
        for system in ALL_SYSTEMS {
            if *system == System::AthenaV1 {
                continue; // excluded from Fig 1 (implausible scan statistics)
            }
            if system.is_qaas() {
                let m = run_one(*system, None, &table, *q, &env).expect("qaas run");
                assert_eq!(
                    m.hist_entries,
                    expect.total(),
                    "{} result mismatch",
                    m.system
                );
                println!(
                    "{:24} {:>14} {:>12} {:>12} {:>10}",
                    m.system,
                    "-",
                    fmt_secs(m.wall_seconds),
                    fmt_usd(m.cost_usd),
                    m.hist_entries
                );
            } else {
                for m in hepbench_core::runner::run_sweep(*system, &table, *q, &env)
                    .expect("self-managed run")
                {
                    assert_eq!(
                        m.hist_entries,
                        expect.total(),
                        "{} result mismatch",
                        m.system
                    );
                    println!(
                        "{:24} {:>14} {:>12} {:>12} {:>10}",
                        m.system,
                        m.instance.unwrap_or("-"),
                        fmt_secs(m.wall_seconds),
                        fmt_usd(m.cost_usd),
                        m.hist_entries
                    );
                }
            }
        }
    }
    println!();
    println!("shapes to check against the paper (Figure 1):");
    println!("  * BigQuery is the fastest QaaS system on every query; external tables");
    println!("    ~2x slower (RDataFrame's best configuration can still beat it, as in");
    println!("    the paper)");
    println!("  * RDataFrame is cheapest but never fastest; its wall time degrades on");
    println!("    the largest instances (lock contention)");
    println!("  * Presto needs large instances to approach Athena/RDataFrame");
    println!("  * Rumble is roughly an order of magnitude slower/costlier than the rest");
}
