//! Regenerates **Figure 3**: the distribution of the number of particles
//! per event for the three particle types the queries use.

use hepbench_bench::dataset;
use hepbench_core::complexity::multiplicity_distribution;

fn main() {
    let (events, _) = dataset();
    let max = 40;
    let jets = multiplicity_distribution(&events, |e| e.jets.len(), max);
    let muons = multiplicity_distribution(&events, |e| e.muons.len(), max);
    let electrons = multiplicity_distribution(&events, |e| e.electrons.len(), max);
    println!("Figure 3 — fraction of events with exactly n particles");
    println!();
    println!(
        "{:>4} {:>12} {:>12} {:>12}",
        "n", "electrons", "muons", "jets"
    );
    for n in 0..=max {
        if electrons[n] == 0.0 && muons[n] == 0.0 && jets[n] == 0.0 {
            continue;
        }
        println!(
            "{n:>4} {:>12.5} {:>12.5} {:>12.5}",
            electrons[n], muons[n], jets[n]
        );
    }
    let mean = |d: &[f64]| -> f64 { d.iter().enumerate().map(|(i, p)| i as f64 * p).sum() };
    println!();
    println!(
        "means: electrons {:.2}, muons {:.2}, jets {:.2}",
        mean(&electrons),
        mean(&muons),
        mean(&jets)
    );
    println!();
    println!("shapes to check against the paper (Figure 3): electrons in low single");
    println!("digits; muons more frequent with a longer tail; a significant fraction");
    println!("of events with a dozen or more jets.");
}
