//! Perf-trajectory smoke harness: runs Q1/Q5/Q6 on each engine at a fixed
//! seed/scale and writes machine-readable `BENCH_smoke.json` so successive
//! PRs have a comparable throughput baseline. Each row also carries the
//! per-stage breakdown from one traced run (the span tree's exclusive
//! stage seconds), and the traced trees are exported to
//! `results/traces/` as both span JSON and `chrome://tracing` files.
//!
//! Scale defaults to 32 768 events (seed `0xAD1B70`, 128 row groups) and can
//! be overridden through the usual `HEPQUERY_*` environment variables. Each
//! (engine, query) pair runs `RUNS` times; the JSON records the median wall
//! time to damp scheduler noise. Timed runs are untraced — tracing is
//! overhead-gated, not free — and the stage breakdown comes from one
//! extra traced run per point.
//!
//! Traced runs pin `intra_query_threads` to 1: the per-stage breakdown
//! sums *exclusive* span seconds, and only on a single thread is that sum
//! bounded by the run's wall time (parallel workers each record their own
//! stage time, so the multi-threaded sum exceeds wall by design).
//!
//! The default run also measures the **compiled** execution path (the
//! shared physical IR the engines lower recognized queries to) against
//! the interpreted baseline on Q6, recorded as a `compiled` section —
//! the headline ~1000× combinatorial-query gap of the paper, closed.
//!
//! `--threads N` pins `intra_query_threads` for the timed (untraced)
//! runs and the compiled comparison; every JSON record carries the
//! `intra_query_threads` the engine actually used, so baselines taken
//! at different thread counts are never silently compared. The traced
//! run stays pinned to 1 thread regardless (see above).
//!
//! `perf_smoke --check` is the CI observability gate: it sweeps Q1–Q8 on
//! the SQL engine at small scale (default 2 048 events), compares the
//! min-of-`RUNS` wall time traced vs untraced, and fails if tracing costs
//! more than [`MAX_OVERHEAD_FRACTION`] in aggregate. It also exports one
//! trace per (engine, query) for the CI artifact, and fails unless the
//! compiled path beats the interpreted baseline on Q6 by at least
//! [`MIN_COMPILED_SPEEDUP`]× on both the JSONiq and Presto SQL engines.

use std::sync::Arc;

use engine_flwor::FlworOptions;
use engine_sql::{Dialect, SqlOptions};
use hep_model::generator::build_dataset;
use hep_model::DatasetSpec;
use hepbench_core::adapters::{run_jsoniq_env, run_sql_env, EngineRun, ExecEnv};
use hepbench_core::engine_api::{engine_for, QuerySpec};
use hepbench_core::runner::System;
use hepbench_core::{QueryId, ALL_QUERIES};
use nf2_columnar::Table;

const RUNS: usize = 3;

/// The `--check` gate: traced aggregate wall time may exceed untraced by
/// at most this fraction.
const MAX_OVERHEAD_FRACTION: f64 = 0.03;

/// The `--check` gate on compiled execution: Q6 on the JSONiq and Presto
/// SQL engines must run at least this many times faster compiled than
/// interpreted.
const MIN_COMPILED_SPEEDUP: f64 = 50.0;

/// The engines of the smoke baseline, with their stable JSON labels.
const ENGINES: [(System, &str); 3] = [
    (System::Presto, "sql-presto"),
    (System::Rumble, "jsoniq"),
    (System::RDataFrame, "rdataframe"),
];

struct Row {
    engine: &'static str,
    query: &'static str,
    wall_seconds: f64,
    cpu_seconds: f64,
    events_per_sec: f64,
    /// Threads the engine actually used for the timed runs.
    intra_query_threads: usize,
    /// Exclusive per-stage seconds from one traced run (stage → s).
    stages: Vec<(&'static str, f64)>,
}

fn spec(default_events: usize) -> DatasetSpec {
    let n_events = std::env::var("HEPQUERY_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_events);
    let row_group_size = std::env::var("HEPQUERY_ROW_GROUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| (n_events / 128).max(1));
    let seed = std::env::var("HEPQUERY_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xAD1B70);
    DatasetSpec {
        n_events,
        row_group_size,
        seed,
    }
}

fn run_point(system: System, table: &Arc<Table>, q: QueryId, env: &ExecEnv) -> EngineRun {
    engine_for(system, table.clone())
        .execute(&QuerySpec::benchmark(q), env)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Directory the trace exports land in (CI uploads it as an artifact).
fn trace_dir() -> std::path::PathBuf {
    std::env::var("TRACE_OUT_DIR")
        .unwrap_or_else(|_| "results/traces".to_string())
        .into()
}

/// Writes one traced run's span tree as span JSON and chrome trace.
fn export_trace(run: &EngineRun, engine: &str, query: &str) {
    let dir = trace_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let base = format!("{}_{}", query, engine.replace('-', "_"));
    let _ = std::fs::write(dir.join(format!("{base}.spans.json")), run.trace.to_json());
    let _ = std::fs::write(
        dir.join(format!("{base}.chrome.json")),
        run.trace.to_chrome_trace(),
    );
}

fn measure(
    system: System,
    engine: &'static str,
    q: QueryId,
    query: &'static str,
    table: &Arc<Table>,
    n_events: usize,
    threads: Option<usize>,
) -> Row {
    let untraced = ExecEnv {
        intra_query_threads: threads,
        ..ExecEnv::seed()
    };
    let mut threads_used = 1;
    let mut walls: Vec<(f64, f64)> = (0..RUNS)
        .map(|_| {
            let s = run_point(system, table, q, &untraced).stats;
            threads_used = s.threads_used;
            (s.wall_seconds, s.cpu_seconds)
        })
        .collect();
    walls.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (wall_seconds, cpu_seconds) = walls[walls.len() / 2];
    // One traced run per point supplies the stage breakdown and the
    // exported trace files; its wall time is not part of the baseline.
    // Single-threaded so the exclusive stage sum stays within wall.
    let traced_env = ExecEnv {
        trace: obs::TraceCtx::enabled(),
        intra_query_threads: Some(1),
        ..ExecEnv::seed()
    };
    let traced = run_point(system, table, q, &traced_env);
    export_trace(&traced, engine, query);
    let stages = traced
        .trace
        .stage_seconds()
        .into_iter()
        .map(|(s, secs)| (s.name(), secs))
        .collect();
    eprintln!(
        "  {engine:12} {query}: {:8.2} ms wall, {:8.2} ms cpu",
        wall_seconds * 1e3,
        cpu_seconds * 1e3
    );
    Row {
        engine,
        query,
        wall_seconds,
        cpu_seconds,
        events_per_sec: n_events as f64 / wall_seconds,
        intra_query_threads: threads_used,
        stages,
    }
}

/// One engine's Q6 interpreted-vs-compiled comparison.
struct CompiledRow {
    engine: &'static str,
    query: &'static str,
    interpreted_seconds: f64,
    compiled_seconds: f64,
    speedup: f64,
    /// Threads the compiled run actually used.
    intra_query_threads: usize,
}

/// Median wall seconds of `runs` invocations of `f`.
fn median_wall(runs: usize, f: impl Fn() -> EngineRun) -> f64 {
    let mut walls: Vec<f64> = (0..runs).map(|_| f().stats.wall_seconds).collect();
    walls.sort_by(f64::total_cmp);
    walls[walls.len() / 2]
}

/// Measures Q6 interpreted (compile pinned off) vs compiled (default
/// options) on the JSONiq and Presto SQL engines, through the raw
/// adapters — `engine_for` deliberately models the paper's interpreted
/// deployments, so the compiled path is opted into here explicitly.
fn measure_compiled(table: &Arc<Table>, runs: usize, threads: Option<usize>) -> Vec<CompiledRow> {
    let env = ExecEnv {
        intra_query_threads: threads,
        ..ExecEnv::seed()
    };
    let q = QueryId::Q6a;
    let sql = |compile: bool| {
        let options = SqlOptions {
            compile,
            ..SqlOptions::default()
        };
        run_sql_env(Dialect::presto(), table, q, options, &env).unwrap_or_else(|e| panic!("{e}"))
    };
    let jq = |compile: bool| {
        let options = FlworOptions {
            compile,
            ..FlworOptions::default()
        };
        run_jsoniq_env(table, q, options, &env).unwrap_or_else(|e| panic!("{e}"))
    };
    let mut rows = Vec::new();
    for (engine, run) in [
        ("sql-presto", &sql as &dyn Fn(bool) -> EngineRun),
        ("jsoniq", &jq),
    ] {
        let interpreted_seconds = median_wall(runs, || run(false));
        let compiled_seconds = median_wall(runs, || run(true));
        let intra_query_threads = run(true).stats.threads_used;
        let speedup = interpreted_seconds / compiled_seconds;
        eprintln!(
            "  {engine:12} Q6 interpreted {:8.2} ms   compiled {:8.2} ms   ({speedup:.0}x)",
            interpreted_seconds * 1e3,
            compiled_seconds * 1e3
        );
        rows.push(CompiledRow {
            engine,
            query: "Q6",
            interpreted_seconds,
            compiled_seconds,
            speedup,
            intra_query_threads,
        });
    }
    rows
}

/// The zone-map pruning section of the smoke baseline: a windowed Q1
/// (the Q1 MET histogram restricted to the middle-quarter event-id
/// window) on the interpreted Presto engine, pruning off vs on. The
/// window cut sits on the monotone `event` column, so zone maps skip
/// most row groups; `groups_pruned`/`bytes_pruned` in the JSON give
/// successive PRs a pruning baseline next to the throughput one. The
/// full (engine × Q1/Q5) grid with CI gates lives in `fig4b_pruning`.
struct PruningRow {
    window_lo: i64,
    window_hi: i64,
    groups_total: u64,
    groups_pruned: u64,
    bytes_scanned: u64,
    bytes_pruned: u64,
    wall_seconds_off: f64,
    wall_seconds_on: f64,
    speedup: f64,
}

fn measure_pruning(table: &Arc<Table>, n_events: usize, runs: usize) -> PruningRow {
    let n = n_events as i64;
    let (lo, hi) = (n / 8, n / 8 + n / 4);
    let sql = format!(
        "SELECT CAST(FLOOR(MET.pt / 5.0) AS BIGINT) AS bin, COUNT(*) AS n\n\
         FROM events\n\
         WHERE event >= {lo} AND event < {hi}\n\
         GROUP BY CAST(FLOOR(MET.pt / 5.0) AS BIGINT)\n\
         ORDER BY bin"
    );
    // Interpreted path (no vectorized filter), as in `fig4b_pruning`:
    // the off arm pays full row-at-a-time evaluation of the window cut.
    let run = |prune: bool| {
        let mut engine = engine_sql::SqlEngine::new(
            Dialect::presto(),
            SqlOptions {
                zone_map_pruning: prune,
                vectorized_filter: false,
                n_threads: 1,
                ..SqlOptions::default()
            },
        );
        engine.register(table.clone());
        engine.execute(&sql).unwrap_or_else(|e| panic!("{e}"))
    };
    let min_wall = |prune: bool| {
        (0..runs)
            .map(|_| run(prune).stats.wall_seconds)
            .fold(f64::INFINITY, f64::min)
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(on.relation, off.relation, "pruning changed the Q1w result");
    assert_eq!(
        on.stats.scan.bytes_scanned + on.stats.scan.bytes_pruned,
        off.stats.scan.bytes_scanned,
        "accounting bytes not conserved under pruning",
    );
    let wall_seconds_off = min_wall(false);
    let wall_seconds_on = min_wall(true);
    let row = PruningRow {
        window_lo: lo,
        window_hi: hi,
        groups_total: table.row_groups().len() as u64,
        groups_pruned: on.stats.scan.groups_pruned,
        bytes_scanned: on.stats.scan.bytes_scanned,
        bytes_pruned: on.stats.scan.bytes_pruned,
        wall_seconds_off,
        wall_seconds_on,
        speedup: wall_seconds_off / wall_seconds_on,
    };
    eprintln!(
        "  sql-presto   Q1w: pruned {}/{} groups, {} of {} bytes; wall {:.2} -> {:.2} ms ({:.1}x)",
        row.groups_pruned,
        row.groups_total,
        row.bytes_pruned,
        row.bytes_scanned + row.bytes_pruned,
        wall_seconds_off * 1e3,
        wall_seconds_on * 1e3,
        row.speedup,
    );
    row
}

/// `--check`: the tracing-overhead gate plus the Q1–Q8 trace artifact.
fn check(spec: DatasetSpec) -> bool {
    eprintln!(
        "# perf_smoke --check: {} events, {} per row group, seed {:#x}",
        spec.n_events, spec.row_group_size, spec.seed
    );
    let (_, table) = build_dataset(spec);
    let table: Arc<Table> = Arc::new(table);
    // Both gate arms pin one intra-query thread: the traced arm needs it
    // for exclusive stage accounting, and the untraced arm must match so
    // the measured delta is tracing overhead alone, not lost parallelism.
    let untraced_env = ExecEnv {
        intra_query_threads: Some(1),
        ..ExecEnv::seed()
    };
    let traced_env = ExecEnv {
        trace: obs::TraceCtx::enabled(),
        intra_query_threads: Some(1),
        ..ExecEnv::seed()
    };
    // Export one traced tree per (engine, query) — the CI artifact — and
    // sanity-check every tree is non-empty with a query root.
    for (system, label) in ENGINES {
        for q in ALL_QUERIES {
            let run = run_point(system, &table, *q, &traced_env);
            assert!(
                !run.trace.is_empty(),
                "{label} {} produced no span tree under tracing",
                q.name()
            );
            export_trace(&run, label, q.name());
        }
    }
    // The overhead gate proper, on the SQL engine across Q1–Q8: compare
    // min-of-GATE_RUNS wall times, aggregated across queries
    // (single-query millisecond deltas are scheduler noise at this
    // scale). Traced and untraced runs are interleaved pairwise so
    // clock/thermal drift hits both arms symmetrically.
    const GATE_RUNS: usize = 5;
    let mut sum_untraced = 0.0;
    let mut sum_traced = 0.0;
    eprintln!("# tracing overhead (sql-presto, min of {GATE_RUNS} interleaved runs)");
    for q in ALL_QUERIES {
        let mut u = f64::INFINITY;
        let mut t = f64::INFINITY;
        for _ in 0..GATE_RUNS {
            u = u.min(
                run_point(System::Presto, &table, *q, &untraced_env)
                    .stats
                    .wall_seconds,
            );
            t = t.min(
                run_point(System::Presto, &table, *q, &traced_env)
                    .stats
                    .wall_seconds,
            );
        }
        sum_untraced += u;
        sum_traced += t;
        eprintln!(
            "  {:4} untraced {:8.2} ms   traced {:8.2} ms   ({:+6.2}%)",
            q.name(),
            u * 1e3,
            t * 1e3,
            (t / u - 1.0) * 100.0
        );
    }
    let overhead = sum_traced / sum_untraced - 1.0;
    eprintln!(
        "# aggregate: untraced {:.2} ms, traced {:.2} ms, overhead {:+.2}% (gate: {:.0}%)",
        sum_untraced * 1e3,
        sum_traced * 1e3,
        overhead * 100.0,
        MAX_OVERHEAD_FRACTION * 100.0
    );
    // The compiled-execution gate: Q6 must beat the interpreter by
    // MIN_COMPILED_SPEEDUP on both engines with a compiled lowering.
    eprintln!("# compiled execution (Q6, median of {RUNS})");
    let mut compiled_ok = true;
    for r in measure_compiled(&table, RUNS, Some(1)) {
        if r.speedup < MIN_COMPILED_SPEEDUP {
            eprintln!(
                "# FAIL: {} {} compiled speedup {:.1}x below the {MIN_COMPILED_SPEEDUP:.0}x gate",
                r.engine, r.query, r.speedup
            );
            compiled_ok = false;
        }
    }
    overhead <= MAX_OVERHEAD_FRACTION && compiled_ok
}

/// Parses `--threads N` (pins `intra_query_threads` for timed runs).
fn threads_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let pos = args.iter().position(|a| a == "--threads")?;
    let n = args
        .get(pos + 1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("--threads requires a positive integer"));
    assert!(n > 0, "--threads requires a positive integer");
    Some(n)
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        if !check(spec(2_048)) {
            eprintln!("# FAIL: observability/compiled gates not met");
            std::process::exit(1);
        }
        eprintln!("# OK: tracing overhead and compiled speedup within the gates");
        return;
    }
    let spec = spec(32_768);
    let threads = threads_arg();
    eprintln!(
        "# perf_smoke: {} events, {} per row group, seed {:#x}, threads {}",
        spec.n_events,
        spec.row_group_size,
        spec.seed,
        threads.map_or_else(|| "engine default".to_string(), |n| n.to_string())
    );
    let (_, table) = build_dataset(spec);
    let table: Arc<Table> = Arc::new(table);
    let n = spec.n_events;

    let queries = [
        (QueryId::Q1, "Q1"),
        (QueryId::Q5, "Q5"),
        (QueryId::Q6a, "Q6"),
    ];

    let mut rows = Vec::new();
    for (system, label) in ENGINES {
        for (q, name) in queries {
            rows.push(measure(system, label, q, name, &table, n, threads));
        }
    }

    eprintln!("# compiled execution (Q6, median of {RUNS})");
    let compiled = measure_compiled(&table, RUNS, threads);

    eprintln!("# zone-map pruning (windowed Q1, min of {RUNS})");
    let pruning = measure_pruning(&table, n, RUNS);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"dataset\": {{ \"events\": {}, \"row_group_size\": {}, \"seed\": {} }},\n",
        spec.n_events, spec.row_group_size, spec.seed
    ));
    json.push_str(&format!("  \"runs_per_point\": {RUNS},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let stages = r
            .stages
            .iter()
            .map(|(s, secs)| format!("\"{s}\": {secs:.6}"))
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "    {{ \"engine\": \"{}\", \"query\": \"{}\", \"wall_seconds\": {:.6}, \"cpu_seconds\": {:.6}, \"events_per_sec\": {:.1}, \"intra_query_threads\": {}, \"stages\": {{ {} }} }}{}\n",
            r.engine,
            r.query,
            r.wall_seconds,
            r.cpu_seconds,
            r.events_per_sec,
            r.intra_query_threads,
            stages,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"compiled\": [\n");
    for (i, r) in compiled.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"engine\": \"{}\", \"query\": \"{}\", \"interpreted_seconds\": {:.6}, \"compiled_seconds\": {:.6}, \"speedup\": {:.1}, \"intra_query_threads\": {} }}{}\n",
            r.engine,
            r.query,
            r.interpreted_seconds,
            r.compiled_seconds,
            r.speedup,
            r.intra_query_threads,
            if i + 1 < compiled.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"pruning\": {{ \"engine\": \"sql-presto\", \"query\": \"Q1w\", \"window\": {{ \"lo\": {}, \"hi\": {} }}, \"groups_total\": {}, \"groups_pruned\": {}, \"bytes_scanned\": {}, \"bytes_pruned\": {}, \"wall_seconds_off\": {:.6}, \"wall_seconds_on\": {:.6}, \"speedup\": {:.2} }}\n",
        pruning.window_lo,
        pruning.window_hi,
        pruning.groups_total,
        pruning.groups_pruned,
        pruning.bytes_scanned,
        pruning.bytes_pruned,
        pruning.wall_seconds_off,
        pruning.wall_seconds_on,
        pruning.speedup,
    ));
    json.push_str("}\n");

    let out = std::env::var("BENCH_SMOKE_OUT").unwrap_or_else(|_| "BENCH_smoke.json".to_string());
    std::fs::write(&out, &json).expect("write BENCH_smoke.json");
    eprintln!("# wrote {out}");
    print!("{json}");
}
